"""Vocabulary pools for the synthetic corpus generators.

Everything is drawn from small fixed pools with a seeded
``random.Random``, so corpora are deterministic given (seed, size) —
benchmarks and tests can regenerate byte-identical releases.
"""

from __future__ import annotations

import random

ENZYME_ACTIVITY_WORDS = [
    "oxidase", "reductase", "kinase", "phosphatase", "hydrolase",
    "transferase", "synthase", "dehydrogenase", "monooxygenase",
    "carboxylase", "isomerase", "ligase", "mutase", "deaminase",
    "peptidase", "esterase", "decarboxylase", "aminotransferase",
]

SUBSTRATE_WORDS = [
    "peptidylglycine", "glucose", "alcohol", "pyruvate", "lactate",
    "glutamate", "aspartate", "choline", "xanthine", "urate",
    "glycerol", "malate", "citrate", "fumarate", "acetaldehyde",
    "ketone", "sarcosine", "creatine", "ornithine", "histidine",
]

COFACTORS = [
    "Copper", "Zinc", "Iron", "Magnesium", "Manganese", "FAD", "NAD(+)",
    "NADP(+)", "Pyridoxal 5'-phosphate", "Heme", "Cobalt", "Biotin",
]

COMMENT_TEMPLATES = [
    "{substrate} with a neutral amino acid residue in the penultimate "
    "position are the best substrates for the enzyme.",
    "The enzyme also catalyzes the dismutation of the product to "
    "glyoxylate and the corresponding {substrate} amide.",
    "Requires {cofactor} for full activity.",
    "Highly specific for {substrate} as the acceptor.",
    "Also acts on {substrate}, more slowly.",
    "Inhibited by excess {substrate}.",
    "Involved in the degradation of {substrate}.",
    "A {cofactor} protein that forms part of the respiratory chain.",
]

DISEASES = [
    "Hemolytic anemia", "Phenylketonuria", "Maple syrup urine disease",
    "Galactosemia", "Tyrosinemia", "Homocystinuria", "Alkaptonuria",
    "Gaucher disease", "Fabry disease", "Tay-Sachs disease",
    "Lesch-Nyhan syndrome", "Pompe disease",
]

ORGANISMS = [
    ("Homo sapiens", "HUMAN"),
    ("Mus musculus", "MOUSE"),
    ("Rattus norvegicus", "RAT"),
    ("Bos taurus", "BOVIN"),
    ("Xenopus laevis", "XENLA"),
    ("Caenorhabditis elegans", "CAEEL"),
    ("Drosophila melanogaster", "DROME"),
    ("Saccharomyces cerevisiae", "YEAST"),
    ("Escherichia coli", "ECOLI"),
    ("Danio rerio", "DANRE"),
]

#: EMBL divisions (the paper's Figure 8 queries the invertebrate one).
EMBL_DIVISIONS = ["inv", "hum", "rod", "fun", "pln", "pro"]

GENE_STEMS = [
    "cdc", "rad", "pol", "rec", "gyr", "top", "his", "trp", "lac",
    "ara", "gal", "mal", "pur", "pyr", "dna", "rpo", "rps", "atp",
]

KEYWORDS = [
    "cell cycle", "DNA replication", "transcription", "ATP-binding",
    "metal-binding", "oxidoreductase", "transferase", "hydrolase",
    "membrane", "mitochondrion", "nucleus", "signal", "kinase",
    "glycoprotein", "zinc-finger", "repeat", "phosphoprotein",
]

FEATURE_KEYS = ["CDS", "mRNA", "exon", "promoter", "misc_feature"]

DNA_ALPHABET = "acgt"
PROTEIN_ALPHABET = "ACDEFGHIKLMNPQRSTVWY"


def make_rng(seed: int) -> random.Random:
    """The one constructor all generators use, so one seed pins the
    whole corpus family."""
    return random.Random(seed)


def random_ec_number(rng: random.Random) -> str:
    """A plausible EC number (four dotted fields)."""
    return (f"{rng.randint(1, 6)}.{rng.randint(1, 20)}."
            f"{rng.randint(1, 20)}.{rng.randint(1, 200)}")


def random_accession(rng: random.Random, prefix_alphabet: str = "OPQ") -> str:
    """A Swiss-Prot-style accession, e.g. ``P10731``."""
    prefix = rng.choice(prefix_alphabet)
    return f"{prefix}{rng.randint(0, 99999):05d}"


def random_embl_accession(rng: random.Random) -> str:
    """An EMBL-style accession, e.g. ``AB012345``."""
    letters = "".join(rng.choice("ABCDEFGHJKLMXYZ") for __ in range(2))
    return f"{letters}{rng.randint(0, 999999):06d}"


def random_sequence(rng: random.Random, length: int,
                    alphabet: str = DNA_ALPHABET) -> str:
    """A random residue string."""
    return "".join(rng.choice(alphabet) for __ in range(length))


def random_gene_name(rng: random.Random) -> str:
    """A gene symbol like ``cdc42``."""
    return f"{rng.choice(GENE_STEMS)}{rng.randint(1, 60)}"


def random_enzyme_name(rng: random.Random) -> str:
    """An enzyme name like ``Pyruvate kinase``."""
    return (f"{rng.choice(SUBSTRATE_WORDS).capitalize()} "
            f"{rng.choice(ENZYME_ACTIVITY_WORDS)}")
