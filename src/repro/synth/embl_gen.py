"""Synthetic EMBL releases (nucleotide entries, division-tagged)."""

from __future__ import annotations

import random

from repro.flatfile import Entry, render_entries
from repro.flatfile.lines import Line
from repro.synth import names


def generate_embl_entry(rng: random.Random, accession: str,
                        division: str = "inv",
                        ec_number: str | None = None,
                        gene: str | None = None,
                        sequence_length: int | None = None) -> Entry:
    """One EMBL entry.

    ``ec_number`` plants an ``/EC_number`` qualifier (join-benchmark
    control); ``gene`` plants a ``/gene`` qualifier and puts the gene
    name into the description (keyword-query control).
    """
    gene = gene or names.random_gene_name(rng)
    organism, __ = rng.choice(names.ORGANISMS)
    length = sequence_length or rng.randint(400, 3000)
    lines: list[Line] = [
        Line("ID", f"{_entry_name(rng, gene)}; SV 1; "
                   f"{division.upper()}; {length} BP."),
        Line("AC", f"{accession};"),
    ]
    description = (f"{organism} {gene} gene for "
                   f"{names.random_enzyme_name(rng).lower()}, complete cds.")
    for chunk in _wrap(description, 60):
        lines.append(Line("DE", chunk))
    keywords = rng.sample(names.KEYWORDS, rng.randint(1, 4))
    lines.append(Line("KW", "; ".join([gene] + keywords) + "."))
    lines.append(Line("OS", organism))

    feature_count = rng.randint(1, 3)
    for index in range(feature_count):
        key = names.FEATURE_KEYS[0] if index == 0 else rng.choice(
            names.FEATURE_KEYS)
        start = rng.randint(1, max(2, length // 2))
        end = rng.randint(start + 1, length)
        lines.append(Line("FT", f"{key:<16}{start}..{end}"))
        if key == "CDS":
            lines.append(Line("FT", f'                /gene="{gene}"'))
            lines.append(Line(
                "FT",
                f'                /product='
                f'"{names.random_enzyme_name(rng).lower()}"'))
            if ec_number and index == 0:
                lines.append(
                    Line("FT", f'                /EC_number="{ec_number}"'))

    residues = names.random_sequence(rng, min(length, 240))
    lines.append(Line("SQ", f"Sequence {length} BP;"))
    for offset in range(0, len(residues), 60):
        lines.append(Line("  ", _format_residues(residues[offset:offset + 60],
                                                 offset + 60)))
    return Entry(lines)


def _entry_name(rng: random.Random, gene: str) -> str:
    return f"{rng.choice('ABCDEX')}{gene.upper()}{rng.randint(1, 99)}"


def _format_residues(chunk: str, position: int) -> str:
    groups = " ".join(chunk[i:i + 10] for i in range(0, len(chunk), 10))
    return f"{groups} {position}"


def _wrap(text: str, width: int) -> list[str]:
    words = text.split()
    chunks: list[str] = []
    current = words[0]
    for word in words[1:]:
        if len(current) + 1 + len(word) <= width:
            current += " " + word
        else:
            chunks.append(current)
            current = word
    chunks.append(current)
    return chunks


def generate_embl_release(seed: int, count: int,
                          division: str = "inv",
                          ec_pool: list[str] | None = None,
                          ec_fraction: float = 0.5,
                          gene_plant: tuple[str, float] | None = None,
                          ) -> str:
    """A full EMBL flat-file release.

    Roughly ``ec_fraction`` of entries carry an ``/EC_number`` qualifier
    drawn from ``ec_pool`` (the ENZYME ids of the shared corpus), which
    is what the paper's Figure 11 join correlates. ``gene_plant=(gene,
    fraction)`` forces that gene name into a fraction of entries for
    keyword-query benchmarks (the paper's "cdc6" example).
    """
    rng = names.make_rng(seed)
    accessions: list[str] = []
    seen: set[str] = set()
    while len(accessions) < count:
        accession = names.random_embl_accession(rng)
        if accession not in seen:
            seen.add(accession)
            accessions.append(accession)
    entries: list[Entry] = []
    for accession in accessions:
        ec_number = None
        if ec_pool and rng.random() < ec_fraction:
            ec_number = rng.choice(ec_pool)
        gene = None
        if gene_plant and rng.random() < gene_plant[1]:
            gene = gene_plant[0]
        entries.append(generate_embl_entry(
            rng, accession, division=division, ec_number=ec_number,
            gene=gene))
    return render_entries(entries)
