"""Deterministic synthetic corpus generators for ENZYME, EMBL and
Swiss-Prot flat files, with cross-linked identifiers."""

from repro.synth.corpus import Corpus, build_corpus, mutate_release
from repro.synth.embl_gen import generate_embl_entry, generate_embl_release
from repro.synth.enzyme_gen import (
    generate_enzyme_entry,
    generate_enzyme_release,
    unique_ec_numbers,
)
from repro.synth.sprot_gen import generate_sprot_entry, generate_sprot_release

__all__ = [
    "Corpus",
    "build_corpus",
    "generate_embl_entry",
    "generate_embl_release",
    "generate_enzyme_entry",
    "generate_enzyme_release",
    "generate_sprot_entry",
    "generate_sprot_release",
    "mutate_release",
    "unique_ec_numbers",
]
