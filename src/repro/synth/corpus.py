"""Cross-linked synthetic corpus builder.

The paper's queries span databases: Figure 8 searches a gene keyword
across EMBL *and* Swiss-Prot; Figure 11 joins EMBL feature
``EC_number`` qualifiers against ENZYME ids; ENZYME's DR lines point at
Swiss-Prot accessions. A corpus whose three releases are generated
independently would make those joins vacuously empty, so this module
generates them against shared identifier pools.

:func:`build_corpus` returns a :class:`Corpus` of three flat-file texts
plus the pools, and can publish them straight into a transport
repository. :func:`mutate_release` derives an "updated release" for the
incremental-update experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.flatfile import parse_entries, render_entries, render_entry
from repro.synth import names
from repro.synth.embl_gen import generate_embl_release
from repro.synth.enzyme_gen import generate_enzyme_release, unique_ec_numbers
from repro.synth.sprot_gen import generate_sprot_release, make_entry_name


@dataclass
class Corpus:
    """Three cross-linked flat-file releases plus their identifier pools."""

    seed: int
    enzyme_text: str
    embl_text: str
    sprot_text: str
    omim_text: str = ""
    ec_numbers: list[str] = field(default_factory=list)
    sprot_accessions: list[tuple[str, str]] = field(default_factory=list)
    embl_accessions: list[str] = field(default_factory=list)
    mim_ids: list[str] = field(default_factory=list)

    def texts(self) -> dict[str, str]:
        """Source name → flat-file text, for every non-empty release."""
        out = {
            "hlx_enzyme": self.enzyme_text,
            "hlx_embl": self.embl_text,
            "hlx_sprot": self.sprot_text,
        }
        if self.omim_text:
            out["hlx_omim"] = self.omim_text
        return out

    def sizes(self) -> dict[str, int]:
        """Entry counts per source release."""
        return {source: sum(1 for line in text.splitlines() if line == "//")
                for source, text in self.texts().items()}

    def publish_to(self, repository, release: str = "r1") -> None:
        """Publish every release into a transport repository."""
        for source, text in self.texts().items():
            repository.publish(source, release, text)


def build_corpus(seed: int = 7, enzyme_count: int = 50,
                 embl_count: int = 80, sprot_count: int = 60,
                 omim_count: int = 0,
                 gene_plant: tuple[str, float] = ("cdc6", 0.08),
                 keyword_plant: tuple[str, float] = ("ketone", 0.1),
                 ec_fraction: float = 0.5) -> Corpus:
    """Build a cross-linked corpus.

    Defaults reproduce the paper's running examples: a ``cdc6`` gene
    planted in both sequence databases (Figure 8), a ``ketone`` keyword
    planted in ENZYME catalytic activities (Figure 9), and EMBL
    ``EC_number`` qualifiers drawn from the ENZYME id pool (Figure 11).
    With ``omim_count > 0`` a disease databank is generated too, and
    ENZYME ``DI`` lines draw their MIM numbers from its id pool, so the
    enzyme-deficiency→disease join is answerable.
    """
    rng = names.make_rng(seed)
    ec_numbers = unique_ec_numbers(rng, enzyme_count)

    mim_ids: list[str] = []
    if omim_count:
        seen_mims: set[str] = set()
        while len(mim_ids) < omim_count:
            candidate = str(rng.randint(100000, 620000))
            if candidate not in seen_mims:
                seen_mims.add(candidate)
                mim_ids.append(candidate)

    sprot_accessions: list[tuple[str, str]] = []
    seen_accessions: set[str] = set()
    seen_names: set[str] = set()
    while len(sprot_accessions) < sprot_count:
        accession = names.random_accession(rng)
        if accession in seen_accessions:
            continue
        entry_name = make_entry_name(rng, names.random_gene_name(rng))
        if entry_name in seen_names:
            entry_name = f"{entry_name[:7]}{len(seen_names)}"
        seen_accessions.add(accession)
        seen_names.add(entry_name)
        sprot_accessions.append((accession, entry_name))

    enzyme_text = generate_enzyme_release(
        seed + 1, enzyme_count, ec_numbers=ec_numbers,
        swissprot_pool=sprot_accessions, keyword_plant=keyword_plant,
        mim_pool=mim_ids or None)
    embl_text = generate_embl_release(
        seed + 2, embl_count, division="inv", ec_pool=ec_numbers,
        ec_fraction=ec_fraction, gene_plant=gene_plant)
    embl_accessions = [
        entry.value("AC").split(";")[0].strip()
        for entry in parse_entries(embl_text)]
    sprot_text = generate_sprot_release(
        seed + 3, sprot_count, accessions=sprot_accessions,
        embl_pool=embl_accessions, gene_plant=gene_plant)
    omim_text = ""
    if omim_count:
        from repro.synth.omim_gen import generate_omim_release
        gene_pool = [gene_plant[0]] + [
            names.random_gene_name(rng) for __ in range(10)]
        omim_text = generate_omim_release(seed + 4, omim_count,
                                          mim_ids=mim_ids,
                                          gene_pool=gene_pool)
    return Corpus(seed=seed, enzyme_text=enzyme_text, embl_text=embl_text,
                  sprot_text=sprot_text, omim_text=omim_text,
                  ec_numbers=ec_numbers,
                  sprot_accessions=sprot_accessions,
                  embl_accessions=embl_accessions, mim_ids=mim_ids)


def mutate_release(text: str, seed: int, update_fraction: float = 0.1,
                   remove_fraction: float = 0.05,
                   marker: str = "updated in r2") -> str:
    """Derive a new release from an old one.

    A fraction of entries get a new comment-style CC line appended
    (content change → update), a fraction are dropped (removal), the
    rest are byte-identical (must not be reloaded). Used by experiment
    E8 and the hound's update tests.
    """
    rng = random.Random(seed)
    entries = parse_entries(text)
    kept = []
    for entry in entries:
        roll = rng.random()
        if roll < remove_fraction:
            continue
        if roll < remove_fraction + update_fraction:
            from repro.flatfile.lines import Line
            entry.lines.append(Line("CC", f"-!- {marker}."))
        kept.append(entry)
    return render_entries(kept)
