"""Synthetic Swiss-Prot releases (protein entries)."""

from __future__ import annotations

import random

from repro.flatfile import Entry, render_entries
from repro.flatfile.lines import Line
from repro.synth import names


def generate_sprot_entry(rng: random.Random, accession: str,
                         entry_name: str,
                         embl_refs: list[str] | None = None,
                         gene: str | None = None,
                         sequence_length: int | None = None) -> Entry:
    """One Swiss-Prot entry.

    ``embl_refs`` are EMBL accessions for DR lines; ``gene`` plants a
    gene name in GN and the description (the paper's "cdc6" keyword
    search needs the same gene to surface in both EMBL and Swiss-Prot).
    """
    gene = gene or names.random_gene_name(rng)
    organism, __ = rng.choice(names.ORGANISMS)
    length = sequence_length or rng.randint(80, 900)
    lines: list[Line] = [
        Line("ID", f"{entry_name}  STANDARD;  PRT;  {length} AA."),
        Line("AC", f"{accession};"),
        Line("DE", f"{names.random_enzyme_name(rng)} ({gene})."),
        Line("GN", f"{gene}."),
        Line("OS", f"{organism}."),
    ]
    for embl_accession in embl_refs or []:
        lines.append(Line("DR", f"EMBL; {embl_accession}; -."))
    if rng.random() < 0.4:
        lines.append(
            Line("DR", f"PROSITE; PDOC{rng.randint(0, 99999):05d}; "
                       f"PS{rng.randint(0, 99999):05d}."))
    keywords = rng.sample(names.KEYWORDS, rng.randint(1, 4))
    lines.append(Line("KW", "; ".join(keywords) + "."))

    residues = names.random_sequence(rng, min(length, 180),
                                     names.PROTEIN_ALPHABET).upper()
    lines.append(Line("SQ", f"SEQUENCE   {length} AA;"))
    for offset in range(0, len(residues), 60):
        chunk = residues[offset:offset + 60]
        grouped = " ".join(chunk[i:i + 10] for i in range(0, len(chunk), 10))
        lines.append(Line("  ", grouped))
    return Entry(lines)


def make_entry_name(rng: random.Random, gene: str) -> str:
    """A Swiss-Prot entry name like ``CDC6_HUMAN``."""
    __, suffix = rng.choice(names.ORGANISMS)
    stem = gene.upper()[:5] or "PROT"
    return f"{stem}_{suffix}"


def generate_sprot_release(seed: int, count: int,
                           accessions: list[tuple[str, str]] | None = None,
                           embl_pool: list[str] | None = None,
                           gene_plant: tuple[str, float] | None = None,
                           ) -> str:
    """A full Swiss-Prot flat-file release.

    ``accessions`` pins ``(accession, entry_name)`` identities — the
    corpus builder passes the same pool it fed to the ENZYME generator's
    DR lines, closing the ENZYME→Swiss-Prot reference loop.
    """
    rng = names.make_rng(seed)
    if accessions is None:
        accessions = []
        seen: set[str] = set()
        while len(accessions) < count:
            accession = names.random_accession(rng)
            if accession in seen:
                continue
            seen.add(accession)
            gene = names.random_gene_name(rng)
            accessions.append((accession, make_entry_name(rng, gene)))
    entries: list[Entry] = []
    used_names: set[str] = set()
    for accession, entry_name in accessions[:count]:
        if entry_name in used_names:
            entry_name = f"{entry_name}{len(used_names)}"
        used_names.add(entry_name)
        refs: list[str] = []
        if embl_pool:
            refs = [rng.choice(embl_pool)
                    for __ in range(rng.randint(0, 2))]
        gene = None
        if gene_plant and rng.random() < gene_plant[1]:
            gene = gene_plant[0]
        entries.append(generate_sprot_entry(
            rng, accession, entry_name, embl_refs=refs, gene=gene))
    return render_entries(entries)
