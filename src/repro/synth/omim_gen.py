"""Synthetic OMIM-style disease releases."""

from __future__ import annotations

import random

from repro.flatfile import Entry, render_entries
from repro.flatfile.lines import Line
from repro.synth import names


def generate_omim_entry(rng: random.Random, mim_id: str,
                        title: str | None = None,
                        gene_symbols: list[str] | None = None) -> Entry:
    """One disease entry for ``mim_id``."""
    title = title or rng.choice(names.DISEASES)
    lines: list[Line] = [Line("ID", mim_id), Line("TI", title)]
    for __ in range(rng.randint(0, 2)):
        lines.append(Line("SY", f"{rng.choice(names.SUBSTRATE_WORDS)} "
                                f"{rng.choice(['deficiency', 'syndrome', 'disease'])}"))
    description = (f"An inborn error of metabolism caused by deficiency "
                   f"of {names.random_enzyme_name(rng).lower()}.")
    words = description.split()
    half = len(words) // 2
    lines.append(Line("TX", " ".join(words[:half])))
    lines.append(Line("TX", " ".join(words[half:])))
    for symbol in gene_symbols or []:
        lines.append(Line("GS", symbol))
    if rng.random() < 0.8:
        lines.append(Line("IN", rng.choice(
            ["Autosomal recessive", "Autosomal dominant", "X-linked"])))
    return Entry(lines)


def generate_omim_release(seed: int, count: int,
                          mim_ids: list[str] | None = None,
                          gene_pool: list[str] | None = None) -> str:
    """A full OMIM-style flat-file release.

    ``mim_ids`` pins the identities — the corpus builder passes the
    same pool it plants in ENZYME ``DI`` lines, closing the
    disease-join loop.
    """
    rng = names.make_rng(seed)
    if mim_ids is None:
        seen: set[str] = set()
        mim_ids = []
        while len(mim_ids) < count:
            candidate = str(rng.randint(100000, 620000))
            if candidate not in seen:
                seen.add(candidate)
                mim_ids.append(candidate)
    entries = []
    for mim_id in mim_ids[:count]:
        symbols = None
        if gene_pool and rng.random() < 0.7:
            symbols = [rng.choice(gene_pool).upper()]
        entries.append(generate_omim_entry(rng, mim_id,
                                           gene_symbols=symbols))
    return render_entries(entries)
