"""Delta-driven standing queries with push fan-out.

The paper's "living with genomes" claim rests on incremental updates
with change triggers to subscribed applications. This package is that
subsystem (docs/subscriptions.md):

* :mod:`~repro.subscriptions.delta` — durable row identity + exact
  delta algebra (mergeable :class:`KeyedDelta`),
* :mod:`~repro.subscriptions.ivm` — incremental view maintenance: one
  :class:`StandingEvaluation` per unique query text, refreshed
  proportionally to the harvest delta via an ``entry_key IN (...)``
  AST splice, with a full-refresh fallback where incrementality would
  be wrong or slower,
* :mod:`~repro.subscriptions.bus` — the :class:`DeliveryBus`, bounded
  per-subscriber queues on a worker pool with ``block`` /
  ``drop_oldest`` / ``coalesce`` backpressure policies,
* :mod:`~repro.subscriptions.manager` — the
  :class:`SubscriptionManager` registry: dedupe, persistence across
  restarts, trigger routing, and :class:`SubscriberChannel` rings for
  the HTTP long-poll/SSE consumers,
* :mod:`~repro.subscriptions.standing` — the embedded
  :class:`QuerySubscription` (one query, one synchronous callback).
"""

from repro.subscriptions.bus import POLICIES, DeliveryBus
from repro.subscriptions.delta import (
    KeyedDelta,
    ResultDelta,
    canonical_rows,
    row_key,
)
from repro.subscriptions.ivm import (
    DEFAULT_MAX_DELTA_KEYS,
    StandingEvaluation,
    sources_of,
)
from repro.subscriptions.manager import (
    SubscriberChannel,
    Subscription,
    SubscriptionManager,
    payload_json,
)
from repro.subscriptions.standing import DeltaCallback, QuerySubscription

__all__ = [
    "DEFAULT_MAX_DELTA_KEYS",
    "DeliveryBus",
    "DeltaCallback",
    "KeyedDelta",
    "POLICIES",
    "QuerySubscription",
    "ResultDelta",
    "StandingEvaluation",
    "SubscriberChannel",
    "Subscription",
    "SubscriptionManager",
    "canonical_rows",
    "payload_json",
    "row_key",
    "sources_of",
]
