"""The subscription registry: dedupe, persistence, event routing.

One :class:`SubscriptionManager` per warehouse. It subscribes a single
wildcard callback to the warehouse's trigger hub and, per
:class:`~repro.datahounds.triggers.ChangeEvent`:

1. finds every standing query watching the event's source,
2. refreshes each **once** (identical query texts share one
   :class:`~repro.subscriptions.ivm.StandingEvaluation` — a thousand
   subscribers to the same query cost one incremental evaluation),
3. hands the delta to the :class:`~repro.subscriptions.bus.DeliveryBus`
   which fans it out to that query's subscribers under their
   backpressure policies.

Subscriptions are durable: each is persisted to a
``standing_subscriptions`` table in the warehouse (outside the generic
document schema, like the hound's release snapshots), and a manager
built over a reopened warehouse restores them — subscribers reattach
to their channel by id and resume via ``Last-Event-Id``.

Subscribers come in two shapes: an in-process ``callback`` (invoked on
a bus worker thread with the :class:`KeyedDelta`), or — default — a
:class:`SubscriberChannel`, a bounded ring of numbered delta payloads
that the HTTP layer long-polls or streams (SSE).
"""

from __future__ import annotations

import json
import secrets
import threading
import time
from dataclasses import dataclass, field

from repro.datahounds.triggers import ChangeEvent
from repro.errors import ReproError, StorageError
from repro.subscriptions.bus import POLICIES, DeliveryBus
from repro.subscriptions.delta import KeyedDelta
from repro.subscriptions.ivm import DEFAULT_MAX_DELTA_KEYS, StandingEvaluation

#: persisted subscriptions (probe-then-create like ``hound_snapshots``:
#: minidb has no IF NOT EXISTS, and the table must survive per-document
#: delete sweeps, so it stays outside TABLE_NAMES)
_SUBSCRIPTIONS_DDL = ("CREATE TABLE standing_subscriptions ("
                      "sub_id TEXT NOT NULL, "
                      "query_text TEXT NOT NULL, "
                      "policy TEXT NOT NULL, "
                      "mode TEXT NOT NULL, "
                      "created_at REAL NOT NULL)")


class SubscriberChannel:
    """A bounded ring of numbered deltas for one subscriber.

    The bus pushes payloads in; HTTP consumers pull with
    :meth:`poll` (long-poll: blocks until an event past ``after``
    arrives or the timeout lapses). Event ids are per-channel,
    monotonically increasing from 1 — the SSE ``id:`` field and the
    ``Last-Event-Id`` resume cursor. When the ring overflows, the
    oldest events are evicted and ``lost`` counts them: a consumer
    whose cursor fell off the ring learns it missed data instead of
    silently skipping it.
    """

    def __init__(self, capacity: int = 256):
        self.capacity = max(1, capacity)
        self._cond = threading.Condition()
        self._events: list[tuple[int, dict]] = []
        self._next_id = 1
        self.lost = 0

    def push(self, delta: KeyedDelta) -> int:
        """Append one delta; returns its event id."""
        payload = delta.to_payload()
        with self._cond:
            event_id = self._next_id
            self._next_id += 1
            self._events.append((event_id, payload))
            overflow = len(self._events) - self.capacity
            if overflow > 0:
                del self._events[:overflow]
                self.lost += overflow
            self._cond.notify_all()
            return event_id

    def poll(self, after: int = 0, timeout: float = 0.0,
             limit: int = 100) -> tuple[list[tuple[int, dict]], int]:
        """Events with id > ``after`` (at most ``limit``), blocking up
        to ``timeout`` seconds when none are ready. Returns
        ``(events, last_id)`` where ``last_id`` is the channel's
        newest id (the caller's next cursor even when it reads zero
        events)."""
        deadline = time.perf_counter() + max(0.0, timeout)
        with self._cond:
            while True:
                ready = [(event_id, payload)
                         for event_id, payload in self._events
                         if event_id > after][:max(1, limit)]
                if ready:
                    return ready, ready[-1][0]
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    return [], self._next_id - 1
                self._cond.wait(remaining)

    @property
    def last_id(self) -> int:
        """Newest assigned event id (0 = nothing delivered yet)."""
        with self._cond:
            return self._next_id - 1


@dataclass
class Subscription:
    """One subscriber's registration."""

    id: str
    query_text: str
    policy: str
    mode: str                       # "channel" | "callback"
    created_at: float
    channel: SubscriberChannel | None = None
    #: durable registrations survive warehouse restarts
    persisted: bool = False
    meta: dict = field(default_factory=dict)

    def as_record(self) -> dict:
        """JSON-able description (the service's list/create bodies)."""
        record = {
            "id": self.id,
            "query": self.query_text,
            "policy": self.policy,
            "mode": self.mode,
            "created_at": self.created_at,
            "persisted": self.persisted,
            "sources": self.meta.get("sources", []),
        }
        if self.channel is not None:
            record["last_event_id"] = self.channel.last_id
            record["lost_events"] = self.channel.lost
        return record


class SubscriptionManager:
    """Registry + router for standing-query subscriptions."""

    def __init__(self, warehouse, bus: DeliveryBus | None = None,
                 workers: int = 2, queue_max: int = 64,
                 channel_capacity: int = 256,
                 incremental_max_keys: int = DEFAULT_MAX_DELTA_KEYS,
                 incremental: bool = True,
                 persist: bool = True, restore: bool = True):
        self.warehouse = warehouse
        self._metrics = getattr(warehouse, "_metrics_sink", None)
        self._events = getattr(warehouse, "events", None)
        self.channel_capacity = channel_capacity
        self.incremental_max_keys = incremental_max_keys
        self.incremental = incremental
        self.persist = persist
        self.bus = bus if bus is not None else DeliveryBus(
            workers=workers, queue_max=queue_max,
            metrics=self._metrics, events=self._events,
            tracer_provider=lambda: getattr(warehouse, "tracer", None))
        self._lock = threading.RLock()
        self._evaluations: dict[str, StandingEvaluation] = {}
        self._eval_locks: dict[str, threading.Lock] = {}
        self._subscribers: dict[str, Subscription] = {}
        self._by_query: dict[str, list[str]] = {}
        if self.persist:
            self._ensure_table()
        warehouse.triggers.subscribe(self._on_event, "*")
        if self.persist and restore:
            self._restore()

    # -- registration -------------------------------------------------------

    def subscribe(self, query_text: str, callback=None, *,
                  policy: str = "block", subscription_id: str | None = None,
                  persist: bool | None = None,
                  queue_max: int | None = None) -> Subscription:
        """Register a standing query; returns the subscription.

        With ``callback`` the delta is pushed in-process (bus worker
        thread, :class:`KeyedDelta` argument); without one the
        subscription gets a :class:`SubscriberChannel` for pull/stream
        consumers. The query is compiled once per unique text and
        primed with a full evaluation, so the first delivered delta is
        relative to the warehouse as of subscribe time.
        """
        if policy not in POLICIES:
            raise ReproError(f"unknown backpressure policy {policy!r} "
                             f"(expected one of {', '.join(POLICIES)})")
        durable = self.persist if persist is None else persist
        with self._lock:
            sub_id = subscription_id or secrets.token_hex(6)
            if sub_id in self._subscribers:
                raise ReproError(f"subscription id {sub_id!r} already "
                                 f"registered")
            evaluation = self._evaluations.get(query_text)
            if evaluation is None:
                evaluation = StandingEvaluation(
                    self.warehouse, query_text,
                    incremental_max_keys=self.incremental_max_keys,
                    incremental=self.incremental)
                evaluation.refresh_full()    # prime the snapshot
                self._evaluations[query_text] = evaluation
                self._eval_locks[query_text] = threading.Lock()
            channel = None
            if callback is None:
                channel = SubscriberChannel(self.channel_capacity)
                target = channel.push
            else:
                target = callback
            self.bus.register(sub_id, target, policy=policy,
                              queue_max=queue_max)
            subscription = Subscription(
                id=sub_id, query_text=query_text, policy=policy,
                mode="callback" if callback is not None else "channel",
                created_at=time.time(), channel=channel,
                persisted=durable and self.persist,
                meta={"sources": list(evaluation.sources)})
            self._subscribers[sub_id] = subscription
            self._by_query.setdefault(query_text, []).append(sub_id)
            if subscription.persisted:
                self._persist(subscription)
            self._set_active()
            return subscription

    def unsubscribe(self, subscription_id: str) -> bool:
        """Remove a subscription (and its persisted row); True when it
        existed."""
        with self._lock:
            subscription = self._subscribers.pop(subscription_id, None)
            if subscription is None:
                return False
            self.bus.unregister(subscription_id)
            remaining = self._by_query.get(subscription.query_text, [])
            if subscription_id in remaining:
                remaining.remove(subscription_id)
            if not remaining:
                self._by_query.pop(subscription.query_text, None)
                self._evaluations.pop(subscription.query_text, None)
                self._eval_locks.pop(subscription.query_text, None)
            if subscription.persisted:
                self.warehouse.backend.execute(
                    "DELETE FROM standing_subscriptions WHERE sub_id = ?",
                    (subscription_id,))
                self.warehouse.backend.commit()
            self._set_active()
            return True

    def get(self, subscription_id: str) -> Subscription | None:
        """Look one subscription up by id."""
        with self._lock:
            return self._subscribers.get(subscription_id)

    def subscriptions(self) -> list[Subscription]:
        """Every registration, oldest first."""
        with self._lock:
            return sorted(self._subscribers.values(),
                          key=lambda sub: (sub.created_at, sub.id))

    def evaluation_for(self, query_text: str) -> StandingEvaluation | None:
        """The shared evaluation behind a query text (tests, bench)."""
        with self._lock:
            return self._evaluations.get(query_text)

    @property
    def evaluation_count(self) -> int:
        """Distinct compiled standing queries (dedupe visibility)."""
        with self._lock:
            return len(self._evaluations)

    def close(self) -> None:
        """Detach from the trigger hub and stop the bus workers."""
        self.warehouse.triggers.unsubscribe(self._on_event, "*")
        self.bus.close()

    # -- event routing ------------------------------------------------------

    def _on_event(self, event: ChangeEvent) -> None:
        with self._lock:
            watching = [
                (text, self._evaluations[text], self._eval_locks[text],
                 list(self._by_query.get(text, ())))
                for text in self._evaluations
                if self._evaluations[text].watches(event.source)]
        tracer = getattr(self.warehouse, "tracer", None)
        for text, evaluation, eval_lock, subscriber_ids in watching:
            span_cm = root = None
            if tracer is not None and event.trace_id:
                from repro.obs.trace import TraceContext
                span_cm = tracer.span(
                    "subscriptions.refresh",
                    context=TraceContext(trace_id=event.trace_id),
                    source=event.source, subscribers=len(subscriber_ids))
                root = span_cm.__enter__()
            try:
                with eval_lock:
                    delta = evaluation.apply(event)
                if root is not None:
                    root.meta["origin"] = delta.origin
                    root.count("rows_added", len(delta.added))
                    root.count("rows_removed", len(delta.removed))
            finally:
                if span_cm is not None:
                    span_cm.__exit__(None, None, None)
            if delta.changed and subscriber_ids:
                self.bus.publish(subscriber_ids, delta)

    # -- persistence --------------------------------------------------------

    def _ensure_table(self) -> None:
        backend = self.warehouse.backend
        try:
            backend.execute("SELECT COUNT(*) FROM standing_subscriptions")
        except StorageError:
            backend.execute(_SUBSCRIPTIONS_DDL)
            backend.commit()

    def _persist(self, subscription: Subscription) -> None:
        self.warehouse.backend.execute(
            "INSERT INTO standing_subscriptions "
            "(sub_id, query_text, policy, mode, created_at) "
            "VALUES (?, ?, ?, ?, ?)",
            (subscription.id, subscription.query_text,
             subscription.policy, subscription.mode,
             subscription.created_at))
        self.warehouse.backend.commit()

    def _restore(self) -> None:
        rows = self.warehouse.backend.execute(
            "SELECT sub_id, query_text, policy, mode, created_at "
            "FROM standing_subscriptions")
        for sub_id, query_text, policy, mode, created_at in rows:
            if sub_id in self._subscribers:
                continue
            try:
                subscription = self.subscribe(
                    query_text, policy=policy,
                    subscription_id=sub_id, persist=False)
            except ReproError:
                # an unparsable persisted query (schema drift) must not
                # take the manager down with it
                if self._events is not None:
                    self._events.emit("subscriptions.restore_failed",
                                      severity="error", sub_id=sub_id)
                continue
            subscription.persisted = True
            subscription.created_at = created_at
            subscription.mode = mode

    # -- observability ------------------------------------------------------

    def _set_active(self) -> None:
        if self._metrics is not None:
            self._metrics.set_gauge("subscriptions.active",
                                    len(self._subscribers))
            self._metrics.set_gauge("subscriptions.standing_queries",
                                    len(self._evaluations))

    def stats(self) -> dict:
        """Manager + bus counters (the service's operator view)."""
        with self._lock:
            evaluations = {
                text: {
                    "subscribers": len(self._by_query.get(text, ())),
                    "refreshes": evaluation.refreshes,
                    "incremental": evaluation.incremental_refreshes,
                    "full": evaluation.full_refreshes,
                    "rows": evaluation.total_rows,
                    "sources": evaluation.sources,
                } for text, evaluation in self._evaluations.items()}
        return {
            "subscribers": len(self._subscribers),
            "standing_queries": len(evaluations),
            "evaluations": evaluations,
            "bus": self.bus.stats(),
        }


def payload_json(payload: dict) -> str:
    """Canonical JSON for one delta payload (SSE ``data:`` lines and
    the CLI tail share it)."""
    return json.dumps(payload, sort_keys=True)
