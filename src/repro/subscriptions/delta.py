"""Row identity and delta algebra for standing queries.

A standing query's result is a *set of rows*; a delta is the exact
difference between two snapshots of that set. Everything here is keyed
on durable row identity — the ``(source, entry_key)`` behind each
binding plus the returned values — never on ``doc_id``, which changes
whenever a refresh re-shreds an entry.

Two delta shapes live here:

* :class:`ResultDelta` — the application-facing delta
  :class:`~repro.subscriptions.standing.QuerySubscription` hands to its
  callback (plain added/removed :class:`ResultRow` lists).
* :class:`KeyedDelta` — the engine-internal delta that additionally
  carries each row's canonical key, which is what makes exact
  coalescing possible on the delivery bus: two consecutive deltas
  merge with cancellation (a row added then removed nets out) because
  keys, not object identities, are compared.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datahounds.triggers import ChangeEvent
from repro.results.resultset import ResultRow

#: refresh strategies a delta can originate from
ORIGIN_FULL = "full"
ORIGIN_INCREMENTAL = "incremental"
ORIGIN_COALESCED = "coalesced"


def row_key(row: ResultRow, entry_keys: dict[int, tuple]) -> tuple:
    """Canonical identity of a result row.

    Bindings are identified by the *entry* behind them — the durable
    ``(source, entry_key)`` — not by ``doc_id``, which changes whenever
    a refresh re-shreds the entry. Otherwise every content update
    reports the row as removed-and-re-added even when the watched
    values did not change.
    """
    bindings = tuple(sorted(
        (var,) + entry_keys.get(node.doc_id, (str(node.doc_id),))
        for var, node in row.bindings.items()))
    values = tuple(sorted(
        (column, tuple(values)) for column, values in row.values.items()))
    return bindings, values


def key_touches(key: tuple, source: str, touched: frozenset[str]) -> bool:
    """True when any binding of ``key`` points at a touched entry of
    ``source`` — the tombstone test for incremental maintenance."""
    for entry in key[0]:
        # (var, source, entry_key) normally; (var, doc_id) when the
        # document vanished before its key could be resolved — those
        # rows are conservatively treated as untouchable here and
        # cleaned up by the next full refresh
        if len(entry) == 3 and entry[1] == source and entry[2] in touched:
            return True
    return False


@dataclass
class ResultDelta:
    """What changed in a standing query's result after one warehouse
    commit."""

    event: ChangeEvent | None
    added: list[ResultRow] = field(default_factory=list)
    removed: list[ResultRow] = field(default_factory=list)
    total_rows: int = 0

    @property
    def changed(self) -> bool:
        """True when any row was added or removed."""
        return bool(self.added or self.removed)

    def __str__(self) -> str:
        origin = str(self.event) if self.event else "initial"
        return (f"[{origin}] +{len(self.added)} -{len(self.removed)} "
                f"rows (now {self.total_rows})")


@dataclass
class KeyedDelta:
    """A delta whose rows carry their canonical keys.

    ``added``/``removed`` are ``(key, row)`` pairs; within one delta a
    key appears at most once across both lists (it is a set
    difference). The bus merges consecutive deltas via :meth:`merge`.
    """

    source: str
    release: str
    origin: str                      # full | incremental | coalesced
    added: list[tuple[tuple, ResultRow]] = field(default_factory=list)
    removed: list[tuple[tuple, ResultRow]] = field(default_factory=list)
    total_rows: int = 0
    trace_id: str = ""
    #: number of raw deltas folded into this one (1 = not coalesced)
    folded: int = 1

    @property
    def changed(self) -> bool:
        """True when any row was added or removed."""
        return bool(self.added or self.removed)

    def merge(self, newer: "KeyedDelta") -> "KeyedDelta":
        """The delta equivalent of applying ``self`` then ``newer``.

        Exact snapshot algebra: with ``self`` = S1 − S0 and ``newer`` =
        S2 − S1, the merge is S2 − S0. A key added by one delta and
        removed by the other cancels out entirely (row identity
        includes the returned values, so a changed row is a different
        key and never falsely cancels).
        """
        added_old = dict(self.added)
        removed_old = dict(self.removed)
        added_new = dict(newer.added)
        removed_new = dict(newer.removed)
        added = [(key, r) for key, r in self.added
                 if key not in removed_new]
        added += [(key, r) for key, r in newer.added
                  if key not in removed_old]
        removed = [(key, r) for key, r in self.removed
                   if key not in added_new]
        removed += [(key, r) for key, r in newer.removed
                    if key not in added_old]
        return KeyedDelta(
            source=newer.source, release=newer.release,
            origin=ORIGIN_COALESCED, added=added, removed=removed,
            total_rows=newer.total_rows,
            trace_id=newer.trace_id or self.trace_id,
            folded=self.folded + newer.folded)

    def to_result_delta(self, event: ChangeEvent | None) -> ResultDelta:
        """The application-facing shape (rows without keys)."""
        return ResultDelta(event=event,
                           added=[row for __, row in self.added],
                           removed=[row for __, row in self.removed],
                           total_rows=self.total_rows)

    def to_payload(self) -> dict:
        """JSON-able wire form (the service's event stream)."""
        return {
            "source": self.source,
            "release": self.release,
            "origin": self.origin,
            "coalesced": self.folded,
            "total_rows": self.total_rows,
            "added": [_entry_payload(key, row) for key, row in self.added],
            "removed": [_entry_payload(key, row)
                        for key, row in self.removed],
        }

    def __str__(self) -> str:
        return (f"[{self.source}@{self.release} {self.origin}] "
                f"+{len(self.added)} -{len(self.removed)} "
                f"rows (now {self.total_rows})")


def _entry_payload(key: tuple, row: ResultRow) -> dict:
    return {
        "key": [list(part) for part in key[0]],
        "values": {column: list(values)
                   for column, values in row.values.items()},
    }


def canonical_rows(snapshot: dict[tuple, ResultRow]) -> list:
    """A snapshot as a deterministic, JSON-able structure — the basis
    for the incremental-vs-oracle equivalence checks (doc_ids differ
    between the two evaluation paths; keys and values may not)."""
    return [[[list(part) for part in key[0]],
             [[column, list(values)] for column, values in key[1]]]
            for key in sorted(snapshot)]
