"""The embedded single-subscriber API: one query, one callback.

The gRNA loop the paper sketches: applications consume XomatiQ results,
and Data Hounds "sends out triggers to related applications, indicating
changes to the warehouse". A :class:`QuerySubscription` closes that
loop — it registers a query with a hound, refreshes it whenever a
release load changes one of the *sources the query actually reads*
(derived from its FOR bindings), and hands the subscriber a row-level
delta rather than the raw trigger. Refreshes are incremental where the
event allows it (see :mod:`repro.subscriptions.ivm`): cost scales with
the harvest delta, not the warehouse.

Usage::

    hound = warehouse.connect(repository)
    sub = QuerySubscription(warehouse, hound, QUERY_TEXT,
                            on_change=my_callback)
    hound.load("hlx_enzyme")          # initial load fires the callback
    ...
    hound.load("hlx_enzyme")          # refresh: callback gets the delta

For many subscribers, shared evaluations, asynchronous fan-out and
durable registrations, use
:class:`~repro.subscriptions.manager.SubscriptionManager` instead.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable

from repro.datahounds.triggers import ChangeEvent
from repro.results.resultset import QueryResult
from repro.subscriptions.delta import ResultDelta
from repro.subscriptions.ivm import StandingEvaluation, sources_of
from repro.xquery.parser import parse_query

DeltaCallback = Callable[[ResultDelta], None]


class QuerySubscription:
    """A standing XomatiQ query bound to a warehouse and its hound."""

    def __init__(self, warehouse, hound, query_text: str,
                 on_change: DeltaCallback | None = None,
                 fire_on_unchanged: bool = False,
                 incremental: bool = True):
        self.warehouse = warehouse
        self.hound = hound
        self.query_text = query_text
        self.on_change = on_change
        self.fire_on_unchanged = fire_on_unchanged
        self._evaluation = StandingEvaluation(warehouse, query_text,
                                              incremental=incremental)
        self.sources = list(self._evaluation.sources)
        self.deliveries = 0
        self._metrics = getattr(warehouse, "_metrics_sink", None)
        for source in self.sources:
            hound.subscribe(self._handle_event, source)

    @staticmethod
    def _sources_of(query_text: str) -> list[str]:
        """The warehouse sources the query's bindings read; ``["*"]``
        when none resolve (never silently subscribe to nothing)."""
        return sources_of(parse_query(query_text))

    # -- evaluation ---------------------------------------------------------

    @property
    def refreshes(self) -> int:
        """Re-evaluations so far (incremental and full alike)."""
        return self._evaluation.refreshes

    @property
    def last_result(self) -> QueryResult | None:
        """Result as of the latest refresh."""
        return self._evaluation.last_result

    def refresh(self, event: ChangeEvent | None = None) -> ResultDelta:
        """Refresh and compute the delta against the previous snapshot.

        Called automatically from triggers (incremental when the event
        allows it); callable manually for an unconditional full
        re-evaluation — e.g. to prime the subscription before the
        first load (a query over a not-yet-loaded document is treated
        as empty, not an error: the subscription exists precisely to
        wait for that load).
        """
        if event is None:
            keyed = self._evaluation.refresh_full(None)
        else:
            keyed = self._evaluation.apply(event)
        return keyed.to_result_delta(event)

    def _handle_event(self, event: ChangeEvent) -> None:
        delta = self.refresh(event)
        if self.on_change is not None and (delta.changed
                                           or self.fire_on_unchanged):
            start = perf_counter()
            self.on_change(delta)
            self.deliveries += 1
            if self._metrics is not None:
                self._metrics.inc("subscriptions.deliveries")
                self._metrics.observe("subscriptions.delivery_seconds",
                                      perf_counter() - start)

    def cancel(self) -> None:
        """Stop receiving triggers."""
        for source in self.sources:
            self.hound.triggers.unsubscribe(self._handle_event, source)
