"""Incremental view maintenance for standing queries.

The paper's Data Hounds promise *incremental updates*; re-running a
standing query in full on every trigger breaks that promise the moment
the warehouse outgrows the delta. A :class:`StandingEvaluation` keeps
one compiled query plus a row snapshot and, on a
:class:`~repro.datahounds.triggers.ChangeEvent`, re-evaluates only the
documents the harvest touched:

1. The event's present entry keys (added ∪ updated) are spliced into
   the query AST as an ``entry_key IN (...)`` restriction on the
   binding that reads the event's source (the ``on_entry_key`` form of
   the federation planner's :class:`~repro.xquery.ast.ValueIn` atom),
   and that delta query is compiled and executed. Item/value queries
   are automatically restricted to the binding rows' doc_ids by the
   executor, so the whole evaluation is proportional to the delta.
2. Every snapshot row whose key involves a touched entry of the
   event's source is tombstoned (dropped) — this is what makes removed
   and updated entries leave the result.
3. The partial result is merged over the survivors; updated entries
   that still qualify re-enter (possibly with new values = a new row
   identity), ones that no longer qualify stay gone.

Incremental maintenance is *exact* here because one event touches one
source: for a multi-source join, the untouched sides are unchanged by
definition, so restricting the touched side's binding loses nothing.
The evaluation falls back to a full refresh whenever that argument
does not hold or targeting is impossible:

* more than one FOR binding reads the event's source (self-join — the
  delta touches both sides of the join),
* the query's sources could not be resolved (wildcard subscription),
* the event touches more entries than ``incremental_max_keys`` (an
  IN-list the size of the warehouse is slower than a scan),
* the snapshot is not primed, or the query has never passed a full
  semantic check (delta compilation skips the checker by design).
"""

from __future__ import annotations

from dataclasses import replace
from time import perf_counter

from repro.datahounds.triggers import ChangeEvent
from repro.results.resultset import QueryResult, ResultRow
from repro.shredding.loader import execute_in_chunks
from repro.subscriptions.delta import (
    ORIGIN_FULL,
    ORIGIN_INCREMENTAL,
    KeyedDelta,
    canonical_rows,
    key_touches,
    row_key,
)
from repro.xquery.ast import BoolAnd, Query, ValueIn, VarPath
from repro.xquery.parser import parse_query

#: above this many touched entries a full refresh wins — the IN-list
#: restriction stops being selective and parameter lists stop being
#: reasonable (also the documented contract: refresh cost scales with
#: min(delta, warehouse))
DEFAULT_MAX_DELTA_KEYS = 500


def sources_of(query: Query) -> list[str]:
    """The warehouse sources a query's bindings read.

    Context-var bindings (``$b IN $a//x``) stay inside their root
    binding's document, so only document bindings contribute. A query
    whose bindings resolve to *no* source at all (every binding
    re-roots on a variable — possible at parse level even though the
    checker rejects it later) subscribes to the wildcard ``"*"``
    instead of silently subscribing to nothing and going permanently
    stale.
    """
    sources: list[str] = []
    for binding in query.bindings:
        if binding.document is not None:
            source = binding.document.source
            if source not in sources:
                sources.append(source)
    return sources or ["*"]


class StandingEvaluation:
    """One compiled standing query with its row snapshot.

    Shared by every subscriber of the same query text (the manager
    dedupes on text), and by :class:`QuerySubscription` for the
    embedded single-subscriber API. Not thread-safe on its own — the
    caller serializes :meth:`apply` / :meth:`refresh_full` (the
    manager holds a per-evaluation lock; trigger dispatch is already
    serial within one hound load).
    """

    def __init__(self, warehouse, query_text: str,
                 incremental_max_keys: int = DEFAULT_MAX_DELTA_KEYS,
                 incremental: bool = True):
        self.warehouse = warehouse
        self.query_text = query_text
        #: parsed once; delta queries are AST splices of this tree
        self.ast = parse_query(query_text)
        self.sources = sources_of(self.ast)
        self.incremental_max_keys = incremental_max_keys
        #: ``False`` forces every refresh down the full path (the
        #: benchmark's oracle arm; also an operator escape hatch)
        self.incremental = incremental
        self._snapshot: dict[tuple, ResultRow] = {}
        self._primed = False
        #: the base query has passed a full parse/check/compile at
        #: least once — the gate for skipping the checker on deltas
        self._checked = False
        self._columns: list[str] = []
        self._variables: list[str] = []
        self.last_result: QueryResult | None = None
        self.refreshes = 0
        self.full_refreshes = 0
        self.incremental_refreshes = 0
        #: cumulative evaluation seconds per strategy (the E17
        #: benchmark reads these to compare the two paths)
        self.full_seconds = 0.0
        self.incremental_seconds = 0.0
        self._metrics = getattr(warehouse, "_metrics_sink", None)

    # -- public API ---------------------------------------------------------

    def watches(self, source: str) -> bool:
        """True when an event from ``source`` concerns this query."""
        return "*" in self.sources or source in self.sources

    def apply(self, event: ChangeEvent | None = None) -> KeyedDelta:
        """Refresh for one event — incrementally when the event allows
        it, fully otherwise — and return the exact delta."""
        start = perf_counter()
        delta = None
        if event is not None and self._incremental_applicable(event):
            delta = self._refresh_incremental(event)
        if delta is None:
            delta = self._refresh_full(event)
            self.full_refreshes += 1
            self.full_seconds += perf_counter() - start
            if self._metrics is not None:
                self._metrics.inc("subscriptions.full_refreshes")
        else:
            self.incremental_refreshes += 1
            self.incremental_seconds += perf_counter() - start
            if self._metrics is not None:
                self._metrics.inc("subscriptions.incremental_refreshes")
        self.refreshes += 1
        if self._metrics is not None:
            self._metrics.inc("subscriptions.refreshes")
            self._metrics.observe("subscriptions.refresh_seconds",
                                  perf_counter() - start)
            self._metrics.inc("subscriptions.rows_added", len(delta.added))
            self._metrics.inc("subscriptions.rows_removed",
                              len(delta.removed))
        return delta

    def refresh_full(self, event: ChangeEvent | None = None) -> KeyedDelta:
        """Unconditional full re-evaluation (manual refresh / prime)."""
        start = perf_counter()
        delta = self._refresh_full(event)
        self.refreshes += 1
        self.full_refreshes += 1
        self.full_seconds += perf_counter() - start
        if self._metrics is not None:
            self._metrics.inc("subscriptions.refreshes")
            self._metrics.inc("subscriptions.full_refreshes")
            self._metrics.observe("subscriptions.refresh_seconds",
                                  perf_counter() - start)
            self._metrics.inc("subscriptions.rows_added", len(delta.added))
            self._metrics.inc("subscriptions.rows_removed",
                              len(delta.removed))
        return delta

    @property
    def total_rows(self) -> int:
        """Current snapshot size."""
        return len(self._snapshot)

    def canonical(self) -> list:
        """Deterministic JSON-able snapshot (oracle comparisons)."""
        return canonical_rows(self._snapshot)

    # -- full refresh -------------------------------------------------------

    def _refresh_full(self, event: ChangeEvent | None) -> KeyedDelta:
        from repro.errors import UnknownDocumentError
        try:
            result = self.warehouse.query(self.query_text)
            self._checked = True
        except UnknownDocumentError:
            result = QueryResult(columns=[], variables=[])
        self._columns = result.columns
        self._variables = result.variables
        self.last_result = result
        entry_keys = self._entry_keys(
            {node.doc_id for row in result.rows
             for node in row.bindings.values()})
        current = {row_key(row, entry_keys): row for row in result.rows}
        delta = KeyedDelta(
            source=event.source if event else "",
            release=event.release if event else "",
            origin=ORIGIN_FULL, total_rows=len(current),
            trace_id=event.trace_id if event else "")
        for key, row in current.items():
            if key not in self._snapshot:
                delta.added.append((key, row))
        for key, row in self._snapshot.items():
            if key not in current:
                delta.removed.append((key, row))
        self._snapshot = current
        self._primed = True
        return delta

    # -- incremental refresh ------------------------------------------------

    def _incremental_applicable(self, event: ChangeEvent) -> bool:
        if not self.incremental or not self._primed or not self._checked:
            return False
        if event.total_changes > self.incremental_max_keys:
            return False
        # exactly one FOR binding may read the event's source: with two
        # (a self-join) the delta touches both sides and restricting
        # either one loses combinations of old x new entries
        roots = [binding for binding in self.ast.bindings
                 if binding.document is not None
                 and binding.document.source == event.source]
        return len(roots) == 1

    def _refresh_incremental(self, event: ChangeEvent) -> KeyedDelta | None:
        root_var = next(binding.var for binding in self.ast.bindings
                        if binding.document is not None
                        and binding.document.source == event.source)
        touched = event.touched
        present = tuple(sorted(set(event.added) | set(event.updated)))
        partial_rows: list[ResultRow] = []
        if present:
            restriction = ValueIn(target=VarPath(var=root_var),
                                  values=present, on_entry_key=True)
            where = (restriction if self.ast.where is None
                     else BoolAnd(items=(self.ast.where, restriction)))
            delta_ast = replace(self.ast, where=where)
            from repro.translator.compile import compile_query
            compiled = compile_query(
                delta_ast, sequence_tags=self.warehouse.sequence_tags)
            partial = self.warehouse.xomatiq.execute(compiled)
            partial_rows = partial.rows
        entry_keys = self._entry_keys(
            {node.doc_id for row in partial_rows
             for node in row.bindings.values()})
        partial_keyed = {row_key(row, entry_keys): row
                         for row in partial_rows}
        survivors = {key: row for key, row in self._snapshot.items()
                     if not key_touches(key, event.source, touched)}
        current = {**survivors, **partial_keyed}
        delta = KeyedDelta(source=event.source, release=event.release,
                           origin=ORIGIN_INCREMENTAL,
                           total_rows=len(current),
                           trace_id=event.trace_id)
        old = self._snapshot
        for key, row in partial_keyed.items():
            if key not in old:
                delta.added.append((key, row))
        for key, row in old.items():
            if key not in current:
                delta.removed.append((key, row))
        self._snapshot = current
        self.last_result = QueryResult(
            columns=self._columns, variables=self._variables,
            rows=[current[key] for key in sorted(current)])
        if self._metrics is not None:
            self._metrics.observe("subscriptions.delta_keys", len(touched))
        return delta

    # -- helpers ------------------------------------------------------------

    def _entry_keys(self, doc_ids) -> dict[int, tuple]:
        """doc_id → (source, entry_key) for every bound document, via
        the loader's shared parameterized chunked IN-list helper."""
        mapping: dict[int, tuple] = {}
        rows = execute_in_chunks(
            self.warehouse.backend,
            "SELECT doc_id, source, entry_key FROM documents "
            "WHERE doc_id IN ({placeholders})",
            sorted(doc_ids))
        for doc_id, source, entry_key in rows:
            mapping[doc_id] = (source, entry_key)
        return mapping
