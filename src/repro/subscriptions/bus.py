"""Delta fan-out: bounded per-subscriber queues on a worker pool.

The harvest path must never wait on a subscriber. ``TriggerHub.fire``
runs inside ``DataHound.load``, so everything downstream of the
refresh — pushing deltas to N subscribers, some of them slow or broken
— happens here, asynchronously, behind bounded queues:

* every subscriber owns one FIFO queue (bound: ``queue_max``) and a
  backpressure policy deciding what happens when it fills:

  - ``block``     — the publisher waits for room (lossless, couples
                    the producer to the slowest subscriber; the only
                    policy that can stall the harvest path, and it
                    says so on the label),
  - ``drop_oldest`` — the oldest queued delta is discarded
                    (``subscriptions.dropped``); bounded lag, lossy,
  - ``coalesce``  — a new delta is merged into the newest queued one
                    with exact cancellation (``subscriptions.
                    coalesced``); bounded lag, lossless in net effect
                    (a subscriber that wakes up late sees one delta
                    equal to the sum of what it missed);

* a small worker pool drains the queues; deliveries for one subscriber
  stay in order (a subscriber is owned by at most one worker at a
  time), different subscribers proceed in parallel;
* metrics: ``subscriptions.queue_depth`` (gauge, total queued),
  ``subscriptions.lag_seconds`` (enqueue → delivery),
  ``subscriptions.deliveries`` / ``delivery_seconds`` /
  ``delivery_failed`` / ``dropped`` / ``coalesced``;
* when the warehouse traces, each delivery runs inside a
  ``subscription.delivery`` span carrying the *harvest's* trace id, so
  one trace id follows a release from fetch to subscriber callback.
"""

from __future__ import annotations

import threading
from collections import deque
from time import perf_counter, time as wall_time

from repro.subscriptions.delta import KeyedDelta

POLICIES = ("block", "drop_oldest", "coalesce")


class _SubscriberQueue:
    __slots__ = ("callback", "policy", "limit", "items", "scheduled",
                 "delivered", "dropped", "coalesced", "failed")

    def __init__(self, callback, policy: str, limit: int):
        self.callback = callback
        self.policy = policy
        self.limit = limit
        #: queued (delta, enqueued_at_wall) pairs
        self.items: deque = deque()
        #: True while queued for / owned by a worker (ordering guard)
        self.scheduled = False
        self.delivered = 0
        self.dropped = 0
        self.coalesced = 0
        self.failed = 0


class DeliveryBus:
    """Fan deltas out to registered subscribers without ever letting a
    slow one (under ``drop_oldest``/``coalesce``) stall the publisher.
    """

    def __init__(self, workers: int = 2, queue_max: int = 64,
                 metrics=None, events=None, tracer_provider=None):
        self.queue_max = max(1, queue_max)
        self._metrics = metrics
        self._events = events
        #: zero-arg callable returning the current tracer (or None) —
        #: late-bound because ``enable_tracing`` may run after the bus
        #: is built
        self._tracer_provider = tracer_provider
        self._cond = threading.Condition()
        self._queues: dict[str, _SubscriberQueue] = {}
        self._ready: deque[str] = deque()
        self._pending = 0      # queued deltas across all subscribers
        self._in_flight = 0    # deliveries currently inside a callback
        self._closed = False
        self._workers = [
            threading.Thread(target=self._worker, daemon=True,
                             name=f"delivery-bus-{index}")
            for index in range(max(1, workers))]
        for worker in self._workers:
            worker.start()

    # -- registration -------------------------------------------------------

    def register(self, subscriber_id: str, callback,
                 policy: str = "block",
                 queue_max: int | None = None) -> None:
        """Attach a subscriber; ``callback`` receives each
        :class:`KeyedDelta` on a worker thread."""
        if policy not in POLICIES:
            raise ValueError(f"unknown backpressure policy {policy!r} "
                             f"(expected one of {', '.join(POLICIES)})")
        with self._cond:
            self._queues[subscriber_id] = _SubscriberQueue(
                callback, policy, queue_max or self.queue_max)

    def unregister(self, subscriber_id: str) -> None:
        """Detach a subscriber; queued deltas are discarded."""
        with self._cond:
            queue = self._queues.pop(subscriber_id, None)
            if queue is not None:
                self._pending -= len(queue.items)
                queue.items.clear()
                self._set_depth()
                self._cond.notify_all()

    @property
    def subscriber_count(self) -> int:
        """Registered subscribers."""
        with self._cond:
            return len(self._queues)

    # -- publish ------------------------------------------------------------

    def publish(self, subscriber_ids, delta: KeyedDelta) -> int:
        """Enqueue one delta for each subscriber; returns how many
        queues accepted it (dropped/coalesced still count — the
        subscriber will observe the change, just folded or later)."""
        accepted = 0
        for subscriber_id in subscriber_ids:
            if self._enqueue(subscriber_id, delta):
                accepted += 1
        return accepted

    def _enqueue(self, subscriber_id: str, delta: KeyedDelta) -> bool:
        with self._cond:
            queue = self._queues.get(subscriber_id)
            if queue is None:
                return False
            if queue.policy == "coalesce" and queue.items:
                # fold into the newest *queued* delta (in-flight ones
                # already left the queue, so ordering is preserved)
                old, enqueued_at = queue.items[-1]
                queue.items[-1] = (old.merge(delta), enqueued_at)
                queue.coalesced += 1
                if self._metrics is not None:
                    self._metrics.inc("subscriptions.coalesced")
                return True
            if len(queue.items) >= queue.limit:
                if queue.policy == "drop_oldest":
                    queue.items.popleft()
                    self._pending -= 1
                    queue.dropped += 1
                    if self._metrics is not None:
                        self._metrics.inc("subscriptions.dropped")
                else:   # block: lossless by choice, couples to consumer
                    while (len(queue.items) >= queue.limit
                           and not self._closed
                           and self._queues.get(subscriber_id) is queue):
                        self._cond.wait(0.05)
                    if (self._closed
                            or self._queues.get(subscriber_id) is not queue):
                        return False
            queue.items.append((delta, wall_time()))
            self._pending += 1
            self._set_depth()
            if not queue.scheduled:
                queue.scheduled = True
                self._ready.append(subscriber_id)
            self._cond.notify()
            return True

    # -- draining -----------------------------------------------------------

    def flush(self, timeout: float | None = None) -> bool:
        """Block until every queued delta has been delivered (tests and
        benchmarks); returns False on timeout."""
        deadline = None if timeout is None else perf_counter() + timeout
        with self._cond:
            while self._pending > 0 or self._in_flight > 0:
                remaining = None
                if deadline is not None:
                    remaining = deadline - perf_counter()
                    if remaining <= 0:
                        return False
                self._cond.wait(remaining if remaining is not None
                                else 0.5)
            return True

    def close(self) -> None:
        """Stop the workers; queued deltas are abandoned."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        for worker in self._workers:
            worker.join(timeout=2.0)

    def stats(self) -> dict:
        """Queue depths and counters per subscriber (operator view)."""
        with self._cond:
            return {
                subscriber_id: {
                    "policy": queue.policy,
                    "queued": len(queue.items),
                    "delivered": queue.delivered,
                    "dropped": queue.dropped,
                    "coalesced": queue.coalesced,
                    "failed": queue.failed,
                } for subscriber_id, queue in self._queues.items()}

    # -- worker pool --------------------------------------------------------

    def _worker(self) -> None:
        while True:
            with self._cond:
                while not self._ready and not self._closed:
                    self._cond.wait()
                if self._closed:
                    return
                subscriber_id = self._ready.popleft()
                queue = self._queues.get(subscriber_id)
                if queue is None or not queue.items:
                    if queue is not None:
                        queue.scheduled = False
                    continue
                delta, enqueued_at = queue.items.popleft()
                self._pending -= 1
                self._in_flight += 1
                self._set_depth()
                self._cond.notify_all()   # room freed: wake publishers
            self._deliver(subscriber_id, queue, delta, enqueued_at)
            with self._cond:
                self._in_flight -= 1
                if queue.items and self._queues.get(subscriber_id) is queue:
                    self._ready.append(subscriber_id)
                    self._cond.notify()
                else:
                    queue.scheduled = False
                self._cond.notify_all()   # flush() waiters

    def _deliver(self, subscriber_id: str, queue: _SubscriberQueue,
                 delta: KeyedDelta, enqueued_at: float) -> None:
        if self._metrics is not None:
            self._metrics.observe("subscriptions.lag_seconds",
                                  max(0.0, wall_time() - enqueued_at))
        tracer = (self._tracer_provider()
                  if self._tracer_provider is not None else None)
        span_cm = None
        if tracer is not None and delta.trace_id:
            from repro.obs.trace import TraceContext
            span_cm = tracer.span(
                "subscription.delivery",
                context=TraceContext(trace_id=delta.trace_id),
                subscriber=subscriber_id, origin=delta.origin,
                added=len(delta.added), removed=len(delta.removed))
            span_cm.__enter__()
        start = perf_counter()
        try:
            queue.callback(delta)
        except Exception as exc:   # noqa: BLE001 - isolate subscribers
            queue.failed += 1
            if self._metrics is not None:
                self._metrics.inc("subscriptions.delivery_failed")
            if self._events is not None:
                self._events.emit("subscriptions.delivery_failed",
                                  severity="error",
                                  subscriber=subscriber_id,
                                  error_type=type(exc).__name__,
                                  error=str(exc))
        else:
            queue.delivered += 1
            if self._metrics is not None:
                self._metrics.inc("subscriptions.deliveries")
                self._metrics.observe("subscriptions.delivery_seconds",
                                      perf_counter() - start)
        finally:
            if span_cm is not None:
                span_cm.__exit__(None, None, None)

    def _set_depth(self) -> None:
        if self._metrics is not None:
            self._metrics.set_gauge("subscriptions.queue_depth",
                                    self._pending)
