"""SQLite backend — the "standard commercial RDBMS" stand-in.

The paper loads its warehouse into Oracle 9i; the architectural claim
("bring all of the power of relational database systems to bear on the
XML-query problem") only needs *a* mature SQL engine with secondary
indexes and a cost-based planner, which ``sqlite3`` provides without a
server dependency. The backend speaks the same dialect the
XQ2SQL-transformer emits, so it is interchangeable with minidb.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path
from typing import Iterable

from repro.errors import StorageError
from repro.relational.backend import Params, Row


class SqliteBackend:
    """A :class:`~repro.relational.backend.Backend` over sqlite3."""

    name = "sqlite"

    def __init__(self, path: str | Path = ":memory:"):
        self._connection = sqlite3.connect(str(path))
        # Bulk-load pragmas: the warehouse is rebuildable from the
        # sources, so relaxed durability is the right trade.
        self._connection.execute("PRAGMA synchronous = OFF")
        self._connection.execute("PRAGMA journal_mode = MEMORY")

    def execute(self, sql: str, params: Params = ()) -> list[Row]:
        """Run one statement; result rows for queries, [] for DML."""
        try:
            cursor = self._connection.execute(sql, tuple(params))
        except sqlite3.Error as exc:
            raise StorageError(f"sqlite error: {exc}\n  sql: {sql}") from exc
        if cursor.description is None:
            return []
        return cursor.fetchall()

    def executemany(self, sql: str, params_seq: Iterable[Params]) -> int:
        """Run one DML statement per parameter tuple."""
        params_list = [tuple(p) for p in params_seq]
        if not params_list:
            return 0
        try:
            self._connection.executemany(sql, params_list)
        except sqlite3.Error as exc:
            raise StorageError(f"sqlite error: {exc}\n  sql: {sql}") from exc
        return len(params_list)

    def commit(self) -> None:
        """Flush pending writes to the database file."""
        self._connection.commit()

    def analyze(self) -> None:
        """Refresh planner statistics. Without ANALYZE, sqlite's
        optimizer has no cardinality estimates over the generic schema
        and picks full-scan join orders (measured 100x slower on the
        Figure 11 join)."""
        self._connection.execute("ANALYZE")

    def close(self) -> None:
        """Close the underlying sqlite connection."""
        self._connection.close()

    def explain(self, sql: str, params: Params = ()) -> list[str]:
        """Query-plan lines (the paper's index tuning workflow relied on
        reading the optimizer's plans; we expose the same)."""
        rows = self.execute(f"EXPLAIN QUERY PLAN {sql}", params)
        return [str(row[-1]) for row in rows]
