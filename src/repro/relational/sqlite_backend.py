"""SQLite backend — the "standard commercial RDBMS" stand-in.

The paper loads its warehouse into Oracle 9i; the architectural claim
("bring all of the power of relational database systems to bear on the
XML-query problem") only needs *a* mature SQL engine with secondary
indexes and a cost-based planner, which ``sqlite3`` provides without a
server dependency. The backend speaks the same dialect the
XQ2SQL-transformer emits, so it is interchangeable with minidb.

Tuning (see docs/performance.md): the warehouse is rebuildable from
the flat-file sources, so durability pragmas are relaxed
(``synchronous = OFF``), the page cache and temp store are sized for
bulk loads, and a single long-lived cursor rides sqlite3's
prepared-statement cache so the translator's repetitive SQL (chunked
IN-lists, per-table inserts) is compiled once, not per call.

Journaling depends on where the database lives (docs/service.md):

* ``:memory:`` — ``journal_mode = MEMORY``. There is exactly one
  connection (per-thread connections would each see a different empty
  database), so cross-connection concurrency cannot arise and the
  in-memory rollback journal is the cheapest correct choice.
* file-backed — ``journal_mode = WAL`` plus a ``busy_timeout``. The
  query service (and any second process: a CLI ``health`` probe, a
  scraper) opens *additional* connections to the same file; under the
  old rollback journal a committing writer took an exclusive lock that
  turned concurrent readers away with an immediate ``database is
  locked``, and a second writer failed instantly. WAL lets readers
  proceed against their snapshot while one writer appends, and the
  busy timeout makes a second writer wait its turn instead of erroring.

Durability trade-off: WAL with ``synchronous = OFF`` means a power
loss can drop recently committed transactions (the WAL is not fsynced
per commit), which is acceptable here because every release is
re-harvestable from the flat-file sources; the database file itself
stays structurally consistent thanks to WAL's append-then-checkpoint
design.
"""

from __future__ import annotations

import sqlite3
import threading
from itertools import islice
from pathlib import Path
from typing import Iterable

from repro.errors import StorageError
from repro.relational.backend import Params, Row


class SqliteBackend:
    """A :class:`~repro.relational.backend.Backend` over sqlite3.

    The connection is shared across threads behind one re-entrant
    lock: sqlite3's default ``check_same_thread=True`` would abort any
    cross-thread execute with a ``ProgrammingError``, but the
    federation scatter-gather pool (and concurrent readers generally)
    call into one shard backend from worker threads. A guarded shared
    connection keeps ``:memory:`` semantics intact — per-thread
    connections would each see a *different* empty in-memory database —
    and serializes statement execution, which is what sqlite does
    internally anyway.
    """

    name = "sqlite"

    #: rows per underlying ``cursor.executemany`` call — large batches
    #: stream through in chunks instead of being materialized twice
    _EXECUTEMANY_CHUNK = 10_000

    def __init__(self, path: str | Path = ":memory:",
                 cache_kib: int = 65_536,
                 cached_statements: int = 512,
                 busy_timeout_ms: int = 5_000):
        # cached_statements: the stdlib default (128) evicts under the
        # translator's statement mix; 512 keeps every hot statement's
        # compiled form resident (the prepared-statement cache half of
        # the compiled-query cache story).
        self._connection = sqlite3.connect(
            str(path), cached_statements=cached_statements,
            check_same_thread=False)
        self._lock = threading.RLock()
        self._cursor = self._connection.cursor()
        # Bulk-load pragmas: the warehouse is rebuildable from the
        # sources, so relaxed durability is the right trade; the page
        # cache and temp store keep index maintenance off the disk.
        # Journaling splits on locus (module docstring): one-connection
        # in-memory databases take the MEMORY rollback journal,
        # file-backed databases take WAL + busy_timeout so concurrent
        # connections (service threads, CLI probes, a second process)
        # read during writes and queue behind a writer instead of
        # failing with an immediate "database is locked".
        in_memory = str(path) == ":memory:" or "mode=memory" in str(path)
        pragmas = ["PRAGMA synchronous = OFF"]
        if in_memory:
            pragmas.append("PRAGMA journal_mode = MEMORY")
        else:
            pragmas.append("PRAGMA journal_mode = WAL")
            pragmas.append(f"PRAGMA busy_timeout = {int(busy_timeout_ms)}")
        pragmas += [f"PRAGMA cache_size = -{int(cache_kib)}",
                    "PRAGMA temp_store = MEMORY"]
        for pragma in pragmas:
            self._cursor.execute(pragma)

    def execute(self, sql: str, params: Params = ()) -> list[Row]:
        """Run one statement; result rows for queries, [] for DML."""
        with self._lock:
            try:
                cursor = self._cursor.execute(sql, tuple(params))
            except sqlite3.Error as exc:
                raise StorageError(
                    f"sqlite error: {exc}\n  sql: {sql}") from exc
            if cursor.description is None:
                return []
            return cursor.fetchall()

    def executemany(self, sql: str, params_seq: Iterable[Params]) -> int:
        """Run one DML statement per parameter tuple, streaming the
        iterable through fixed-size chunks (multi-million-row batches
        are never double-buffered); returns the tuple count."""
        iterator = iter(params_seq)
        total = 0
        while True:
            chunk = list(islice(iterator, self._EXECUTEMANY_CHUNK))
            if not chunk:
                return total
            with self._lock:
                try:
                    self._cursor.executemany(sql, chunk)
                except sqlite3.Error as exc:
                    raise StorageError(
                        f"sqlite error: {exc}\n  sql: {sql}") from exc
            total += len(chunk)

    def commit(self) -> None:
        """Flush pending writes to the database file."""
        with self._lock:
            self._connection.commit()

    def analyze(self) -> None:
        """Refresh planner statistics. Without ANALYZE, sqlite's
        optimizer has no cardinality estimates over the generic schema
        and picks full-scan join orders (measured 100x slower on the
        Figure 11 join)."""
        with self._lock:
            self._cursor.execute("ANALYZE")

    def interrupt(self) -> None:
        """Abort the statement currently running on this connection
        (the aborted ``execute`` raises :class:`StorageError`).

        Deliberately lock-free: the whole point is to break into a
        statement that *holds* the backend lock — a straggler the
        federated executor has already failed over from, or one that
        outlived its deadline. ``sqlite3.Connection.interrupt`` is
        documented thread-safe.
        """
        self._connection.interrupt()

    def close(self) -> None:
        """Close the underlying sqlite connection."""
        with self._lock:
            self._connection.close()

    def explain(self, sql: str, params: Params = ()) -> list[str]:
        """Query-plan lines (the paper's index tuning workflow relied on
        reading the optimizer's plans; we expose the same)."""
        rows = self.execute(f"EXPLAIN QUERY PLAN {sql}", params)
        return [str(row[-1]) for row in rows]
