"""The generic relational schema for shredded XML (paper §2.2).

The paper keeps its schema proprietary but states its five design
properties; this schema has exactly those properties:

1. **Generic** — one fixed set of tables holds *any* DTD's documents
   (edge/value decomposition, after Florescu-Kossmann and
   Shanmugasundaram et al.).
2. **Document order preserved as data** — every element row carries
   ``sib_ord`` (position among siblings) and ``doc_order`` (global
   pre-order rank), enough to reconstruct documents byte-faithfully and
   to evaluate BEFORE/AFTER-style predicates.
3. **Sequence vs non-sequence split** — residue strings go to their own
   ``sequences`` table; annotation values stay in ``text_values``.
   Sequence queries (pattern scans) never drag annotation pages and
   vice versa.
4. **String vs numeric split** — values that parse as numbers also fill
   ``num_value`` so range predicates compare numerically, not
   lexicographically (the paper's sequence-length/homology-score
   examples).
5. **Keyword search** — ``keywords`` is a positional inverted index
   over text and attribute values, supporting ``contains(x, "kw")``
   and the proximity extension.

Tables
------

``documents(doc_id, source, collection, entry_key, root_tag)``
``elements(doc_id, node_id, parent_id, tag, sib_ord, doc_order,
subtree_end, depth, tag_sib_ord)``
``attributes(doc_id, node_id, name, value, num_value)``
``text_values(doc_id, node_id, value, num_value)``
``sequences(doc_id, node_id, residues, length, molecule_type)``
``keywords(doc_id, node_id, token, position)``

``node_id`` equals ``doc_order`` of the element (pre-order rank), so
``(doc_id, node_id)`` is a key and parent/child joins are integer
equijoins. ``subtree_end`` is the highest ``doc_order`` inside the
element's subtree — the interval encoding of Li & Moon (the paper's
reference [32]) — so the XPath descendant axis becomes the range
predicate ``d.doc_order BETWEEN a.doc_order AND a.subtree_end``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational.backend import Backend

#: DDL statements, in creation order.
CREATE_TABLES = [
    """CREATE TABLE documents (
        doc_id INTEGER PRIMARY KEY,
        source TEXT NOT NULL,
        collection TEXT NOT NULL,
        entry_key TEXT NOT NULL,
        root_tag TEXT NOT NULL
    )""",
    """CREATE TABLE elements (
        doc_id INTEGER NOT NULL,
        node_id INTEGER NOT NULL,
        parent_id INTEGER,
        tag TEXT NOT NULL,
        sib_ord INTEGER NOT NULL,
        doc_order INTEGER NOT NULL,
        subtree_end INTEGER NOT NULL,
        depth INTEGER NOT NULL,
        tag_sib_ord INTEGER NOT NULL
    )""",
    """CREATE TABLE attributes (
        doc_id INTEGER NOT NULL,
        node_id INTEGER NOT NULL,
        name TEXT NOT NULL,
        value TEXT NOT NULL,
        num_value REAL
    )""",
    """CREATE TABLE text_values (
        doc_id INTEGER NOT NULL,
        node_id INTEGER NOT NULL,
        value TEXT NOT NULL,
        num_value REAL
    )""",
    """CREATE TABLE sequences (
        doc_id INTEGER NOT NULL,
        node_id INTEGER NOT NULL,
        residues TEXT NOT NULL,
        length INTEGER NOT NULL,
        molecule_type TEXT
    )""",
    """CREATE TABLE keywords (
        doc_id INTEGER NOT NULL,
        node_id INTEGER NOT NULL,
        token TEXT NOT NULL,
        position INTEGER NOT NULL
    )""",
]

#: The index set arrived at by "meticulous analysis of the query plans"
#: (paper §3.2). Experiment E6 ablates these.
CREATE_INDEXES = [
    "CREATE INDEX idx_documents_source ON documents (source, collection)",
    "CREATE INDEX idx_documents_key ON documents (source, entry_key)",
    "CREATE INDEX idx_elements_node ON elements (doc_id, node_id)",
    "CREATE INDEX idx_elements_parent ON elements (doc_id, parent_id)",
    "CREATE INDEX idx_elements_tag ON elements (tag)",
    "CREATE INDEX idx_attributes_node ON attributes (doc_id, node_id)",
    "CREATE INDEX idx_attributes_name ON attributes (name, value)",
    "CREATE INDEX idx_text_node ON text_values (doc_id, node_id)",
    "CREATE INDEX idx_text_value ON text_values (value)",
    "CREATE INDEX idx_text_num ON text_values (num_value)",
    "CREATE INDEX idx_sequences_node ON sequences (doc_id, node_id)",
    "CREATE INDEX idx_keywords_token ON keywords (token)",
    "CREATE INDEX idx_keywords_node ON keywords (doc_id, node_id)",
]

TABLE_NAMES = ["documents", "elements", "attributes", "text_values",
               "sequences", "keywords"]

INSERT_STATEMENTS = {
    "documents": ("INSERT INTO documents (doc_id, source, collection, "
                  "entry_key, root_tag) VALUES (?, ?, ?, ?, ?)"),
    "elements": ("INSERT INTO elements (doc_id, node_id, parent_id, tag, "
                 "sib_ord, doc_order, subtree_end, depth, tag_sib_ord) "
                 "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)"),
    "attributes": ("INSERT INTO attributes (doc_id, node_id, name, value, "
                   "num_value) VALUES (?, ?, ?, ?, ?)"),
    "text_values": ("INSERT INTO text_values (doc_id, node_id, value, "
                    "num_value) VALUES (?, ?, ?, ?)"),
    "sequences": ("INSERT INTO sequences (doc_id, node_id, residues, "
                  "length, molecule_type) VALUES (?, ?, ?, ?, ?)"),
    "keywords": ("INSERT INTO keywords (doc_id, node_id, token, position) "
                 "VALUES (?, ?, ?, ?)"),
}


@dataclass(frozen=True)
class SchemaOptions:
    """Knobs the ablation experiments turn.

    ``with_indexes=False`` builds the bare tables (experiment E6);
    ``numeric_typing=False`` makes the shredder leave ``num_value``
    NULL, so range predicates fall back to string comparison
    (experiment E7).
    """

    with_indexes: bool = True
    numeric_typing: bool = True


def create_schema(backend: Backend,
                  options: SchemaOptions = SchemaOptions()) -> None:
    """Create the generic schema (tables and, by default, indexes)."""
    for statement in CREATE_TABLES:
        backend.execute(statement)
    if options.with_indexes:
        for statement in CREATE_INDEXES:
            backend.execute(statement)
    backend.commit()


def drop_schema(backend: Backend) -> None:
    """Drop all schema tables (ignores missing ones)."""
    for table in TABLE_NAMES:
        backend.execute(f"DROP TABLE IF EXISTS {table}")
    backend.commit()
