"""minidb heap tables and catalog.

A table is a list of row tuples with tombstone deletion (``None``
slots); row ids are list offsets, which indexes reference. Column types
follow SQLite's storage-class spirit: INTEGER/REAL coerce numeric
strings on insert, TEXT stores as given, NULL passes through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import ConstraintError, SchemaError
from repro.relational.minidb.index import Index, build_index
from repro.relational.minidb.sql import ColumnDef


@dataclass
class Table:
    """A heap table: column defs, tombstoned row list, indexes."""

    name: str
    columns: list[ColumnDef]
    rows: list[tuple | None] = field(default_factory=list)
    live_count: int = 0
    indexes: dict[str, Index] = field(default_factory=dict)

    def __post_init__(self):
        self._offsets = {col.name: i for i, col in enumerate(self.columns)}
        if len(self._offsets) != len(self.columns):
            raise SchemaError(f"table {self.name}: duplicate column names")
        self._primary = [i for i, col in enumerate(self.columns)
                         if col.primary_key]

    def column_offset(self, name: str) -> int:
        """Position of a column in row tuples."""
        try:
            return self._offsets[name]
        except KeyError:
            raise SchemaError(
                f"table {self.name} has no column {name!r}") from None

    def coerce(self, column: ColumnDef, value):
        """Apply column-type coercion to one value."""
        if value is None:
            if column.not_null or column.primary_key:
                raise ConstraintError(
                    f"{self.name}.{column.name} is NOT NULL")
            return None
        if column.type_name == "INTEGER":
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, int):
                return value
            if isinstance(value, float) and value.is_integer():
                return int(value)
            if isinstance(value, str) and value.lstrip("-").isdigit():
                return int(value)
            return value  # sqlite-style: keep as-is rather than fail
        if column.type_name == "REAL":
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return float(value)
            try:
                return float(value)
            except (TypeError, ValueError):
                return value
        return value if isinstance(value, str) else str(value)

    def insert(self, values: Sequence) -> int:
        """Insert one full-width row; returns its row id."""
        if len(values) != len(self.columns):
            raise SchemaError(
                f"{self.name}: expected {len(self.columns)} values, "
                f"got {len(values)}")
        row = tuple(self.coerce(col, val)
                    for col, val in zip(self.columns, values))
        row_id = len(self.rows)
        if self._primary:
            key = tuple(row[i] for i in self._primary)
            primary_index = self.indexes.get("__primary__")
            if primary_index is not None and primary_index.lookup(key):
                raise ConstraintError(
                    f"{self.name}: duplicate primary key {key}")
        self.rows.append(row)
        self.live_count += 1
        for index in self.indexes.values():
            index.add(row, row_id)
        return row_id

    def delete_where(self, predicate) -> int:
        """Delete rows where ``predicate(row)`` is true; returns count."""
        deleted = 0
        for row_id, row in enumerate(self.rows):
            if row is None or not predicate(row):
                continue
            for index in self.indexes.values():
                index.remove(row, row_id)
            self.rows[row_id] = None
            self.live_count -= 1
            deleted += 1
        return deleted

    def scan(self) -> Iterator[tuple[int, tuple]]:
        """Yield ``(row_id, row)`` for live rows."""
        for row_id, row in enumerate(self.rows):
            if row is not None:
                yield row_id, row

    def add_index(self, index_name: str, columns: list[str],
                  unique: bool = False) -> Index:
        """Create and backfill an index over existing rows."""
        offsets = [self.column_offset(c) for c in columns]
        index = build_index(index_name, offsets, unique)
        for row_id, row in self.scan():
            index.add(row, row_id)
        self.indexes[index_name] = index
        return index


class Catalog:
    """All tables and the index namespace of one minidb instance."""

    def __init__(self):
        self.tables: dict[str, Table] = {}
        self._index_owner: dict[str, str] = {}   # index name -> table name

    def create_table(self, name: str, columns: list[ColumnDef]) -> Table:
        """Register a new table (primary keys get a unique index)."""
        if name in self.tables:
            raise SchemaError(f"table {name} already exists")
        table = Table(name, columns)
        self.tables[name] = table
        if any(col.primary_key for col in columns):
            primary_cols = [col.name for col in columns if col.primary_key]
            table.add_index("__primary__", primary_cols, unique=True)
        return table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        """Remove a table and release its index names."""
        if name not in self.tables:
            if if_exists:
                return
            raise SchemaError(f"no such table {name}")
        table = self.tables.pop(name)
        for index_name in list(table.indexes):
            self._index_owner.pop(index_name, None)

    def table(self, name: str) -> Table:
        """Look a table up or raise :class:`SchemaError`."""
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(f"no such table {name}") from None

    def create_index(self, index_name: str, table_name: str,
                     columns: list[str], unique: bool = False) -> None:
        """Create a named secondary index."""
        if index_name in self._index_owner:
            raise SchemaError(f"index {index_name} already exists")
        table = self.table(table_name)
        table.add_index(index_name, columns, unique)
        self._index_owner[index_name] = table_name

    def drop_index(self, index_name: str, if_exists: bool = False) -> None:
        """Drop a named secondary index."""
        owner = self._index_owner.pop(index_name, None)
        if owner is None:
            if if_exists:
                return
            raise SchemaError(f"no such index {index_name}")
        self.tables[owner].indexes.pop(index_name, None)
