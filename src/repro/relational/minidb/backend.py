"""minidb backend: the SQL entry point over catalog + executor."""

from __future__ import annotations

from typing import Iterable

from repro.errors import SchemaError
from repro.relational.backend import Params, Row
from repro.relational.minidb.executor import Plan, execute_select
from repro.relational.minidb.expr import ColumnEnv, Literal, Param
from repro.relational.minidb.sql import (
    CreateIndex,
    CreateTable,
    Delete,
    DropIndex,
    DropTable,
    Insert,
    Select,
    parse_sql,
)
from repro.relational.minidb.table import Catalog


class MiniDbBackend:
    """A :class:`~repro.relational.backend.Backend` implemented from
    scratch in Python.

    Parsed statements are cached by SQL text, so repeated
    ``executemany`` loads and benchmark loops pay the parse cost once.
    The last SELECT's plan is kept on :attr:`last_plan` for inspection
    (experiment E6 reads it the way the paper's authors read Oracle's
    query plans).
    """

    name = "minidb"

    def __init__(self):
        self.catalog = Catalog()
        self.last_plan: Plan | None = None
        self._statement_cache: dict[str, object] = {}

    # -- Backend protocol ----------------------------------------------------

    def execute(self, sql: str, params: Params = ()) -> list[Row]:
        """Parse (cached) and run one statement."""
        statement = self._parse(sql)
        return self._dispatch(statement, tuple(params))

    def executemany(self, sql: str, params_seq: Iterable[Params]) -> int:
        """Run one DML statement per parameter tuple."""
        statement = self._parse(sql)
        count = 0
        for params in params_seq:
            self._dispatch(statement, tuple(params))
            count += 1
        return count

    def commit(self) -> None:
        """In-memory engine: nothing to flush."""

    def analyze(self) -> None:
        """Statistics hook for parity with SqliteBackend; minidb reads
        live table sizes directly, so there is nothing to refresh."""

    def close(self) -> None:
        """Drop all in-memory state."""
        self.catalog = Catalog()
        self._statement_cache.clear()

    def explain(self, sql: str, params: Params = ()) -> list[str]:
        """Run the query and return the executor's plan notes."""
        statement = self._parse(sql)
        if not isinstance(statement, Select):
            return []
        __, plan = execute_select(self.catalog, statement, tuple(params))
        return list(plan.steps)

    # -- dispatch ---------------------------------------------------------------

    def _parse(self, sql: str):
        statement = self._statement_cache.get(sql)
        if statement is None:
            statement = parse_sql(sql)
            self._statement_cache[sql] = statement
        return statement

    def _dispatch(self, statement, params: tuple) -> list[Row]:
        if isinstance(statement, Select):
            rows, plan = execute_select(self.catalog, statement, params)
            self.last_plan = plan
            return rows
        if isinstance(statement, Insert):
            self._insert(statement, params)
            return []
        if isinstance(statement, Delete):
            self._delete(statement, params)
            return []
        if isinstance(statement, CreateTable):
            self.catalog.create_table(statement.table, statement.columns)
            return []
        if isinstance(statement, CreateIndex):
            self.catalog.create_index(statement.index, statement.table,
                                      statement.columns, statement.unique)
            return []
        if isinstance(statement, DropTable):
            self.catalog.drop_table(statement.table, statement.if_exists)
            return []
        if isinstance(statement, DropIndex):
            self.catalog.drop_index(statement.index, statement.if_exists)
            return []
        raise SchemaError(f"unsupported statement {type(statement).__name__}")

    def _insert(self, statement: Insert, params: tuple) -> None:
        table = self.catalog.table(statement.table)
        values_by_column: dict[str, object] = {}
        for column, expr in zip(statement.columns, statement.values):
            if isinstance(expr, Param):
                values_by_column[column] = params[expr.index]
            elif isinstance(expr, Literal):
                values_by_column[column] = expr.value
            else:
                raise SchemaError(
                    "INSERT values must be literals or ? parameters")
        row = []
        for column in table.columns:
            if column.name not in values_by_column:
                raise SchemaError(
                    f"INSERT into {table.name} missing column {column.name} "
                    f"(all columns are required)")
            row.append(values_by_column[column.name])
        table.insert(row)

    def _delete(self, statement: Delete, params: tuple) -> None:
        table = self.catalog.table(statement.table)
        if statement.where is None:
            table.delete_where(lambda row: True)
            return
        env = ColumnEnv()
        for offset, column in enumerate(table.columns):
            env.add(table.name, column.name, offset)
        predicate = statement.where.compile(env)
        table.delete_where(lambda row: predicate(row, params))
