"""minidb secondary indexes.

Two flavours behind one interface:

* :class:`HashIndex` — dict of key tuple → row-id list; O(1) equality
  probes. Used for multi-column indexes and unique/primary keys.
* :class:`OrderedIndex` — a sorted key list with bisect probes;
  supports range scans (``<``, ``<=``, ``>``, ``>=``) as well as
  equality, which is what ``num_value`` range predicates need. Single-
  column indexes get this flavour.

Both ignore rows whose (leading) key column is NULL — SQL predicates
never match NULL anyway, and it keeps range scans clean of
incomparable values. An ordered index keys on the first column only;
equality on the remaining columns is re-checked by the executor's
residual filter.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator

from repro.errors import ConstraintError


class Index:
    """Interface both index flavours implement."""

    name: str
    offsets: list[int]
    unique: bool

    def add(self, row: tuple, row_id: int) -> None:
        """Index one live row (no-op when its key is NULL)."""
        raise NotImplementedError

    def remove(self, row: tuple, row_id: int) -> None:
        """Drop one row from the index (tolerates absent entries)."""
        raise NotImplementedError

    def lookup(self, key: tuple) -> list[int]:
        """Row ids whose key columns equal ``key``."""
        raise NotImplementedError

    @property
    def supports_ranges(self) -> bool:
        """True when :meth:`range_scan` is available."""
        return False


class HashIndex(Index):
    """Dict-of-buckets index: O(1) equality probes on the full key."""
    def __init__(self, name: str, offsets: list[int], unique: bool = False):
        self.name = name
        self.offsets = offsets
        self.unique = unique
        self._buckets: dict[tuple, list[int]] = {}

    def _key(self, row: tuple) -> tuple | None:
        key = tuple(row[i] for i in self.offsets)
        if any(part is None for part in key):
            return None
        return key

    def add(self, row: tuple, row_id: int) -> None:
        key = self._key(row)
        if key is None:
            return
        bucket = self._buckets.setdefault(key, [])
        if self.unique and bucket:
            raise ConstraintError(
                f"index {self.name}: duplicate key {key}")
        bucket.append(row_id)

    def remove(self, row: tuple, row_id: int) -> None:
        key = self._key(row)
        if key is None:
            return
        bucket = self._buckets.get(key)
        if bucket and row_id in bucket:
            bucket.remove(row_id)
            if not bucket:
                del self._buckets[key]

    def lookup(self, key: tuple) -> list[int]:
        return self._buckets.get(tuple(key), [])

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())


class OrderedIndex(Index):
    """Single-column ordered index: parallel sorted lists of keys and
    row-id lists, probed with bisect.

    Keys of mixed type within one index would break ordering, so keys
    are segregated by type bucket (numbers before strings, as sqlite
    orders storage classes)."""

    def __init__(self, name: str, offsets: list[int], unique: bool = False):
        self.name = name
        self.offsets = offsets
        self.unique = unique
        self._keys: list[tuple] = []      # (type_rank, value)
        self._row_ids: list[list[int]] = []

    @property
    def supports_ranges(self) -> bool:
        return True

    @staticmethod
    def _rank(value) -> tuple:
        if isinstance(value, bool):
            return (0, int(value))
        if isinstance(value, (int, float)):
            return (0, value)
        return (1, str(value))

    def add(self, row: tuple, row_id: int) -> None:
        value = row[self.offsets[0]]
        if value is None:
            return
        key = self._rank(value)
        pos = bisect.bisect_left(self._keys, key)
        if pos < len(self._keys) and self._keys[pos] == key:
            if self.unique:
                raise ConstraintError(
                    f"index {self.name}: duplicate key {value!r}")
            self._row_ids[pos].append(row_id)
        else:
            self._keys.insert(pos, key)
            self._row_ids.insert(pos, [row_id])

    def remove(self, row: tuple, row_id: int) -> None:
        value = row[self.offsets[0]]
        if value is None:
            return
        key = self._rank(value)
        pos = bisect.bisect_left(self._keys, key)
        if pos < len(self._keys) and self._keys[pos] == key:
            bucket = self._row_ids[pos]
            if row_id in bucket:
                bucket.remove(row_id)
                if not bucket:
                    del self._keys[pos]
                    del self._row_ids[pos]

    def lookup(self, key: tuple) -> list[int]:
        value = key[0]
        if value is None:
            return []
        ranked = self._rank(value)
        pos = bisect.bisect_left(self._keys, ranked)
        if pos < len(self._keys) and self._keys[pos] == ranked:
            return self._row_ids[pos]
        return []

    def range_scan(self, low=None, high=None, low_inclusive: bool = True,
                   high_inclusive: bool = True) -> Iterator[int]:
        """Row ids with ``low (<|<=) key (<|<=) high``; either bound may
        be None (open). Only same-type-bucket keys are visited."""
        if low is not None:
            ranked_low = self._rank(low)
            start = (bisect.bisect_left(self._keys, ranked_low)
                     if low_inclusive
                     else bisect.bisect_right(self._keys, ranked_low))
        else:
            start = 0
        if high is not None:
            ranked_high = self._rank(high)
            stop = (bisect.bisect_right(self._keys, ranked_high)
                    if high_inclusive
                    else bisect.bisect_left(self._keys, ranked_high))
        else:
            stop = len(self._keys)
        for pos in range(start, stop):
            yield from self._row_ids[pos]

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._row_ids)


def build_index(name: str, offsets: list[int], unique: bool) -> Index:
    """Pick the index flavour: ordered for single-column (range
    support), hash otherwise."""
    if len(offsets) == 1:
        return OrderedIndex(name, offsets, unique)
    return HashIndex(name, offsets, unique)
