"""minidb query planner and executor.

SELECT execution pipeline:

1. **Conjunct pool** — the WHERE clause and every JOIN ... ON condition
   are split into top-level AND conjuncts.
2. **Left-deep join loop** — tables join in FROM order. Each new table
   is brought in by a **hash join** when an equi-join conjunct connects
   it to the tables already joined, otherwise by nested loop. Residual
   conjuncts apply as soon as all their columns are in scope
   (predicate pushdown).
3. **Access paths** — a table's single-table equality conjunct probes a
   matching index (hash or ordered); range conjuncts
   (``<,<=,>,>=``) use an ordered index's bisect scan; otherwise a
   sequential scan. Parameters are bound before planning, so ``?``
   values participate in access-path selection.
4. **Aggregation / projection / DISTINCT / ORDER BY / LIMIT** finish
   the pipeline.

Every plan decision is recorded as a line in :attr:`Plan.steps`, the
minidb analogue of ``EXPLAIN QUERY PLAN`` — the paper's index tuning
was driven by reading Oracle's plans; experiment E6 reads these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import ExecutionError, SchemaError
from repro.relational.minidb.expr import (
    Aggregate,
    ColumnEnv,
    ColumnRef,
    Comparison,
    Expr,
    Literal,
    Param,
)
from repro.relational.minidb.index import OrderedIndex
from repro.relational.minidb.sql import Select, SelectItem, TableRef
from repro.relational.minidb.table import Catalog, Table


@dataclass
class Plan:
    """Human-readable record of the executor's choices."""

    steps: list[str] = field(default_factory=list)

    def note(self, message: str) -> None:
        """Record one plan decision."""
        self.steps.append(message)


@dataclass
class _Scope:
    """Aliases joined so far and their row-tuple layout."""

    env: ColumnEnv = field(default_factory=ColumnEnv)
    aliases: set[str] = field(default_factory=set)
    width: int = 0

    def add_table(self, alias: str, table: Table) -> None:
        for offset, column in enumerate(table.columns):
            self.env.add(alias, column.name, self.width + offset)
        self.aliases.add(alias)
        self.width += len(table.columns)


def execute_select(catalog: Catalog, select: Select,
                   params: Sequence) -> tuple[list[tuple], Plan]:
    """Run a SELECT; returns (rows, plan)."""
    plan = Plan()
    refs = select.table_refs()
    if not refs:
        raise SchemaError("SELECT without FROM is not supported")
    seen_aliases: set[str] = set()
    for ref in refs:
        if ref.alias in seen_aliases:
            raise SchemaError(f"duplicate table alias {ref.alias}")
        seen_aliases.add(ref.alias)

    conjuncts: list[Expr] = []
    if select.where is not None:
        conjuncts.extend(_split_and(select.where))
    for join in select.joins:
        conjuncts.extend(_split_and(join.on))

    needed = _needed_columns(select, conjuncts)
    rows, scope = _run_joins(catalog, refs, conjuncts, params, plan,
                             distinct=select.distinct, needed=needed)

    if select.group_by or _has_aggregates(select.items):
        result = _aggregate(select, rows, scope.env, params, plan)
    else:
        result = _project(select.items, rows, scope.env, params)

    if select.distinct:
        result = _distinct(result)
        plan.note("distinct")
    if select.order_by:
        result = _order(select, result, rows, scope.env, params)
        plan.note("sort")
    if select.limit is not None:
        result = result[:select.limit]
    return result, plan


# --------------------------------------------------------------------------
# Join pipeline
# --------------------------------------------------------------------------


def _needed_columns(select: Select,
                    conjuncts: list[Expr]) -> set[tuple[str | None, str]] | None:
    """(alias, column) pairs the query reads anywhere, or None when a
    star projection makes everything live."""
    needed: set[tuple[str | None, str]] = set()
    exprs: list[Expr] = []
    for item in select.items:
        if item.star:
            return None
        exprs.append(item.expr)
    exprs.extend(select.group_by)
    exprs.extend(order.expr for order in select.order_by)
    exprs.extend(conjuncts)
    for expr in exprs:
        for ref in expr.column_refs():
            needed.add((ref.alias, ref.column))
    return needed


def _run_joins(catalog: Catalog, refs: list[TableRef],
               conjuncts: list[Expr], params: Sequence,
               plan: Plan, distinct: bool = False,
               needed: set[tuple[str | None, str]] | None = None
               ) -> tuple[list[tuple], _Scope]:
    remaining = list(conjuncts)
    scope = _Scope()
    rows: list[tuple] = []
    single_table = len(refs) == 1
    if single_table:
        # bare column names can only mean the one table: qualify them so
        # pushdown and access-path selection see them
        alias = refs[0].alias
        for conjunct in remaining:
            for column_ref in conjunct.column_refs():
                if column_ref.alias is None:
                    column_ref.alias = alias

    refs = _order_refs(catalog, refs, remaining, plan)
    # projection pushdown for DISTINCT queries: columns never read by
    # the projection, ordering or any predicate are dead weight that
    # keeps duplicate intermediate rows distinct (e.g. keyword-index
    # positions). Null them out and dedupe as soon as their table
    # joins, instead of only at the final DISTINCT.
    live_mask: list[bool] = []

    def extend_mask(ref: TableRef, table: Table) -> None:
        for column in table.columns:
            live_mask.append(
                needed is None or not distinct
                or (ref.alias, column.name) in needed
                or (None, column.name) in needed)

    def compact(current: list[tuple]) -> list[tuple]:
        if not distinct or needed is None or all(live_mask):
            return current
        mask = tuple(live_mask)
        deduped = dict.fromkeys(
            tuple(v if live else None for v, live in zip(row, mask))
            for row in current)
        if len(deduped) < len(current):
            plan.note(f"distinct pushdown: {len(current)} -> "
                      f"{len(deduped)} rows")
        return list(deduped)

    for position, ref in enumerate(refs):
        table = catalog.table(ref.table)
        table_conjuncts = _take_single_table(remaining, ref.alias)
        if position == 0:
            scope.add_table(ref.alias, table)
            extend_mask(ref, table)
            rows = _scan_table(table, ref, table_conjuncts, scope, params,
                               plan)
        else:
            equi = _take_equi_joins(remaining, scope.aliases, ref.alias)
            new_scope_offset = scope.width
            scope.add_table(ref.alias, table)
            extend_mask(ref, table)
            new_rows = _scan_table(
                table, ref, table_conjuncts,
                _solo_scope(ref.alias, table), params, plan)
            if equi:
                rows = _hash_join(rows, new_rows, equi, scope, ref,
                                  new_scope_offset, plan, params)
            else:
                plan.note(f"nested loop join {ref.table} as {ref.alias} "
                          f"({len(new_rows)} rows)")
                rows = [outer + inner for outer in rows for inner in new_rows]
        # conjuncts that just became fully bound
        applicable = _take_bound(remaining, scope.aliases)
        for conjunct in applicable:
            predicate = conjunct.compile(scope.env)
            rows = [row for row in rows if predicate(row, params)]
            plan.note(f"filter after {ref.alias}: {len(rows)} rows")
        rows = compact(rows)
    # leftovers: conjuncts with unqualified refs in a multi-table query
    # (resolvable only if the bare name is unambiguous in the full scope)
    for conjunct in remaining:
        predicate = conjunct.compile(scope.env)  # raises if unresolvable
        rows = [row for row in rows if predicate(row, params)]
        plan.note(f"final filter: {len(rows)} rows")
    return rows, scope


def _order_refs(catalog: Catalog, refs: list[TableRef],
                conjuncts: list[Expr], plan: Plan) -> list[TableRef]:
    """Greedy join ordering.

    FROM order is what the SQL says, not what is fast: joining two
    unconnected chains in text order materializes their cross product
    before the connecting predicate ever applies. Instead: start from
    the table with the most selective single-table conjuncts, then
    repeatedly add a table connected to the joined set by an equi-join
    conjunct (hash-joinable), then by any conjunct (filterable), and
    only as a last resort an unconnected one.
    """
    if len(refs) <= 2:
        return refs

    def single_conjuncts(alias: str) -> list[Expr]:
        return [c for c in conjuncts
                if _aliases_of(c) == {alias} and not _unqualified_refs(c)]

    def has_const_equality(alias: str) -> bool:
        return any(
            isinstance(c, Comparison) and c.op == "="
            and any(isinstance(side, (Literal, Param))
                    for side in (c.left, c.right))
            for c in single_conjuncts(alias))

    def size(ref: TableRef) -> int:
        return catalog.table(ref.table).live_count

    pending = list(refs)
    first = max(pending, key=lambda r: (
        has_const_equality(r.alias), len(single_conjuncts(r.alias)),
        -size(r)))
    ordered = [first]
    pending.remove(first)
    joined = {first.alias}

    while pending:
        def connects_equi(ref: TableRef) -> bool:
            return any(
                _match_equi(c, joined, ref.alias) is not None
                for c in conjuncts)

        def connects_any(ref: TableRef) -> bool:
            return any(
                ref.alias in _aliases_of(c)
                and _aliases_of(c) <= joined | {ref.alias}
                and len(_aliases_of(c)) > 1
                for c in conjuncts)

        candidates = [r for r in pending if connects_equi(r)]
        if not candidates:
            candidates = [r for r in pending if connects_any(r)]
        if not candidates:
            candidates = pending
        best = max(candidates, key=lambda r: (
            has_const_equality(r.alias), len(single_conjuncts(r.alias)),
            -size(r)))
        ordered.append(best)
        pending.remove(best)
        joined.add(best.alias)

    if [r.alias for r in ordered] != [r.alias for r in refs]:
        plan.note("join order: " + " -> ".join(r.alias for r in ordered))
    return ordered


def _solo_scope(alias: str, table: Table) -> _Scope:
    scope = _Scope()
    scope.add_table(alias, table)
    return scope


def _scan_table(table: Table, ref: TableRef, conjuncts: list[Expr],
                scope: _Scope, params: Sequence, plan: Plan) -> list[tuple]:
    """Rows of one table with its single-table conjuncts applied,
    via the best available access path."""
    access_rows, used, note = _choose_access_path(table, ref.alias,
                                                  conjuncts, scope.env,
                                                  params)
    plan.note(f"{note} on {table.name} as {ref.alias}")
    residual = [c for c in conjuncts if c is not used]
    if not residual:
        return access_rows
    predicates = [c.compile(scope.env) for c in residual]
    return [row for row in access_rows
            if all(p(row, params) for p in predicates)]


def _choose_access_path(table: Table, alias: str, conjuncts: list[Expr],
                        env: ColumnEnv, params: Sequence
                        ) -> tuple[list[tuple], Expr | None, str]:
    """Pick index lookup / range scan / seq scan. Returns (rows,
    conjunct satisfied by the access path, plan note)."""
    # composite equality: all columns of a multi-column index bound
    equalities: dict[str, tuple] = {}
    for conjunct in conjuncts:
        bound = _constant_equality(conjunct, alias, params)
        if bound is not None:
            equalities.setdefault(bound[0], (bound[1], conjunct))
    if len(equalities) > 1:
        offsets_bound = {table.column_offset(c): c for c in equalities}
        for index in table.indexes.values():
            if (len(index.offsets) > 1
                    and all(o in offsets_bound for o in index.offsets)):
                key = tuple(equalities[offsets_bound[o]][0]
                            for o in index.offsets)
                rows = [table.rows[row_id] for row_id in index.lookup(key)]
                rows = [row for row in rows if row is not None]
                # all participating conjuncts are satisfied; report one
                # and let the rest re-check harmlessly as residuals
                satisfied = equalities[offsets_bound[index.offsets[0]]][1]
                return rows, satisfied, f"index lookup ({index.name})"
    # equality: col = constant
    for conjunct in conjuncts:
        bound = _constant_equality(conjunct, alias, params)
        if bound is None:
            continue
        column, value = bound
        index = _find_index(table, column)
        if index is not None:
            rows = [table.rows[row_id] for row_id in index.lookup((value,))]
            rows = [row for row in rows if row is not None]
            return rows, conjunct, f"index lookup ({index.name})"
    # range: col (<|<=|>|>=) constant on an ordered index
    for conjunct in conjuncts:
        bound_range = _constant_range(conjunct, alias, params)
        if bound_range is None:
            continue
        column, low, high, low_inc, high_inc = bound_range
        index = _find_index(table, column)
        if isinstance(index, OrderedIndex):
            row_ids = index.range_scan(low, high, low_inc, high_inc)
            rows = [table.rows[row_id] for row_id in row_ids]
            rows = [row for row in rows if row is not None]
            return rows, conjunct, f"index range scan ({index.name})"
    rows = [row for __, row in table.scan()]
    return rows, None, "seq scan"


def _find_index(table: Table, column: str):
    """An index probeable by a single value of ``column``: an ordered
    index keyed on it, or a single-column hash index. Multi-column hash
    indexes cannot answer a prefix probe and are skipped."""
    offset = table.column_offset(column)
    best = None
    for index in table.indexes.values():
        if isinstance(index, OrderedIndex):
            if index.offsets[0] == offset:
                return index
        elif index.offsets == [offset]:
            best = best or index
    return best


def _constant_equality(conjunct: Expr, alias: str, params: Sequence):
    """Match ``alias.col = <constant>`` (either side); returns
    (column, value) or None."""
    if not isinstance(conjunct, Comparison) or conjunct.op != "=":
        return None
    for left, right in ((conjunct.left, conjunct.right),
                        (conjunct.right, conjunct.left)):
        if (isinstance(left, ColumnRef)
                and (left.alias == alias or left.alias is None)):
            value = _constant_value(right, params)
            if value is not NotImplemented:
                return left.column, value
    return None


_RANGE_OPS = {"<", "<=", ">", ">="}


def _constant_range(conjunct: Expr, alias: str, params: Sequence):
    """Match ``alias.col (<|<=|>|>=) <constant>`` (either orientation);
    returns (column, low, high, low_inclusive, high_inclusive)."""
    if not isinstance(conjunct, Comparison) or conjunct.op not in _RANGE_OPS:
        return None
    left, right, op = conjunct.left, conjunct.right, conjunct.op
    if isinstance(right, ColumnRef) and not isinstance(left, ColumnRef):
        # constant OP col  ->  col flipped-OP constant
        left, right = right, left
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
    if not (isinstance(left, ColumnRef)
            and (left.alias == alias or left.alias is None)):
        return None
    value = _constant_value(right, params)
    if value is NotImplemented or value is None:
        return None
    if op == "<":
        return left.column, None, value, True, False
    if op == "<=":
        return left.column, None, value, True, True
    if op == ">":
        return left.column, value, None, False, True
    return left.column, value, None, True, True


def _constant_value(expr: Expr, params: Sequence):
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, Param):
        return params[expr.index]
    return NotImplemented


def _hash_join(outer_rows: list[tuple], inner_rows: list[tuple],
               equi: list[tuple[Expr, Expr]], scope: _Scope, ref: TableRef,
               inner_offset: int, plan: Plan,
               params: Sequence) -> list[tuple]:
    """Hash join: build on the (new) inner table, probe with outer rows.

    ``equi`` pairs are (outer_side_expr, inner_side_expr); inner exprs
    reference only the new table, so they compile against a shifted
    solo layout.
    """
    inner_env = ColumnEnv()
    # rebuild inner layout at offset zero for key extraction
    width = scope.width - inner_offset
    for (alias, column), offset in scope.env._qualified.items():
        if alias == ref.alias:
            inner_env.add(alias, column, offset - inner_offset)
    outer_keys = [pair[0].compile(scope.env) for pair in equi]
    inner_keys = [pair[1].compile(inner_env) for pair in equi]

    build: dict[tuple, list[tuple]] = {}
    for row in inner_rows:
        key = tuple(fn(row, params) for fn in inner_keys)
        if any(part is None for part in key):
            continue
        build.setdefault(key, []).append(row)
    plan.note(f"hash join {ref.table} as {ref.alias} "
              f"(build {len(inner_rows)} rows, {len(equi)} key parts)")

    joined: list[tuple] = []
    pad = (None,) * width
    for outer in outer_rows:
        padded = outer + pad
        key = tuple(fn(padded, params) for fn in outer_keys)
        if any(part is None for part in key):
            continue
        for inner in build.get(key, ()):
            joined.append(outer + inner)
    return joined


def _split_and(expr: Expr) -> list[Expr]:
    from repro.relational.minidb.expr import And
    if isinstance(expr, And):
        result: list[Expr] = []
        for item in expr.items:
            result.extend(_split_and(item))
        return result
    return [expr]


def _aliases_of(expr: Expr) -> set[str]:
    return {ref.alias for ref in expr.column_refs() if ref.alias is not None}


def _unqualified_refs(expr: Expr) -> bool:
    return any(ref.alias is None for ref in expr.column_refs())


def _take_single_table(pool: list[Expr], alias: str) -> list[Expr]:
    """Pop conjuncts that reference only ``alias`` (qualified)."""
    taken: list[Expr] = []
    kept: list[Expr] = []
    for conjunct in pool:
        aliases = _aliases_of(conjunct)
        if aliases == {alias} and not _unqualified_refs(conjunct):
            taken.append(conjunct)
        else:
            kept.append(conjunct)
    pool[:] = kept
    return taken


def _take_equi_joins(pool: list[Expr], joined: set[str],
                     new_alias: str) -> list[tuple[Expr, Expr]]:
    """Pop ``outer.col = new.col`` conjuncts; returns (outer_expr,
    inner_expr) pairs oriented outer-first."""
    pairs: list[tuple[Expr, Expr]] = []
    kept: list[Expr] = []
    for conjunct in pool:
        pair = _match_equi(conjunct, joined, new_alias)
        if pair is not None:
            pairs.append(pair)
        else:
            kept.append(conjunct)
    pool[:] = kept
    return pairs


def _match_equi(conjunct: Expr, joined: set[str],
                new_alias: str) -> tuple[Expr, Expr] | None:
    if not isinstance(conjunct, Comparison) or conjunct.op != "=":
        return None
    left_aliases = _aliases_of(conjunct.left)
    right_aliases = _aliases_of(conjunct.right)
    if (_unqualified_refs(conjunct.left)
            or _unqualified_refs(conjunct.right)):
        return None
    if not left_aliases or not right_aliases:
        return None
    if left_aliases <= joined and right_aliases == {new_alias}:
        return conjunct.left, conjunct.right
    if right_aliases <= joined and left_aliases == {new_alias}:
        return conjunct.right, conjunct.left
    return None


def _take_bound(pool: list[Expr], aliases: set[str]) -> list[Expr]:
    """Pop conjuncts whose qualified refs are all in scope (and that
    have no unqualified refs, which we cannot place reliably until the
    end — they are taken once all tables are in)."""
    taken: list[Expr] = []
    kept: list[Expr] = []
    for conjunct in pool:
        if _aliases_of(conjunct) <= aliases and not _unqualified_refs(conjunct):
            taken.append(conjunct)
        else:
            kept.append(conjunct)
    pool[:] = kept
    return taken


# --------------------------------------------------------------------------
# Projection, aggregation, ordering
# --------------------------------------------------------------------------


def _expand_star(items: list[SelectItem], env: ColumnEnv) -> list:
    """Compiled projection functions for the select list."""
    compiled = []
    for item in items:
        if item.star:
            offsets = sorted(env._qualified.values())
            for offset in offsets:
                compiled.append(
                    (lambda row, params, o=offset: row[o]))
        else:
            compiled.append(item.expr.compile(env))
    return compiled


def _project(items: list[SelectItem], rows: list[tuple],
             env: ColumnEnv, params: Sequence) -> list[tuple]:
    compiled = _expand_star(items, env)
    return [tuple(fn(row, params) for fn in compiled) for row in rows]


def _has_aggregates(items: list[SelectItem]) -> bool:
    return any(isinstance(item.expr, Aggregate) for item in items)


def _aggregate(select: Select, rows: list[tuple], env: ColumnEnv,
               params: Sequence, plan: Plan) -> list[tuple]:
    plan.note("aggregate")
    group_fns = [expr.compile(env) for expr in select.group_by]
    groups: dict[tuple, list[tuple]] = {}
    if group_fns:
        for row in rows:
            key = tuple(fn(row, params) for fn in group_fns)
            groups.setdefault(key, []).append(row)
    else:
        groups[()] = rows

    output: list[tuple] = []
    for key in groups:
        group_rows = groups[key]
        record: list[Any] = []
        for item in select.items:
            if isinstance(item.expr, Aggregate):
                record.append(_run_aggregate(item.expr, group_rows, env,
                                             params))
            else:
                fn = item.expr.compile(env)
                record.append(fn(group_rows[0], params)
                              if group_rows else None)
        output.append(tuple(record))
    return output


def _run_aggregate(agg: Aggregate, rows: list[tuple], env: ColumnEnv,
                   params: Sequence):
    if agg.arg is None:
        return len(rows)
    fn = agg.arg.compile(env)
    values = [fn(row, params) for row in rows]
    values = [v for v in values if v is not None]
    if agg.distinct:
        values = list(dict.fromkeys(values))
    if agg.name == "count":
        return len(values)
    if not values:
        return None
    if agg.name == "min":
        return min(values)
    if agg.name == "max":
        return max(values)
    if agg.name == "sum":
        return sum(values)
    if agg.name == "avg":
        return sum(values) / len(values)
    raise ExecutionError(f"unknown aggregate {agg.name}")


def _distinct(rows: list[tuple]) -> list[tuple]:
    return list(dict.fromkeys(rows))


def _order(select: Select, result: list[tuple], rows: list[tuple],
           env: ColumnEnv, params: Sequence) -> list[tuple]:
    """ORDER BY over the projected result.

    Order expressions are evaluated against the pre-projection rows when
    possible; since projection may drop columns, we pair result records
    with their source rows (only valid for non-aggregate selects, where
    the two lists are parallel). Aggregate selects order by position in
    the select list instead.
    """
    order_items = select.order_by
    if (select.group_by or _has_aggregates(select.items)
            or len(result) != len(rows)):
        # order by matching select-list expressions positionally
        positions = []
        for order_item in order_items:
            for index, item in enumerate(select.items):
                if _expr_text(item.expr) == _expr_text(order_item.expr):
                    positions.append((index, order_item.ascending))
                    break
            else:
                raise SchemaError(
                    "ORDER BY expression must appear in the select list "
                    "of an aggregate query")
        ranked = result
        for index, ascending in reversed(positions):
            ranked = sorted(ranked, key=lambda r: _sort_key(r[index]),
                            reverse=not ascending)
        return ranked
    fns = [(item.expr.compile(env), item.ascending) for item in order_items]
    paired = list(zip(result, rows))
    for fn, ascending in reversed(fns):
        paired.sort(key=lambda pair: _sort_key(fn(pair[1], params)),
                    reverse=not ascending)
    return [record for record, __ in paired]


def _sort_key(value) -> tuple:
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    return (2, str(value))


def _expr_text(expr: Expr) -> str:
    return repr(expr)
