"""Expression AST for minidb SQL.

Expressions appear in WHERE clauses, join conditions and select lists.
Each node compiles to a Python closure ``fn(row, params) -> value``
against a :class:`ColumnEnv` that maps qualified column names to
positions in the executor's combined row tuples — compiling once per
statement keeps per-row evaluation cheap, which matters when the
nested-loop baseline scans millions of combinations.

NULL semantics follow SQL where it is observable in our workload:
comparisons involving NULL are not-true, ``IS [NOT] NULL`` tests
explicitly, aggregates skip NULLs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.errors import ExecutionError, SchemaError

RowFn = Callable[[tuple, Sequence], Any]


class ColumnEnv:
    """Maps ``alias.column`` (and unambiguous bare ``column``) names to
    offsets in the combined row tuple."""

    def __init__(self):
        self._qualified: dict[tuple[str, str], int] = {}
        self._bare: dict[str, int | None] = {}  # None = ambiguous

    def add(self, alias: str, column: str, offset: int) -> None:
        """Register one column at a row-tuple offset."""
        self._qualified[(alias, column)] = offset
        if column in self._bare:
            self._bare[column] = None
        else:
            self._bare[column] = offset

    def resolve(self, alias: str | None, column: str) -> int:
        """Offset of ``alias.column`` (or unambiguous bare name)."""
        if alias is not None:
            try:
                return self._qualified[(alias, column)]
            except KeyError:
                raise SchemaError(
                    f"unknown column {alias}.{column}") from None
        offset = self._bare.get(column, "missing")
        if offset == "missing":
            raise SchemaError(f"unknown column {column}")
        if offset is None:
            raise SchemaError(f"ambiguous column {column}")
        return offset


class Expr:
    """Base class; subclasses implement :meth:`compile`."""

    def compile(self, env: ColumnEnv) -> RowFn:
        """Compile to a closure ``fn(row, params) -> value`` bound to
        the given column layout; subclasses implement the operator
        semantics described in the module docstring."""
        raise NotImplementedError

    def column_refs(self) -> list["ColumnRef"]:
        """All column references in this expression tree."""
        refs: list[ColumnRef] = []
        self._collect_refs(refs)
        return refs

    def _collect_refs(self, refs: list["ColumnRef"]) -> None:
        for value in self.__dict__.values():
            if isinstance(value, Expr):
                value._collect_refs(refs)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Expr):
                        item._collect_refs(refs)


@dataclass
class ColumnRef(Expr):
    """``alias.column`` or bare ``column``."""

    alias: str | None
    column: str

    def compile(self, env: ColumnEnv) -> RowFn:
        offset = env.resolve(self.alias, self.column)
        return lambda row, params: row[offset]

    def _collect_refs(self, refs: list["ColumnRef"]) -> None:
        refs.append(self)

    def __str__(self) -> str:
        return f"{self.alias}.{self.column}" if self.alias else self.column


@dataclass
class Literal(Expr):
    """A constant (string, number or NULL)."""

    value: Any

    def compile(self, env: ColumnEnv) -> RowFn:
        value = self.value
        return lambda row, params: value


@dataclass
class Param(Expr):
    """A positional ``?`` parameter."""

    index: int

    def compile(self, env: ColumnEnv) -> RowFn:
        index = self.index
        return lambda row, params: params[index]


_COMPARISONS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_ARITHMETIC: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


@dataclass
class Comparison(Expr):
    """Binary comparison; NULL operands make it not-true."""

    op: str
    left: Expr
    right: Expr

    def compile(self, env: ColumnEnv) -> RowFn:
        left = self.left.compile(env)
        right = self.right.compile(env)
        compare = _COMPARISONS[self.op]

        def run(row, params):
            a = left(row, params)
            b = right(row, params)
            if a is None or b is None:
                return None   # SQL three-valued logic: unknown
            try:
                return compare(a, b)
            except TypeError:
                # mixed text/number comparison: SQL engines coerce;
                # we compare as strings, matching sqlite's affinity-less case
                return compare(str(a), str(b))

        return run


@dataclass
class Arithmetic(Expr):
    """Binary arithmetic; NULL propagates."""

    op: str
    left: Expr
    right: Expr

    def compile(self, env: ColumnEnv) -> RowFn:
        left = self.left.compile(env)
        right = self.right.compile(env)
        operate = _ARITHMETIC[self.op]

        def run(row, params):
            a = left(row, params)
            b = right(row, params)
            if a is None or b is None:
                return None
            try:
                return operate(a, b)
            except (TypeError, ZeroDivisionError) as exc:
                raise ExecutionError(
                    f"arithmetic error: {a!r} {self.op} {b!r}: {exc}"
                ) from exc

        return run


@dataclass
class And(Expr):
    """Conjunction with SQL three-valued logic."""

    items: list[Expr]

    def compile(self, env: ColumnEnv) -> RowFn:
        compiled = [item.compile(env) for item in self.items]

        def run(row, params):
            unknown = False
            for fn in compiled:
                value = fn(row, params)
                if value is None:
                    unknown = True
                elif not value:
                    return False
            return None if unknown else True

        return run


@dataclass
class Or(Expr):
    """Disjunction with SQL three-valued logic."""

    items: list[Expr]

    def compile(self, env: ColumnEnv) -> RowFn:
        compiled = [item.compile(env) for item in self.items]

        def run(row, params):
            unknown = False
            for fn in compiled:
                value = fn(row, params)
                if value is None:
                    unknown = True
                elif value:
                    return True
            return None if unknown else False

        return run


@dataclass
class Not(Expr):
    """Negation; unknown stays unknown."""

    item: Expr

    def compile(self, env: ColumnEnv) -> RowFn:
        inner = self.item.compile(env)

        def run(row, params):
            value = inner(row, params)
            if value is None:
                return None
            return not value

        return run


@dataclass
class IsNull(Expr):
    """``IS [NOT] NULL`` — the only NULL-aware predicate."""

    item: Expr
    negate: bool = False

    def compile(self, env: ColumnEnv) -> RowFn:
        inner = self.item.compile(env)
        if self.negate:
            return lambda row, params: inner(row, params) is not None
        return lambda row, params: inner(row, params) is None


@dataclass
class Like(Expr):
    """SQL LIKE with ``%`` and ``_`` wildcards (case-insensitive, as in
    sqlite's default)."""

    item: Expr
    pattern: Expr
    negate: bool = False

    def compile(self, env: ColumnEnv) -> RowFn:
        inner = self.item.compile(env)
        pattern_fn = self.pattern.compile(env)
        negate = self.negate
        cache: dict[str, re.Pattern] = {}

        def run(row, params):
            value = inner(row, params)
            pattern = pattern_fn(row, params)
            if value is None or pattern is None:
                return None
            compiled = cache.get(pattern)
            if compiled is None:
                compiled = compile_like(pattern)
                cache[pattern] = compiled
            matched = compiled.match(str(value)) is not None
            return matched != negate

        return run


def compile_like(pattern: str) -> re.Pattern:
    """Translate a LIKE pattern to a compiled regex."""
    parts: list[str] = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.compile("".join(parts) + r"\Z", re.IGNORECASE | re.DOTALL)


@dataclass
class InList(Expr):
    """``x IN (a, b, c)`` over literal/param items."""

    item: Expr
    options: list[Expr]
    negate: bool = False

    def compile(self, env: ColumnEnv) -> RowFn:
        inner = self.item.compile(env)
        compiled = [option.compile(env) for option in self.options]
        negate = self.negate

        def run(row, params):
            value = inner(row, params)
            if value is None:
                return None
            result = any(fn(row, params) == value for fn in compiled)
            return result != negate

        return run


_SCALAR_FUNCTIONS: dict[str, Callable] = {
    "lower": lambda v: None if v is None else str(v).lower(),
    "upper": lambda v: None if v is None else str(v).upper(),
    "length": lambda v: None if v is None else len(str(v)),
    "abs": lambda v: None if v is None else abs(v),
}


@dataclass
class FuncCall(Expr):
    """Scalar function call (lower/upper/length/abs)."""

    name: str
    args: list[Expr]

    def compile(self, env: ColumnEnv) -> RowFn:
        func = _SCALAR_FUNCTIONS.get(self.name.lower())
        if func is None:
            raise SchemaError(f"unknown function {self.name}()")
        if len(self.args) != 1:
            raise SchemaError(f"{self.name}() takes exactly one argument")
        inner = self.args[0].compile(env)
        return lambda row, params: func(inner(row, params))


AGGREGATE_NAMES = {"count", "min", "max", "sum", "avg"}


@dataclass
class Aggregate(Expr):
    """Aggregate call in a select list: COUNT(*), MIN(x), etc.

    Compiled per-row functions are meaningless for aggregates; the
    executor special-cases them.
    """

    name: str
    arg: Expr | None     # None = COUNT(*)
    distinct: bool = False

    def compile(self, env: ColumnEnv) -> RowFn:
        raise ExecutionError(
            f"aggregate {self.name}() outside an aggregating select")
