"""SQL lexer and parser for minidb.

Covers the dialect the warehouse uses — DDL
(``CREATE TABLE/INDEX``, ``DROP``), DML (``INSERT``, ``DELETE``) and
queries (``SELECT`` with joins, WHERE, GROUP BY, ORDER BY, LIMIT,
DISTINCT, aggregates) — with ``?`` positional parameters. It is the
same surface the SQLite backend consumes, so one SQL string from the
XQ2SQL-transformer runs on either engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import SchemaError
from repro.relational.minidb.expr import (
    AGGREGATE_NAMES,
    Aggregate,
    And,
    Arithmetic,
    ColumnRef,
    Comparison,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    Param,
)

# --------------------------------------------------------------------------
# Lexer
# --------------------------------------------------------------------------

_SYMBOLS = ("<=", ">=", "!=", "<>", "(", ")", ",", ".", "=", "<", ">",
            "+", "-", "*", "/", "?", ";")

_KEYWORDS = {
    "select", "distinct", "from", "join", "inner", "left", "on", "where",
    "and", "or", "not", "in", "is", "null", "like", "group", "order", "by",
    "asc", "desc", "limit", "as", "create", "table", "index", "unique",
    "drop", "if", "exists", "insert", "into", "values", "delete",
    "primary", "key", "integer", "text", "real",
}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source offset."""

    kind: str      # "ident", "keyword", "number", "string", "symbol", "end"
    value: str
    position: int


def tokenize(sql: str) -> list[Token]:
    """Tokenize one SQL statement (appends an ``end`` sentinel)."""
    tokens: list[Token] = []
    pos = 0
    length = len(sql)
    while pos < length:
        ch = sql[pos]
        if ch in " \t\r\n":
            pos += 1
            continue
        if ch == "-" and sql.startswith("--", pos):
            newline = sql.find("\n", pos)
            pos = length if newline < 0 else newline + 1
            continue
        if ch == "'":
            end = pos + 1
            parts: list[str] = []
            while True:
                quote = sql.find("'", end)
                if quote < 0:
                    raise SchemaError(f"unterminated string at offset {pos}")
                if sql.startswith("''", quote):
                    parts.append(sql[end:quote] + "'")
                    end = quote + 2
                    continue
                parts.append(sql[end:quote])
                break
            tokens.append(Token("string", "".join(parts), pos))
            pos = quote + 1
            continue
        if ch.isdigit() or (ch == "." and pos + 1 < length
                            and sql[pos + 1].isdigit()):
            end = pos
            seen_dot = False
            while end < length and (sql[end].isdigit()
                                    or (sql[end] == "." and not seen_dot)):
                if sql[end] == ".":
                    seen_dot = True
                end += 1
            tokens.append(Token("number", sql[pos:end], pos))
            pos = end
            continue
        if ch.isalpha() or ch == "_" or ch == '"':
            if ch == '"':
                quote = sql.find('"', pos + 1)
                if quote < 0:
                    raise SchemaError(
                        f"unterminated quoted identifier at offset {pos}")
                tokens.append(Token("ident", sql[pos + 1:quote], pos))
                pos = quote + 1
                continue
            end = pos
            while end < length and (sql[end].isalnum() or sql[end] == "_"):
                end += 1
            word = sql[pos:end]
            kind = "keyword" if word.lower() in _KEYWORDS else "ident"
            tokens.append(Token(kind, word, pos))
            pos = end
            continue
        matched = False
        for symbol in _SYMBOLS:
            if sql.startswith(symbol, pos):
                tokens.append(Token("symbol", symbol, pos))
                pos += len(symbol)
                matched = True
                break
        if not matched:
            raise SchemaError(f"unexpected character {ch!r} at offset {pos}")
    tokens.append(Token("end", "", length))
    return tokens


# --------------------------------------------------------------------------
# Statement AST
# --------------------------------------------------------------------------


@dataclass
class ColumnDef:
    """One column of a CREATE TABLE."""

    name: str
    type_name: str
    primary_key: bool = False
    not_null: bool = False


@dataclass
class CreateTable:
    """``CREATE TABLE name (columns...)``."""

    table: str
    columns: list[ColumnDef]


@dataclass
class CreateIndex:
    """``CREATE [UNIQUE] INDEX name ON table (columns)``."""

    index: str
    table: str
    columns: list[str]
    unique: bool = False


@dataclass
class DropTable:
    """``DROP TABLE [IF EXISTS] name``."""

    table: str
    if_exists: bool = False


@dataclass
class DropIndex:
    """``DROP INDEX [IF EXISTS] name``."""

    index: str
    if_exists: bool = False


@dataclass
class Insert:
    """``INSERT INTO table (columns) VALUES (...)``."""

    table: str
    columns: list[str]
    values: list[Expr]


@dataclass
class Delete:
    """``DELETE FROM table [WHERE ...]``."""

    table: str
    where: Expr | None = None


@dataclass
class TableRef:
    """A table in FROM, with its alias."""

    table: str
    alias: str


@dataclass
class Join:
    """``JOIN table alias ON condition``."""

    ref: TableRef
    on: Expr


@dataclass
class SelectItem:
    """One projection item (or ``*``)."""

    expr: Expr
    alias: str | None = None
    star: bool = False


@dataclass
class OrderItem:
    """One ORDER BY key with direction."""

    expr: Expr
    ascending: bool = True


@dataclass
class Select:
    """A full SELECT statement."""

    items: list[SelectItem]
    base: TableRef | None = None
    joins: list[Join] = field(default_factory=list)
    cross: list[TableRef] = field(default_factory=list)
    where: Expr | None = None
    group_by: list[Expr] = field(default_factory=list)
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    distinct: bool = False

    def table_refs(self) -> list[TableRef]:
        """Every referenced table, FROM order (base, cross, joins)."""
        refs = [self.base] if self.base else []
        refs.extend(self.cross)
        refs.extend(join.ref for join in self.joins)
        return refs


Statement = Any  # union of the dataclasses above


# --------------------------------------------------------------------------
# Parser
# --------------------------------------------------------------------------


def parse_sql(sql: str) -> Statement:
    """Parse one SQL statement."""
    parser = _Parser(tokenize(sql), sql)
    statement = parser.parse_statement()
    parser.expect_end()
    return statement


class _Parser:
    def __init__(self, tokens: list[Token], sql: str):
        self.tokens = tokens
        self.sql = sql
        self.pos = 0
        self.param_count = 0

    # -- token helpers -----------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def accept_keyword(self, *words: str) -> bool:
        token = self.peek()
        if token.kind == "keyword" and token.value.lower() in words:
            self.pos += 1
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            self.error(f"expected {word.upper()}")

    def accept_symbol(self, symbol: str) -> bool:
        token = self.peek()
        if token.kind == "symbol" and token.value == symbol:
            self.pos += 1
            return True
        return False

    def expect_symbol(self, symbol: str) -> None:
        if not self.accept_symbol(symbol):
            self.error(f"expected {symbol!r}")

    def expect_name(self) -> str:
        token = self.peek()
        if token.kind in ("ident", "keyword"):
            self.pos += 1
            return token.value
        self.error("expected a name")

    def expect_end(self) -> None:
        self.accept_symbol(";")
        if self.peek().kind != "end":
            self.error("trailing tokens")

    def error(self, message: str):
        token = self.peek()
        raise SchemaError(
            f"SQL parse error: {message} near "
            f"{token.value!r} (offset {token.position})\n  sql: {self.sql}")

    # -- statements -----------------------------------------------------------

    def parse_statement(self) -> Statement:
        if self.accept_keyword("select"):
            return self.parse_select()
        if self.accept_keyword("create"):
            if self.accept_keyword("table"):
                return self.parse_create_table()
            unique = self.accept_keyword("unique")
            self.expect_keyword("index")
            return self.parse_create_index(unique)
        if self.accept_keyword("drop"):
            if self.accept_keyword("table"):
                if_exists = self._accept_if_exists()
                return DropTable(self.expect_name(), if_exists)
            self.expect_keyword("index")
            if_exists = self._accept_if_exists()
            return DropIndex(self.expect_name(), if_exists)
        if self.accept_keyword("insert"):
            self.expect_keyword("into")
            return self.parse_insert()
        if self.accept_keyword("delete"):
            self.expect_keyword("from")
            return self.parse_delete()
        self.error("expected a statement")

    def _accept_if_exists(self) -> bool:
        if self.accept_keyword("if"):
            self.expect_keyword("exists")
            return True
        return False

    def parse_create_table(self) -> CreateTable:
        table = self.expect_name()
        self.expect_symbol("(")
        columns: list[ColumnDef] = []
        while True:
            name = self.expect_name()
            token = self.peek()
            if token.kind == "keyword" and token.value.lower() in (
                    "integer", "text", "real"):
                type_name = token.value.upper()
                self.pos += 1
            else:
                type_name = "TEXT"
            column = ColumnDef(name, type_name)
            while True:
                if self.accept_keyword("primary"):
                    self.expect_keyword("key")
                    column.primary_key = True
                elif self.accept_keyword("not"):
                    self.expect_keyword("null")
                    column.not_null = True
                else:
                    break
            columns.append(column)
            if self.accept_symbol(","):
                continue
            self.expect_symbol(")")
            break
        return CreateTable(table, columns)

    def parse_create_index(self, unique: bool) -> CreateIndex:
        index = self.expect_name()
        self.expect_keyword("on")
        table = self.expect_name()
        self.expect_symbol("(")
        columns = [self.expect_name()]
        while self.accept_symbol(","):
            columns.append(self.expect_name())
        self.expect_symbol(")")
        return CreateIndex(index, table, columns, unique)

    def parse_insert(self) -> Insert:
        table = self.expect_name()
        self.expect_symbol("(")
        columns = [self.expect_name()]
        while self.accept_symbol(","):
            columns.append(self.expect_name())
        self.expect_symbol(")")
        self.expect_keyword("values")
        self.expect_symbol("(")
        values = [self.parse_expr()]
        while self.accept_symbol(","):
            values.append(self.parse_expr())
        self.expect_symbol(")")
        if len(values) != len(columns):
            self.error(f"{len(columns)} columns but {len(values)} values")
        return Insert(table, columns, values)

    def parse_delete(self) -> Delete:
        table = self.expect_name()
        where = None
        if self.accept_keyword("where"):
            where = self.parse_expr()
        return Delete(table, where)

    def parse_select(self) -> Select:
        select = Select(items=[])
        select.distinct = self.accept_keyword("distinct")
        select.items.append(self.parse_select_item())
        while self.accept_symbol(","):
            select.items.append(self.parse_select_item())
        self.expect_keyword("from")
        select.base = self.parse_table_ref()
        while True:
            if self.accept_symbol(","):
                select.cross.append(self.parse_table_ref())
                continue
            inner = self.accept_keyword("inner")
            if self.accept_keyword("join"):
                ref = self.parse_table_ref()
                self.expect_keyword("on")
                select.joins.append(Join(ref, self.parse_expr()))
                continue
            if inner:
                self.error("expected JOIN after INNER")
            break
        if self.accept_keyword("where"):
            select.where = self.parse_expr()
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            select.group_by.append(self.parse_expr())
            while self.accept_symbol(","):
                select.group_by.append(self.parse_expr())
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            select.order_by.append(self.parse_order_item())
            while self.accept_symbol(","):
                select.order_by.append(self.parse_order_item())
        if self.accept_keyword("limit"):
            token = self.peek()
            if token.kind != "number":
                self.error("LIMIT expects a number")
            self.pos += 1
            select.limit = int(token.value)
        return select

    def parse_select_item(self) -> SelectItem:
        if self.accept_symbol("*"):
            return SelectItem(expr=Literal(None), star=True)
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_name()
        elif self.peek().kind == "ident":
            alias = self.advance().value
        return SelectItem(expr=expr, alias=alias)

    def parse_table_ref(self) -> TableRef:
        table = self.expect_name()
        alias = table
        if self.accept_keyword("as"):
            alias = self.expect_name()
        elif self.peek().kind == "ident":
            alias = self.advance().value
        return TableRef(table, alias)

    def parse_order_item(self) -> OrderItem:
        expr = self.parse_expr()
        ascending = True
        if self.accept_keyword("desc"):
            ascending = False
        else:
            self.accept_keyword("asc")
        return OrderItem(expr, ascending)

    # -- expressions -------------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        items = [left]
        while self.accept_keyword("or"):
            items.append(self.parse_and())
        return items[0] if len(items) == 1 else Or(items)

    def parse_and(self) -> Expr:
        left = self.parse_not()
        items = [left]
        while self.accept_keyword("and"):
            items.append(self.parse_not())
        return items[0] if len(items) == 1 else And(items)

    def parse_not(self) -> Expr:
        if self.accept_keyword("not"):
            return Not(self.parse_not())
        return self.parse_predicate()

    def parse_predicate(self) -> Expr:
        left = self.parse_additive()
        token = self.peek()
        if token.kind == "symbol" and token.value in (
                "=", "!=", "<>", "<", "<=", ">", ">="):
            self.pos += 1
            op = "!=" if token.value == "<>" else token.value
            return Comparison(op, left, self.parse_additive())
        if self.accept_keyword("is"):
            negate = self.accept_keyword("not")
            self.expect_keyword("null")
            return IsNull(left, negate)
        negate = self.accept_keyword("not")
        if self.accept_keyword("like"):
            return Like(left, self.parse_additive(), negate)
        if self.accept_keyword("in"):
            self.expect_symbol("(")
            options = [self.parse_expr()]
            while self.accept_symbol(","):
                options.append(self.parse_expr())
            self.expect_symbol(")")
            return InList(left, options, negate)
        if negate:
            self.error("expected LIKE or IN after NOT")
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while True:
            token = self.peek()
            if token.kind == "symbol" and token.value in ("+", "-"):
                self.pos += 1
                left = Arithmetic(token.value, left,
                                  self.parse_multiplicative())
            else:
                return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_unary()
        while True:
            token = self.peek()
            if token.kind == "symbol" and token.value in ("*", "/"):
                self.pos += 1
                left = Arithmetic(token.value, left, self.parse_unary())
            else:
                return left

    def parse_unary(self) -> Expr:
        if self.accept_symbol("-"):
            return Arithmetic("-", Literal(0), self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        token = self.peek()
        if token.kind == "symbol" and token.value == "?":
            self.pos += 1
            param = Param(self.param_count)
            self.param_count += 1
            return param
        if token.kind == "number":
            self.pos += 1
            text = token.value
            return Literal(float(text) if "." in text else int(text))
        if token.kind == "string":
            self.pos += 1
            return Literal(token.value)
        if token.kind == "symbol" and token.value == "(":
            self.pos += 1
            expr = self.parse_expr()
            self.expect_symbol(")")
            return expr
        if token.kind == "keyword" and token.value.lower() == "null":
            self.pos += 1
            return Literal(None)
        if token.kind in ("ident", "keyword"):
            name = self.advance().value
            if self.accept_symbol("("):
                return self.parse_call(name)
            if self.accept_symbol("."):
                column = self.expect_name()
                return ColumnRef(name, column)
            return ColumnRef(None, name)
        self.error("expected an expression")

    def parse_call(self, name: str) -> Expr:
        lowered = name.lower()
        if lowered in AGGREGATE_NAMES:
            distinct = self.accept_keyword("distinct")
            if self.accept_symbol("*"):
                self.expect_symbol(")")
                if lowered != "count":
                    self.error(f"{name}(*) is only valid for COUNT")
                return Aggregate("count", None, distinct)
            arg = self.parse_expr()
            self.expect_symbol(")")
            return Aggregate(lowered, arg, distinct)
        args: list[Expr] = []
        if not self.accept_symbol(")"):
            args.append(self.parse_expr())
            while self.accept_symbol(","):
                args.append(self.parse_expr())
            self.expect_symbol(")")
        return FuncCall(name, args)
