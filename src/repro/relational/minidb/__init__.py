"""minidb: a from-scratch pure-Python relational engine.

Heap tables, hash and ordered (bisect) secondary indexes, an SQL-subset
lexer/parser, and a planner/executor with predicate pushdown, index
access paths and hash joins. It exists so the reproduction's
experiments can open the hood on the relational substrate (index
ablation, join strategy) that the SQLite/Oracle black box hides, while
consuming exactly the same SQL.
"""

from repro.relational.minidb.backend import MiniDbBackend
from repro.relational.minidb.executor import Plan, execute_select
from repro.relational.minidb.sql import parse_sql
from repro.relational.minidb.table import Catalog, Table

__all__ = ["Catalog", "MiniDbBackend", "Plan", "Table", "execute_select",
           "parse_sql"]
