"""DTD-aware *inlined* shredding — the road the paper did not take.

The paper stores XML in a **generic** edge/value schema. The work it
builds on (Shanmugasundaram et al., VLDB'99 — its reference [40])
proposes the alternative: derive a relational schema *from the DTD*,
inlining singly-occurring scalar children as columns of their parent's
table and spinning repeated or attributed elements into child tables.
Experiment E10 quantifies the tradeoff on our workloads.

Mapping rules (a pragmatic "shared inlining"):

* the DTD root wraps one ``db_entry`` per document → the **entry
  table**, one row per document, keyed ``(entry_id)`` with the
  warehouse ``entry_key`` alongside;
* a child element that occurs **at most once**, has ``#PCDATA``
  content and **no attributes** → a TEXT column on its parent's table;
* a **container** (single occurrence, element-only content, no
  attributes) is transparent: its children are mapped as if they hung
  off the container's parent (``alternate_name_list`` disappears);
* anything repeated, attributed, or non-scalar → its **own table**
  with ``(row_id, parent_id, ord, value, <one column per attribute>)``,
  where ``parent_id`` references the entry row or the enclosing
  repeated element's row;
* recursion through repeated containers nests child tables
  (EMBL: ``feature`` rows own ``qualifier`` rows).

The inlined schema answers path queries with fewer joins (navigation
is compiled into the schema) but is frozen per-DTD: a new source means
new DDL, and schema evolution (the paper's core concern with
biological data!) means migrations. That asymmetry is the point of the
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.relational.backend import Backend
from repro.xmlkit import Document, Dtd, Element
from repro.xmlkit.dtd import (
    AnyContent,
    Choice,
    ElementDecl,
    Mixed,
    Name,
    PCData,
    Particle,
    Seq,
)


def _sanitize(name: str) -> str:
    return "".join(ch if (ch.isalnum() or ch == "_") else "_"
                   for ch in name)


def child_multiplicities(decl: ElementDecl) -> dict[str, str]:
    """tag → ``"one"`` | ``"many"`` for a declaration's content model."""
    counts: dict[str, str] = {}

    def bump(tag: str, many: bool) -> None:
        if many or tag in counts:
            counts[tag] = "many"
        else:
            counts[tag] = "one"

    def walk(particle: Particle, forced_many: bool) -> None:
        many = forced_many or particle.occurs in ("*", "+")
        if isinstance(particle, Name):
            bump(particle.tag, many)
        elif isinstance(particle, (Seq, Choice)):
            for item in particle.items:
                walk(item, many)
        elif isinstance(particle, Mixed):
            for tag in particle.tags:
                bump(tag, True)

    walk(decl.content, False)
    return counts


@dataclass
class InlinedColumn:
    """One column of an inlined table."""

    name: str
    kind: str            # "scalar_child" | "attribute" | "text"
    source_tag: str = ""     # child tag (scalar_child) / attr name


@dataclass
class InlinedTable:
    """One table: rows correspond to elements tagged ``anchor_tag``.

    ``container_path`` lists the transparent container tags between the
    parent anchor and this anchor (e.g. ``["alternate_name_list"]``).
    """

    name: str
    anchor_tag: str
    parent: "InlinedTable | None"
    container_path: list[str] = field(default_factory=list)
    columns: list[InlinedColumn] = field(default_factory=list)
    children: list["InlinedTable"] = field(default_factory=list)

    @property
    def is_entry_table(self) -> bool:
        """True for the one-row-per-document table."""
        return self.parent is None

    def ddl(self) -> str:
        """The CREATE TABLE statement for this table."""
        parts = ["row_id INTEGER PRIMARY KEY"]
        if self.is_entry_table:
            parts.append("entry_key TEXT NOT NULL")
        else:
            parts.append("parent_id INTEGER NOT NULL")
            parts.append("ord INTEGER NOT NULL")
        for column in self.columns:
            parts.append(f"{column.name} TEXT")
        return f"CREATE TABLE {self.name} (" + ", ".join(parts) + ")"

    def insert_sql(self) -> str:
        """Parameterized INSERT covering every column."""
        names = ["row_id"]
        names.append("entry_key" if self.is_entry_table
                     else "parent_id")
        if not self.is_entry_table:
            names.append("ord")
        names.extend(column.name for column in self.columns)
        placeholders = ", ".join("?" for __ in names)
        return (f"INSERT INTO {self.name} ({', '.join(names)}) "
                f"VALUES ({placeholders})")


class InlinedSchema:
    """The inlined relational schema of one DTD."""

    def __init__(self, source: str, dtd: Dtd):
        self.source = source
        self.dtd = dtd
        self.tables: dict[str, InlinedTable] = {}
        self.entry_table = self._build()

    # -- schema derivation ---------------------------------------------------

    def _build(self) -> InlinedTable:
        root_decl = self.dtd.declaration(self.dtd.root)
        root_children = child_multiplicities(root_decl)
        if list(root_children) != ["db_entry"]:
            raise SchemaError(
                f"inlined mapping expects a (db_entry) root, "
                f"{self.dtd.root} declares {sorted(root_children)}")
        entry = self._new_table("db_entry", parent=None, container_path=[])
        self._populate(entry, self.dtd.declaration("db_entry"))
        return entry

    def _new_table(self, anchor_tag: str, parent: InlinedTable | None,
                   container_path: list[str]) -> InlinedTable:
        base = _sanitize(f"{self.source}_{anchor_tag}")
        name = base
        suffix = 2
        while name in self.tables:
            name = f"{base}_{suffix}"
            suffix += 1
        table = InlinedTable(name=name, anchor_tag=anchor_tag,
                             parent=parent,
                             container_path=list(container_path))
        self.tables[name] = table
        if parent is not None:
            parent.children.append(table)
        return table

    def _populate(self, table: InlinedTable, decl: ElementDecl) -> None:
        for attr_name in decl.attributes:
            table.columns.append(InlinedColumn(
                name=_sanitize(attr_name), kind="attribute",
                source_tag=attr_name))
        if decl.allows_text() and not table.is_entry_table:
            table.columns.append(InlinedColumn(name="value", kind="text"))
        self._map_children(table, decl, container_path=[])

    def _map_children(self, table: InlinedTable, decl: ElementDecl,
                      container_path: list[str]) -> None:
        for tag, multiplicity in child_multiplicities(decl).items():
            child_decl = self.dtd.declaration(tag)
            scalar = (multiplicity == "one"
                      and isinstance(child_decl.content, PCData)
                      and not child_decl.attributes)
            container = (multiplicity == "one"
                         and not child_decl.allows_text()
                         and not child_decl.attributes
                         and not isinstance(child_decl.content,
                                            (AnyContent,)))
            if scalar:
                table.columns.append(InlinedColumn(
                    name=_sanitize("_".join(container_path + [tag])),
                    kind="scalar_child", source_tag=tag))
            elif container:
                # transparent: hoist its children onto this table
                self._map_children(table, child_decl,
                                   container_path + [tag])
            else:
                child_table = self._new_table(tag, table, container_path)
                self._populate_child(child_table, child_decl)

    def _populate_child(self, table: InlinedTable,
                        decl: ElementDecl) -> None:
        for attr_name in decl.attributes:
            table.columns.append(InlinedColumn(
                name=_sanitize(attr_name), kind="attribute",
                source_tag=attr_name))
        if decl.allows_text():
            table.columns.append(InlinedColumn(name="value", kind="text"))
        if not isinstance(decl.content, (PCData, AnyContent, Mixed)):
            self._map_children(table, decl, container_path=[])

    # -- DDL / loading ------------------------------------------------------------

    def create(self, backend: Backend) -> None:
        """Create every derived table plus parent-id indexes."""
        for table in self.tables.values():
            backend.execute(table.ddl())
        for table in self.tables.values():
            if not table.is_entry_table:
                backend.execute(
                    f"CREATE INDEX idx_{table.name}_parent "
                    f"ON {table.name} (parent_id)")
        backend.commit()

    def load_documents(self, backend: Backend,
                       keyed_documents) -> int:
        """Load ``(entry_key, Document)`` pairs; returns rows written
        to the entry table."""
        loader = _InlinedLoader(self, backend)
        count = 0
        for entry_key, document in keyed_documents:
            loader.load(entry_key, document)
            count += 1
        backend.commit()
        analyze = getattr(backend, "analyze", None)
        if analyze is not None:
            analyze()
        return count


class _InlinedLoader:
    def __init__(self, schema: InlinedSchema, backend: Backend):
        self.schema = schema
        self.backend = backend
        self._next_row: dict[str, int] = {
            name: 1 for name in schema.tables}

    def load(self, entry_key: str, document: Document) -> int:
        entry_element = document.root.first("db_entry")
        if entry_element is None:
            raise SchemaError("document has no db_entry child")
        return self._store(self.schema.entry_table, entry_element,
                           parent_row=None, ord_=0, entry_key=entry_key)

    def _store(self, table: InlinedTable, element: Element,
               parent_row: int | None, ord_: int,
               entry_key: str | None = None) -> int:
        row_id = self._next_row[table.name]
        self._next_row[table.name] = row_id + 1
        values: list = [row_id]
        values.append(entry_key if table.is_entry_table else parent_row)
        if not table.is_entry_table:
            values.append(ord_)
        for column in table.columns:
            values.append(self._column_value(column, element))
        self.backend.execute(table.insert_sql(), values)
        for child_table in table.children:
            anchors = self._anchors(element, child_table)
            for index, anchor in enumerate(anchors):
                self._store(child_table, anchor, parent_row=row_id,
                            ord_=index)
        return row_id

    @staticmethod
    def _column_value(column: InlinedColumn, element: Element):
        if column.kind == "attribute":
            return element.get(column.source_tag)
        if column.kind == "text":
            return element.text()
        # scalar child, possibly through transparent containers encoded
        # in the column name — resolve by tag search one level at a time
        child = element.first(column.source_tag)
        if child is None:
            # hoisted through containers: search grandchildren
            for container in element.child_elements():
                child = container.first(column.source_tag)
                if child is not None:
                    break
        return child.text() if child is not None else None

    @staticmethod
    def _anchors(element: Element, table: InlinedTable) -> list[Element]:
        holders = [element]
        for container_tag in table.container_path:
            next_holders: list[Element] = []
            for holder in holders:
                next_holders.extend(holder.child_elements(container_tag))
            holders = next_holders
        anchors: list[Element] = []
        for holder in holders:
            anchors.extend(holder.child_elements(table.anchor_tag))
        return anchors
