"""Relational substrate: the backend protocol, the generic schema for
shredded XML, and the two engines (SQLite and minidb)."""

from repro.relational.backend import Backend, Params, Row
from repro.relational.inlined import InlinedSchema
from repro.relational.minidb import MiniDbBackend
from repro.relational.schema import (
    CREATE_INDEXES,
    CREATE_TABLES,
    INSERT_STATEMENTS,
    TABLE_NAMES,
    SchemaOptions,
    create_schema,
    drop_schema,
)
from repro.relational.sqlite_backend import SqliteBackend

__all__ = [
    "Backend",
    "CREATE_INDEXES",
    "CREATE_TABLES",
    "INSERT_STATEMENTS",
    "InlinedSchema",
    "MiniDbBackend",
    "Params",
    "Row",
    "SchemaOptions",
    "SqliteBackend",
    "TABLE_NAMES",
    "create_schema",
    "drop_schema",
]
