"""The relational backend protocol.

The paper's stack is *XQuery → SQL → commercial RDBMS*. We keep that
boundary honest: every backend consumes **SQL text** with ``?``
positional parameters (DB-API style) and returns rows as tuples. Two
implementations ship:

* :class:`~repro.relational.sqlite_backend.SqliteBackend` — wraps the
  stdlib ``sqlite3`` (our stand-in for the paper's Oracle 9i),
* :class:`~repro.relational.minidb.backend.MiniDbBackend` — a
  from-scratch pure-Python engine with its own SQL parser, planner and
  executor; it exists so experiments can open the hood (index ablation,
  join-algorithm choice) that a black-box engine hides.

Both accept the same DDL/DML dialect (see
:mod:`repro.relational.schema`), so the whole warehouse is
backend-agnostic.
"""

from __future__ import annotations

from typing import Iterable, Protocol, Sequence

Row = tuple
Params = Sequence


class Backend(Protocol):
    """Minimal DB-API-flavoured surface the warehouse needs."""

    #: short identifier used in benchmark output ("sqlite", "minidb")
    name: str

    def execute(self, sql: str, params: Params = ()) -> list[Row]:
        """Run one statement; returns result rows (empty for DML/DDL)."""

    def executemany(self, sql: str, params_seq: Iterable[Params]) -> int:
        """Run one DML statement for each parameter tuple; returns the
        number of statements executed."""

    def commit(self) -> None:
        """Make prior DML durable (no-op for in-memory engines)."""

    def close(self) -> None:
        """Release resources."""
