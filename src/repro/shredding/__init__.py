"""XML shredding into the generic relational schema and back
(the XML2Relational- and Relation2XML-transformers of the paper)."""

from repro.shredding.keywords import query_tokens, tokenize
from repro.shredding.loader import BulkLoadSession, WarehouseLoader
from repro.shredding.reconstruct import (
    reconstruct_by_entry,
    reconstruct_document,
    reconstruct_subtree,
)
from repro.shredding.shredder import (
    DEFAULT_SEQUENCE_TAGS,
    ShreddedDocument,
    shred_document,
)
from repro.shredding.typing import is_numeric, numeric_value

__all__ = [
    "BulkLoadSession",
    "DEFAULT_SEQUENCE_TAGS",
    "ShreddedDocument",
    "WarehouseLoader",
    "is_numeric",
    "numeric_value",
    "query_tokens",
    "reconstruct_by_entry",
    "reconstruct_document",
    "reconstruct_subtree",
    "shred_document",
    "tokenize",
]
