"""String vs numeric typing of shredded values (paper §2.2).

"All these data appear as strings in the biological sources", but
lengths, coordinates and scores must compare numerically. The shredder
calls :func:`numeric_value` on every text and attribute value; when it
parses as a number the row's ``num_value`` column is filled, and the
XQ2SQL translator routes numeric comparisons there.

Deliberately conservative: EC numbers (``1.14.17.3``), accessions
(``P10731``) and dates must *not* be treated as numbers, so only a
plain integer/decimal (optional sign, optional scientific exponent)
qualifies.
"""

from __future__ import annotations

import re

_NUMERIC_RE = re.compile(
    r"^[+-]?(\d+(\.\d*)?|\.\d+)([eE][+-]?\d+)?$")


def numeric_value(text: str) -> float | None:
    """The numeric interpretation of ``text``, or None.

    Surrounding whitespace is tolerated (flat-file values are often
    padded); anything else disqualifies.
    """
    stripped = text.strip()
    if not stripped or not _NUMERIC_RE.match(stripped):
        return None
    return float(stripped)


def is_numeric(text: str) -> bool:
    """True if :func:`numeric_value` would return a number."""
    return numeric_value(text) is not None
