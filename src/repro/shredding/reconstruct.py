"""The Relation2XML-Transformer: rebuild XML documents from tuples.

The paper's "tagger module" (§3.3, after Shanmugasundaram et al.'s XML
publishing work) structures result tuples back into XML. This module is
its storage half: given a ``doc_id``, read the element/attribute/
text/sequence rows back and reassemble the :class:`Document`. The
query-result tagger in :mod:`repro.results.tagger` builds on it.

Reconstruction is exact for the documents the shredder accepts: element
order is restored from ``(parent_id, sib_ord)``, text is re-attached to
its element (text precedes element children — the shredder does not
record interleavings of mixed content, which the paper's data-centric
DTDs never produce), and sequences are re-inlined from the
``sequences`` table.
"""

from __future__ import annotations

from repro.errors import StorageError
from repro.relational.backend import Backend
from repro.xmlkit import Document, Element, Text


def reconstruct_document(backend: Backend, doc_id: int) -> Document:
    """Rebuild the document stored under ``doc_id``."""
    meta = backend.execute(
        "SELECT source, collection, entry_key, root_tag FROM documents "
        "WHERE doc_id = ?", (doc_id,))
    if not meta:
        raise StorageError(f"no document with doc_id {doc_id}")
    source, __, __, root_tag = meta[0]

    element_rows = backend.execute(
        "SELECT node_id, parent_id, tag, sib_ord FROM elements "
        "WHERE doc_id = ? ORDER BY doc_order", (doc_id,))
    if not element_rows:
        raise StorageError(f"document {doc_id} has no element rows")

    nodes: dict[int, Element] = {}
    children: dict[int, list[tuple[int, int]]] = {}
    root_id: int | None = None
    for node_id, parent_id, tag, sib_ord in element_rows:
        nodes[node_id] = Element(tag)
        if parent_id is None:
            if root_id is not None:
                raise StorageError(
                    f"document {doc_id} has multiple roots")
            root_id = node_id
        else:
            children.setdefault(parent_id, []).append((sib_ord, node_id))
    if root_id is None:
        raise StorageError(f"document {doc_id} has no root element")
    if nodes[root_id].tag != root_tag:
        raise StorageError(
            f"document {doc_id}: root tag mismatch "
            f"({nodes[root_id].tag!r} vs {root_tag!r})")

    for doc, node_id, name, value in backend.execute(
            "SELECT doc_id, node_id, name, value FROM attributes "
            "WHERE doc_id = ?", (doc_id,)):
        nodes[node_id].set(name, value)

    texts: dict[int, list[str]] = {}
    for node_id, value in backend.execute(
            "SELECT node_id, value FROM text_values WHERE doc_id = ?",
            (doc_id,)):
        texts.setdefault(node_id, []).append(value)
    for node_id, residues in backend.execute(
            "SELECT node_id, residues FROM sequences WHERE doc_id = ?",
            (doc_id,)):
        texts.setdefault(node_id, []).append(residues)

    # assemble: text first, then element children in sibling order
    for node_id, element in nodes.items():
        for value in texts.get(node_id, ()):
            if value:
                element.append(Text(value))
        for __, child_id in sorted(children.get(node_id, ())):
            element.append(nodes[child_id])

    return Document(nodes[root_id], name=source)


def reconstruct_by_entry(backend: Backend, source: str, entry_key: str,
                         collection: str | None = None) -> Document:
    """Rebuild the document of one entry."""
    if collection is None:
        rows = backend.execute(
            "SELECT doc_id FROM documents WHERE source = ? "
            "AND entry_key = ?", (source, entry_key))
    else:
        rows = backend.execute(
            "SELECT doc_id FROM documents WHERE source = ? "
            "AND entry_key = ? AND collection = ?",
            (source, entry_key, collection))
    if not rows:
        raise StorageError(
            f"no document for {source}/{collection or '*'}/{entry_key}")
    return reconstruct_document(backend, rows[0][0])


def reconstruct_subtree(backend: Backend, doc_id: int,
                        node_id: int) -> Element:
    """Rebuild only the subtree rooted at ``node_id``.

    Uses the interval encoding directly: one range query per table over
    ``[doc_order, subtree_end]`` — the cost is proportional to the
    subtree, not the document (the paper's motivation for returning
    fragments rather than whole documents)."""
    anchor = backend.execute(
        "SELECT doc_order, subtree_end FROM elements "
        "WHERE doc_id = ? AND node_id = ?", (doc_id, node_id))
    if not anchor:
        raise StorageError(
            f"document {doc_id} has no element with node_id {node_id}")
    start, end = anchor[0]

    element_rows = backend.execute(
        "SELECT node_id, parent_id, tag, sib_ord FROM elements "
        "WHERE doc_id = ? AND doc_order >= ? AND doc_order <= ? "
        "ORDER BY doc_order", (doc_id, start, end))
    nodes: dict[int, Element] = {}
    children: dict[int, list[tuple[int, int]]] = {}
    for current_id, parent_id, tag, sib_ord in element_rows:
        nodes[current_id] = Element(tag)
        if current_id != node_id and parent_id in nodes:
            children.setdefault(parent_id, []).append((sib_ord, current_id))

    for __, current_id, name, value in backend.execute(
            "SELECT doc_id, node_id, name, value FROM attributes "
            "WHERE doc_id = ? AND node_id >= ? AND node_id <= ?",
            (doc_id, start, end)):
        nodes[current_id].set(name, value)

    texts: dict[int, list[str]] = {}
    for current_id, value in backend.execute(
            "SELECT node_id, value FROM text_values "
            "WHERE doc_id = ? AND node_id >= ? AND node_id <= ?",
            (doc_id, start, end)):
        texts.setdefault(current_id, []).append(value)
    for current_id, residues in backend.execute(
            "SELECT node_id, residues FROM sequences "
            "WHERE doc_id = ? AND node_id >= ? AND node_id <= ?",
            (doc_id, start, end)):
        texts.setdefault(current_id, []).append(residues)

    for current_id, element in nodes.items():
        for value in texts.get(current_id, ()):
            if value:
                element.append(Text(value))
        for __, child_id in sorted(children.get(current_id, ())):
            element.append(nodes[child_id])
    return nodes[node_id]
