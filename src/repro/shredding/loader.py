"""Load shredded rows into a relational backend.

:class:`WarehouseLoader` is the glue between the Data Hounds (which
hand it validated documents) and the backend (which sees only SQL). It
implements the :class:`~repro.datahounds.hound.DocumentStore` protocol:
``store_document`` is upsert-by-entry (replacing any previous version
of the same ``(source, collection, entry_key)``), ``remove_document``
deletes every row of the entry's document — together they give the
paper's "nothing left out, nothing added twice" update behaviour.
"""

from __future__ import annotations

from repro.relational.backend import Backend
from repro.relational.schema import INSERT_STATEMENTS, SchemaOptions, create_schema
from repro.shredding.shredder import (
    DEFAULT_SEQUENCE_TAGS,
    ShreddedDocument,
    shred_document,
)
from repro.xmlkit import Document

_DELETE_BY_DOC = {
    table: f"DELETE FROM {table} WHERE doc_id = ?"
    for table in ("documents", "elements", "attributes", "text_values",
                  "sequences", "keywords")
}


class WarehouseLoader:
    """Shreds documents and maintains them in one backend."""

    def __init__(self, backend: Backend,
                 options: SchemaOptions = SchemaOptions(),
                 sequence_tags: frozenset[str] = DEFAULT_SEQUENCE_TAGS,
                 create: bool = True,
                 tracer=None):
        self.backend = backend
        self.options = options
        self.sequence_tags = sequence_tags
        #: optional :class:`repro.obs.Tracer`; when set, stores record
        #: per-table row counts and shred/insert split on load spans
        self.tracer = tracer
        if create:
            create_schema(backend, options)
        self._next_doc_id = self._load_max_doc_id() + 1

    def _load_max_doc_id(self) -> int:
        rows = self.backend.execute("SELECT MAX(doc_id) FROM documents")
        value = rows[0][0] if rows else None
        return value if isinstance(value, int) else 0

    # -- DocumentStore protocol -------------------------------------------------

    def store_document(self, source: str, collection: str, entry_key: str,
                       document: Document) -> int:
        """Insert (or replace) one entry's document; returns its doc_id."""
        self._delete_entry(source, entry_key, collection)
        doc_id = self._next_doc_id
        self._next_doc_id += 1
        shredded = shred_document(
            document, doc_id, source, collection, entry_key,
            sequence_tags=self.sequence_tags,
            numeric_typing=self.options.numeric_typing)
        self._insert_rows(shredded)
        self.backend.commit()
        if self.tracer is not None:
            self.tracer.count("documents")
        return doc_id

    def remove_document(self, source: str, collection: str,
                        entry_key: str) -> None:
        """Delete one entry's document. An empty ``collection`` matches
        any collection (the hound does not track divisions of removed
        entries)."""
        self._delete_entry(source, entry_key,
                           collection if collection else None)
        self.backend.commit()

    # -- bulk/lookup helpers ----------------------------------------------------

    def store_documents(self, source: str, collection: str,
                        keyed_documents: list[tuple[str, Document]]) -> int:
        """Bulk-load fresh documents (no per-entry delete); returns the
        number loaded. Use only on an empty source."""
        count = 0
        for entry_key, document in keyed_documents:
            doc_id = self._next_doc_id
            self._next_doc_id += 1
            shredded = shred_document(
                document, doc_id, source, collection, entry_key,
                sequence_tags=self.sequence_tags,
                numeric_typing=self.options.numeric_typing)
            self._insert_rows(shredded)
            count += 1
        self.backend.commit()
        if self.tracer is not None:
            self.tracer.count("documents", count)
        return count

    def optimize(self) -> None:
        """Refresh backend planner statistics (no-op for backends
        without an ``analyze`` hook). The hound calls this after each
        release load."""
        analyze = getattr(self.backend, "analyze", None)
        if analyze is not None:
            analyze()

    def doc_ids(self, source: str, collection: str | None = None) -> list[int]:
        """Stored doc ids of a source (optionally one collection)."""
        if collection is None:
            rows = self.backend.execute(
                "SELECT doc_id FROM documents WHERE source = ? "
                "ORDER BY doc_id", (source,))
        else:
            rows = self.backend.execute(
                "SELECT doc_id FROM documents WHERE source = ? "
                "AND collection = ? ORDER BY doc_id", (source, collection))
        return [row[0] for row in rows]

    def document_count(self, source: str | None = None) -> int:
        """Stored document count (one source or the whole warehouse)."""
        if source is None:
            rows = self.backend.execute("SELECT COUNT(*) FROM documents")
        else:
            rows = self.backend.execute(
                "SELECT COUNT(*) FROM documents WHERE source = ?", (source,))
        return rows[0][0]

    # -- internals -----------------------------------------------------------------

    def _insert_rows(self, shredded: ShreddedDocument) -> None:
        tracer = self.tracer
        for table, rows in shredded.rows_by_table().items():
            if rows:
                self.backend.executemany(INSERT_STATEMENTS[table], rows)
                if tracer is not None:
                    tracer.count(f"rows.{table}", len(rows))

    def _delete_entry(self, source: str, entry_key: str,
                      collection: str | None) -> None:
        if collection is None:
            rows = self.backend.execute(
                "SELECT doc_id FROM documents WHERE source = ? "
                "AND entry_key = ?", (source, entry_key))
        else:
            rows = self.backend.execute(
                "SELECT doc_id FROM documents WHERE source = ? "
                "AND entry_key = ? AND collection = ?",
                (source, entry_key, collection))
        for (doc_id,) in rows:
            for statement in _DELETE_BY_DOC.values():
                self.backend.execute(statement, (doc_id,))
