"""Load shredded rows into a relational backend.

:class:`WarehouseLoader` is the glue between the Data Hounds (which
hand it validated documents) and the backend (which sees only SQL). It
implements the :class:`~repro.datahounds.hound.DocumentStore` protocol:
``store_document`` is upsert-by-entry (replacing any previous version
of the same ``(source, collection, entry_key)``), ``remove_document``
deletes every row of the entry's document — together they give the
paper's "nothing left out, nothing added twice" update behaviour.

:class:`BulkLoadSession` is the release-scale path: instead of one
transaction per document it accumulates shredded rows across documents
and flushes one ``executemany`` per table per batch, committing once
per batch. The CPU-bound transform+shred work can additionally run in
a worker pool (:meth:`BulkLoadSession.add_transformed`) while inserts
stay ordered on the calling thread, so the backend always sees rows in
doc-id order.
"""

from __future__ import annotations

import json
import re
from contextlib import nullcontext
from time import perf_counter
from typing import Callable, Iterable

from repro.errors import StorageError

from repro.obs.metrics import SIZE_BUCKETS

from repro.relational.backend import Backend
from repro.relational.schema import (
    CREATE_INDEXES,
    INSERT_STATEMENTS,
    TABLE_NAMES,
    SchemaOptions,
    create_schema,
)
from repro.shredding.shredder import (
    DEFAULT_SEQUENCE_TAGS,
    ShreddedDocument,
    shred_document,
)
from repro.xmlkit import Document

#: derived from the schema module so a new generic-schema table can
#: never leak rows on per-entry upsert (same drift class as
#: ``Warehouse.remove_source`` fixed earlier)
_DELETE_BY_DOC = {
    table: f"DELETE FROM {table} WHERE doc_id = ?"
    for table in TABLE_NAMES
}

#: secondary-index names, derived from the schema DDL so deferred index
#: builds can never miss an index added later
_INDEX_NAMES = [
    re.match(r"CREATE INDEX (\w+)", statement).group(1)
    for statement in CREATE_INDEXES
]

#: release-snapshot persistence (crash recovery for the Data Hounds):
#: one row per source holding the loaded release id and the entry
#: fingerprint map as JSON. Deliberately outside TABLE_NAMES — it has
#: no doc_id and must survive per-document delete sweeps. The column
#: is ``release_id`` because ``RELEASE`` is a reserved word in SQLite.
_SNAPSHOT_DDL = ("CREATE TABLE hound_snapshots ("
                 "source TEXT NOT NULL, "
                 "release_id TEXT NOT NULL, "
                 "fingerprints TEXT NOT NULL)")

#: ids per IN-list statement — small enough for every backend's
#: parameter limit, large enough to amortize statement overhead
_IN_CHUNK = 200


def execute_in_chunks(backend, template: str, values,
                      params: tuple = (), chunk: int = _IN_CHUNK) -> list:
    """Run one parameterized IN-list statement per chunk of ``values``.

    ``template`` carries a ``{placeholders}`` slot that each execution
    fills with the chunk's ``?`` markers; ``params`` are prefix
    parameters bound before the chunk (e.g. a ``source = ?`` filter).
    Returns the concatenated rows of every chunk. This is the one
    IN-list idiom in the codebase — the bulk loader's upsert-delete
    and the subscription engine's entry-key lookups both go through
    it, so id lists never end up interpolated into SQL text.
    """
    values = list(values)
    rows: list = []
    for start in range(0, len(values), chunk):
        part = values[start:start + chunk]
        placeholders = ", ".join("?" for __ in part)
        rows.extend(backend.execute(
            template.format(placeholders=placeholders),
            (*params, *part)))
    return rows


class WarehouseLoader:
    """Shreds documents and maintains them in one backend."""

    def __init__(self, backend: Backend,
                 options: SchemaOptions = SchemaOptions(),
                 sequence_tags: frozenset[str] = DEFAULT_SEQUENCE_TAGS,
                 create: bool = True,
                 tracer=None,
                 metrics=None,
                 bulk_batch_size: int = 512,
                 bulk_workers: int = 0):
        self.backend = backend
        self.options = options
        self.sequence_tags = sequence_tags
        #: optional :class:`repro.obs.Tracer`; when set, stores record
        #: per-table row counts and shred/insert split on load spans
        self.tracer = tracer
        #: optional :class:`repro.obs.MetricsRegistry` — the always-on
        #: plane: documents/rows-per-table counters, flush timings,
        #: deferred-index rebuild counts
        self.metrics = metrics
        #: defaults for :meth:`bulk_session`
        self.bulk_batch_size = bulk_batch_size
        self.bulk_workers = bulk_workers
        #: catalog generation — bumped by every store/remove/flush so
        #: compiled-query caches can tell when semantic checks (which
        #: documents exist) and results may have gone stale
        self.generation = 0
        if create:
            create_schema(backend, options)
        self._ensure_snapshot_table()
        self._next_doc_id = self._load_max_doc_id() + 1

    def _load_max_doc_id(self) -> int:
        rows = self.backend.execute("SELECT MAX(doc_id) FROM documents")
        value = rows[0][0] if rows else None
        return value if isinstance(value, int) else 0

    def _ensure_snapshot_table(self) -> None:
        # probe-then-create instead of IF NOT EXISTS: minidb's dialect
        # has no CREATE TABLE IF NOT EXISTS, and warehouses reopened
        # with create=False may predate the snapshot table
        try:
            self.backend.execute("SELECT COUNT(*) FROM hound_snapshots")
        except StorageError:
            self.backend.execute(_SNAPSHOT_DDL)
            self.backend.commit()

    def bump_generation(self) -> None:
        """Note a catalog mutation (store, remove, bulk flush)."""
        self.generation += 1

    # -- DocumentStore protocol -------------------------------------------------

    def store_document(self, source: str, collection: str, entry_key: str,
                       document: Document) -> int:
        """Insert (or replace) one entry's document; returns its doc_id."""
        self._delete_entry(source, entry_key, collection)
        doc_id = self._reserve_doc_id()
        shredded = shred_document(
            document, doc_id, source, collection, entry_key,
            sequence_tags=self.sequence_tags,
            numeric_typing=self.options.numeric_typing)
        self._insert_rows(shredded)
        self.backend.commit()
        self.bump_generation()
        if self.tracer is not None:
            self.tracer.count("documents")
        if self.metrics is not None:
            self.metrics.inc("load.documents", source=source)
        return doc_id

    def remove_document(self, source: str, collection: str,
                        entry_key: str) -> None:
        """Delete one entry's document. An empty ``collection`` matches
        any collection (the hound does not track divisions of removed
        entries)."""
        self._delete_entry(source, entry_key,
                           collection if collection else None)
        self.backend.commit()
        self.bump_generation()

    # -- bulk/lookup helpers ----------------------------------------------------

    def bulk_session(self, batch_size: int | None = None,
                     workers: int | None = None,
                     upsert: bool = True,
                     defer_indexes: bool | None = None) -> "BulkLoadSession":
        """A batched load session (see :class:`BulkLoadSession`).

        ``batch_size``/``workers`` default to the loader's
        ``bulk_batch_size``/``bulk_workers``; ``upsert=False`` skips
        the existing-entry lookup entirely (safe only on a fresh
        source). ``defer_indexes`` drops the secondary indexes for the
        session's lifetime and rebuilds them sorted at the end — the
        default ``None`` enables it automatically for initial loads
        into an empty warehouse, where incremental index maintenance
        is pure overhead."""
        return BulkLoadSession(self, batch_size=batch_size,
                               workers=workers, upsert=upsert,
                               defer_indexes=defer_indexes)

    def store_documents(self, source: str, collection: str,
                        keyed_documents: list[tuple[str, Document]]) -> int:
        """Bulk-load fresh documents (no per-entry delete); returns the
        number loaded. Use only on an empty source."""
        with self.bulk_session(upsert=False) as session:
            for entry_key, document in keyed_documents:
                session.add(source, collection, entry_key, document)
        return session.documents_loaded

    def optimize(self) -> None:
        """Refresh backend planner statistics (no-op for backends
        without an ``analyze`` hook). The hound calls this after each
        release load."""
        analyze = getattr(self.backend, "analyze", None)
        if analyze is not None:
            analyze()

    # -- release-snapshot persistence (hound crash recovery) --------------------

    def save_snapshot(self, source: str, release: str,
                      fingerprints: dict[str, str]) -> None:
        """Persist one source's loaded-release snapshot (replacing any
        previous row). The hound calls this after every successful
        load, so a restarted process resumes incremental diffs."""
        payload = json.dumps(fingerprints, sort_keys=True,
                             separators=(",", ":"))
        self.backend.execute(
            "DELETE FROM hound_snapshots WHERE source = ?", (source,))
        self.backend.execute(
            "INSERT INTO hound_snapshots (source, release_id, fingerprints)"
            " VALUES (?, ?, ?)", (source, release, payload))
        self.backend.commit()

    def load_snapshots(self) -> dict[str, tuple[str, dict[str, str]]]:
        """Every persisted snapshot: source → (release, fingerprint
        map). Restored by :class:`~repro.datahounds.hound.DataHound`
        on construction."""
        rows = self.backend.execute(
            "SELECT source, release_id, fingerprints FROM hound_snapshots")
        return {source: (release, json.loads(payload))
                for source, release, payload in rows}

    def delete_snapshot(self, source: str) -> None:
        """Forget one source's persisted snapshot (decommissioning)."""
        self.backend.execute(
            "DELETE FROM hound_snapshots WHERE source = ?", (source,))
        self.backend.commit()

    def doc_ids(self, source: str, collection: str | None = None) -> list[int]:
        """Stored doc ids of a source (optionally one collection)."""
        if collection is None:
            rows = self.backend.execute(
                "SELECT doc_id FROM documents WHERE source = ? "
                "ORDER BY doc_id", (source,))
        else:
            rows = self.backend.execute(
                "SELECT doc_id FROM documents WHERE source = ? "
                "AND collection = ? ORDER BY doc_id", (source, collection))
        return [row[0] for row in rows]

    def document_count(self, source: str | None = None) -> int:
        """Stored document count (one source or the whole warehouse)."""
        if source is None:
            rows = self.backend.execute("SELECT COUNT(*) FROM documents")
        else:
            rows = self.backend.execute(
                "SELECT COUNT(*) FROM documents WHERE source = ?", (source,))
        return rows[0][0]

    # -- internals -----------------------------------------------------------------

    def _reserve_doc_id(self) -> int:
        doc_id = self._next_doc_id
        self._next_doc_id += 1
        return doc_id

    def _insert_rows(self, shredded: ShreddedDocument) -> None:
        tracer = self.tracer
        metrics = self.metrics
        for table, rows in shredded.rows_by_table().items():
            if rows:
                self.backend.executemany(INSERT_STATEMENTS[table], rows)
                if tracer is not None:
                    tracer.count(f"rows.{table}", len(rows))
                if metrics is not None:
                    metrics.inc("load.rows", len(rows), table=table)

    def _delete_entry(self, source: str, entry_key: str,
                      collection: str | None) -> None:
        if collection is None:
            rows = self.backend.execute(
                "SELECT doc_id FROM documents WHERE source = ? "
                "AND entry_key = ?", (source, entry_key))
        else:
            rows = self.backend.execute(
                "SELECT doc_id FROM documents WHERE source = ? "
                "AND entry_key = ? AND collection = ?",
                (source, entry_key, collection))
        for (doc_id,) in rows:
            for statement in _DELETE_BY_DOC.values():
                self.backend.execute(statement, (doc_id,))


class BulkLoadSession:
    """Batched, optionally parallel document loading.

    Documents added via :meth:`add` (or the worker-pool
    :meth:`add_transformed`) are shredded immediately but their rows
    are buffered; every ``batch_size`` documents the session flushes —
    one batched existing-entry delete (upsert mode), then one
    ``executemany`` per generic-schema table, then a single commit.
    Compared with :meth:`WarehouseLoader.store_document`'s
    seven-statements-plus-commit per document, a flush costs a handful
    of statements per *batch*, which is where release-scale load
    throughput comes from.

    Use as a context manager::

        with loader.bulk_session(batch_size=512) as session:
            for entry in entries:
                session.add(source, collection, key, document)
        # remainder flushed on clean exit; pending rows are discarded
        # if the block raises (complete batches stay committed)

    Upsert semantics match the entry-level contract: any previously
    stored document with the same ``(source, entry_key)`` — in *any*
    collection, mirroring ``remove_document``'s empty-collection
    wildcard — is deleted in the same transaction that inserts the
    replacement. A key added twice in one session keeps the later
    document. ``ANALYZE`` is deliberately deferred: callers run
    :meth:`WarehouseLoader.optimize` once per release, not per batch.

    On initial loads into an empty warehouse (or with
    ``defer_indexes=True``) the secondary indexes are dropped at
    ``__enter__`` and rebuilt sorted at ``__exit__`` — a bulk index
    build over the loaded rows instead of per-row B-tree maintenance.
    The rebuild also runs when the block raises, so committed batches
    always end up indexed.
    """

    #: entry keys per existing-doc lookup / doc ids per DELETE chunk
    #: (well under engine parameter limits)
    _SQL_CHUNK = 200

    def __init__(self, loader: WarehouseLoader,
                 batch_size: int | None = None,
                 workers: int | None = None,
                 upsert: bool = True,
                 defer_indexes: bool | None = None):
        self.loader = loader
        if batch_size is None:
            batch_size = loader.bulk_batch_size
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = batch_size
        self.workers = (loader.bulk_workers if workers is None
                        else workers)
        self.upsert = upsert
        self.defer_indexes = defer_indexes
        self._indexes_dropped = False
        #: set in ``__enter__``; on an initially-empty warehouse the
        #: only entries an upsert can collide with are the session's
        #: own earlier flushes, tracked here — lookups shrink to that
        self._warehouse_was_empty = False
        self._flushed_keys: set[tuple[str, str]] = set()
        #: documents added so far (within-batch replacements included)
        self.documents_loaded = 0
        #: completed batch flushes
        self.flushes = 0
        self._pending: list[tuple[tuple[str, str], ShreddedDocument] | None]
        self._pending = []
        self._pending_index: dict[tuple[str, str], int] = {}
        self._live = 0

    # -- adding documents ---------------------------------------------------

    def add(self, source: str, collection: str, entry_key: str,
            document: Document) -> int:
        """Shred and buffer one document; returns its doc_id. Flushes
        automatically when the batch fills."""
        doc_id = self.loader._reserve_doc_id()
        shredded = shred_document(
            document, doc_id, source, collection, entry_key,
            sequence_tags=self.loader.sequence_tags,
            numeric_typing=self.loader.options.numeric_typing)
        self._buffer(source, entry_key, shredded)
        return doc_id

    def add_transformed(self, source: str, items: Iterable,
                        transform: Callable) -> int:
        """Feed the session through ``transform(item) -> (collection,
        entry_key, document)``, shredding included; returns the number
        of documents added.

        With ``workers > 1`` the transform+shred stage (the CPU-bound
        part of a load) runs in a thread pool; results come back in
        input order, so buffering — and therefore every insert the
        backend sees — stays ordered on the calling thread. On a traced
        loader the fan-out runs inside a ``shred_fanout`` span on the
        calling thread, and each worker-side shred span is parented to
        it explicitly (worker threads cannot see the coordinator's
        thread-local span stack), so a bulk load's trace stays one
        connected tree instead of scattering orphan roots.
        """
        before = self.documents_loaded
        job = self._shred_job(source, transform)
        numbered = ((self.loader._reserve_doc_id(), item)
                    for item in items)
        if self.workers and self.workers > 1:
            from concurrent.futures import ThreadPoolExecutor
            tracer = self.loader.tracer
            span_context = (tracer.span("shred_fanout", source=source,
                                        workers=self.workers)
                            if tracer is not None else nullcontext(None))
            with span_context as fanout:
                if tracer is not None:
                    inner_job = job

                    def job(pair, __job=inner_job):
                        with tracer.span("shred", parent=fanout):
                            return __job(pair)

                with ThreadPoolExecutor(max_workers=self.workers) as pool:
                    for entry_key, shredded in pool.map(job, numbered):
                        self._buffer(source, entry_key, shredded)
        else:
            for pair in numbered:
                entry_key, shredded = job(pair)
                self._buffer(source, entry_key, shredded)
        return self.documents_loaded - before

    # -- flushing -----------------------------------------------------------

    def flush(self) -> int:
        """Write out all buffered documents in one transaction; returns
        the number of documents flushed (0 when nothing is pending)."""
        pending = [item for item in self._pending if item is not None]
        if not pending:
            return 0
        tracer = self.loader.tracer
        metrics = self.loader.metrics
        backend = self.loader.backend
        start = perf_counter()
        span_context = (tracer.span("flush", batch=len(pending))
                        if tracer is not None else nullcontext(None))
        with span_context as span:
            if self.upsert:
                keys = [key for key, __ in pending]
                if self._warehouse_was_empty:
                    keys = [key for key in keys
                            if key in self._flushed_keys]
                if keys:
                    self._delete_existing(backend, keys)
                if self._warehouse_was_empty:
                    self._flushed_keys.update(
                        key for key, __ in pending)
            merged: dict[str, list[tuple]] = {
                table: [] for table in TABLE_NAMES}
            for __, shredded in pending:
                for table, rows in shredded.rows_by_table().items():
                    if rows:
                        merged[table].extend(rows)
            for table in TABLE_NAMES:
                rows = merged[table]
                if rows:
                    backend.executemany(INSERT_STATEMENTS[table], rows)
                    if span is not None:
                        span.count(f"rows.{table}", len(rows))
                    if metrics is not None:
                        metrics.inc("load.rows", len(rows), table=table)
            backend.commit()
            if span is not None:
                span.count("documents", len(pending))
        if metrics is not None:
            metrics.inc("load.flushes")
            metrics.inc("load.documents", len(pending))
            metrics.observe("load.flush_seconds", perf_counter() - start)
            metrics.observe("load.batch_documents", len(pending),
                            buckets=SIZE_BUCKETS)
        self.flushes += 1
        self.loader.bump_generation()
        self._pending.clear()
        self._pending_index.clear()
        self._live = 0
        return len(pending)

    def close(self) -> None:
        """Flush the remainder (alias for one final :meth:`flush`)."""
        self.flush()

    def __enter__(self) -> "BulkLoadSession":
        self._warehouse_was_empty = self.loader.document_count() == 0
        defer = self.defer_indexes
        if defer is None:
            # auto: only initial loads into an empty warehouse, where
            # no concurrent reader can miss the indexes mid-session
            defer = self._warehouse_was_empty
        if defer:
            self._drop_indexes()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.flush()
        else:
            # complete batches stay committed; the partial one is
            # discarded so a failed load never half-writes a batch
            self._pending.clear()
            self._pending_index.clear()
            self._live = 0
        # committed rows must come back indexed even after a failure
        if self._indexes_dropped:
            self._rebuild_indexes()

    # -- internals ----------------------------------------------------------

    def _drop_indexes(self) -> None:
        backend = self.loader.backend
        for name in _INDEX_NAMES:
            backend.execute(f"DROP INDEX IF EXISTS {name}")
        backend.commit()
        self._indexes_dropped = True

    def _rebuild_indexes(self) -> None:
        tracer = self.loader.tracer
        metrics = self.loader.metrics
        backend = self.loader.backend
        start = perf_counter()
        span_context = (tracer.span("index_rebuild")
                        if tracer is not None else nullcontext(None))
        with span_context:
            for statement in CREATE_INDEXES:
                backend.execute(statement)
            backend.commit()
        if metrics is not None:
            metrics.inc("load.index_rebuilds")
            metrics.observe("load.index_rebuild_seconds",
                            perf_counter() - start)
        self._indexes_dropped = False

    def _shred_job(self, source: str, transform: Callable) -> Callable:
        loader = self.loader

        def job(pair):
            doc_id, item = pair
            collection, entry_key, document = transform(item)
            shredded = shred_document(
                document, doc_id, source, collection, entry_key,
                sequence_tags=loader.sequence_tags,
                numeric_typing=loader.options.numeric_typing)
            return entry_key, shredded

        return job

    def _buffer(self, source: str, entry_key: str,
                shredded: ShreddedDocument) -> None:
        key = (source, entry_key)
        if self.upsert:
            earlier = self._pending_index.pop(key, None)
            if earlier is not None:
                self._pending[earlier] = None
                self._live -= 1
            self._pending_index[key] = len(self._pending)
        self._pending.append((key, shredded))
        self._live += 1
        self.documents_loaded += 1
        if self._live >= self.batch_size:
            self.flush()

    def _delete_existing(self, backend: Backend,
                         keys: list[tuple[str, str]]) -> None:
        """Batched upsert delete: one IN-list lookup per chunk of entry
        keys, then one IN-list DELETE per table per chunk of doomed
        doc ids — instead of seven statements per document."""
        by_source: dict[str, list[str]] = {}
        for source, entry_key in keys:
            by_source.setdefault(source, []).append(entry_key)
        doomed: list[int] = []
        for source, entry_keys in by_source.items():
            rows = execute_in_chunks(
                backend,
                "SELECT doc_id FROM documents WHERE source = ? "
                "AND entry_key IN ({placeholders})",
                entry_keys, params=(source,), chunk=self._SQL_CHUNK)
            doomed.extend(row[0] for row in rows)
        if not doomed:
            return
        for table in TABLE_NAMES:
            execute_in_chunks(
                backend,
                f"DELETE FROM {table} WHERE doc_id IN ({{placeholders}})",
                doomed, chunk=self._SQL_CHUNK)
