"""Keyword tokenization for the inverted index (paper §2.2, §3).

XomatiQ's ``contains()`` extension wants "simple keyword-based queries,
similar to those found in web-based search engines", where keywords may
be "implicitly meant to be located close to one another in the same XML
document". That needs (a) a tokenizer applied identically at shred time
and at query time, and (b) token *positions* within the document so
proximity is computable.

Tokens are lowercased runs of letters/digits; characters common inside
biological identifiers (``. - _``) are kept inside a token so ``cdc6``,
``1.14.17.3`` and ``AMD_HUMAN`` each index as one searchable unit —
and additionally each separable fragment (``amd``, ``human``) indexes
on its own so partial-name searches hit too. A short stopword list
drops English glue words.
"""

from __future__ import annotations

import re

STOPWORDS = frozenset("""
a an and are as at be by for from has in is it of on or that the this
to was which with
""".split())

#: a token: alphanumeric runs possibly glued by . - _
_TOKEN_RE = re.compile(r"[A-Za-z0-9]+(?:[._\-][A-Za-z0-9]+)*")
_FRAGMENT_RE = re.compile(r"[A-Za-z0-9]+")

MIN_TOKEN_LENGTH = 2


def tokenize(text: str) -> list[str]:
    """Tokens of ``text``, lowercased, stopworded, in order.

    Compound tokens also yield their fragments (deduplicated per
    occurrence): ``AMD_HUMAN`` → ``["amd_human", "amd", "human"]``.
    """
    tokens: list[str] = []
    append = tokens.append
    stopwords = STOPWORDS
    find_fragments = _FRAGMENT_RE.findall
    for token in _TOKEN_RE.findall(text):
        token = token.lower()
        if len(token) >= MIN_TOKEN_LENGTH and token not in stopwords:
            append(token)
        # only compound tokens (glued by . - _) expand into fragments;
        # plain alphanumeric runs — the common case — skip the regex
        if "." in token or "-" in token or "_" in token:
            for fragment in find_fragments(token):
                if (len(fragment) >= MIN_TOKEN_LENGTH
                        and fragment not in stopwords):
                    append(fragment)
    return tokens


def _acceptable(token: str) -> bool:
    return len(token) >= MIN_TOKEN_LENGTH and token not in STOPWORDS


def query_tokens(keyword_phrase: str) -> list[str]:
    """Tokens a ``contains(x, "phrase")`` argument matches against.

    Query-side tokenization must mirror shred-side tokenization, minus
    fragment expansion (the query means what it says).
    """
    tokens = [match.group().lower()
              for match in _TOKEN_RE.finditer(keyword_phrase)]
    return [t for t in tokens if len(t) >= MIN_TOKEN_LENGTH]
