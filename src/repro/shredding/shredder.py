"""The XML2Relational-Transformer: shred documents into schema rows.

One :func:`shred_document` call turns a
:class:`~repro.xmlkit.doc.Document` into row tuples for the six generic
tables (see :mod:`repro.relational.schema`). Design properties mapped
to code:

* **order as data** — elements are numbered by pre-order rank
  (``node_id == doc_order``) and carry ``sib_ord``; reconstruction
  sorts on these,
* **sequence split** — elements whose tag is in ``sequence_tags``
  (default ``{"sequence"}``) land in the ``sequences`` table; their
  residues are excluded from ``text_values`` and the keyword index,
* **numeric typing** — ``num_value`` is filled when the value parses
  as a number (disable via ``numeric_typing=False`` for experiment E7),
* **keyword index** — every non-sequence text and attribute value is
  tokenized with document-global positions for proximity search.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.shredding.keywords import tokenize
from repro.shredding.typing import numeric_value
from repro.xmlkit import Document, Element, Text

#: element tags holding residue strings (the sequence/non-sequence split)
DEFAULT_SEQUENCE_TAGS = frozenset({"sequence"})

#: memoized (tokens, num_value) per raw value string. Biological releases
#: repeat values heavily (cofactor names, organism lines, controlled
#: vocabulary), so shredding re-derives the same tokenization thousands
#: of times; bounded so a pathological corpus cannot grow it unbounded.
_VALUE_CACHE: dict[str, tuple[tuple[str, ...], float | int | None]] = {}
_VALUE_CACHE_MAX = 16_384


def _analyzed(value: str, numeric_typing: bool) -> tuple[
        tuple[str, ...], float | int | None]:
    """Cached (keyword tokens, numeric value) for one raw value."""
    cached = _VALUE_CACHE.get(value)
    if cached is None:
        if len(_VALUE_CACHE) >= _VALUE_CACHE_MAX:
            _VALUE_CACHE.clear()
        cached = (tuple(tokenize(value)), numeric_value(value))
        _VALUE_CACHE[value] = cached
    if not numeric_typing:
        return cached[0], None
    return cached


@dataclass
class ShreddedDocument:
    """Row tuples for one document, keyed by table name."""

    doc_id: int
    documents: list[tuple] = field(default_factory=list)
    elements: list[tuple] = field(default_factory=list)
    attributes: list[tuple] = field(default_factory=list)
    text_values: list[tuple] = field(default_factory=list)
    sequences: list[tuple] = field(default_factory=list)
    keywords: list[tuple] = field(default_factory=list)

    def rows_by_table(self) -> dict[str, list[tuple]]:
        """Rows keyed by generic-schema table name."""
        return {
            "documents": self.documents,
            "elements": self.elements,
            "attributes": self.attributes,
            "text_values": self.text_values,
            "sequences": self.sequences,
            "keywords": self.keywords,
        }

    @property
    def total_rows(self) -> int:
        """Total rows across all six tables."""
        return sum(len(rows) for rows in self.rows_by_table().values())


def shred_document(document: Document, doc_id: int, source: str,
                   collection: str, entry_key: str,
                   sequence_tags: frozenset[str] = DEFAULT_SEQUENCE_TAGS,
                   numeric_typing: bool = True) -> ShreddedDocument:
    """Shred one document into generic-schema rows."""
    shredded = ShreddedDocument(doc_id=doc_id)
    shredded.documents.append(
        (doc_id, source, collection, entry_key, document.root.tag))
    state = _ShredState(shredded, sequence_tags, numeric_typing)
    state.visit(document.root, parent_id=None, sib_ord=0, depth=0)
    return shredded


class _ShredState:
    def __init__(self, shredded: ShreddedDocument,
                 sequence_tags: frozenset[str], numeric_typing: bool):
        self.out = shredded
        self.sequence_tags = sequence_tags
        self.numeric_typing = numeric_typing
        self.next_node_id = 0
        self.keyword_position = 0

    def visit(self, element: Element, parent_id: int | None,
              sib_ord: int, depth: int, tag_sib_ord: int = 0) -> int:
        """Shred one element; returns its ``subtree_end`` (the highest
        node id inside its subtree — the interval encoding used for the
        descendant axis). ``tag_sib_ord`` is the element's rank among
        its same-tag siblings (positional predicates compile to it)."""
        node_id = self.next_node_id
        self.next_node_id += 1
        doc_id = self.out.doc_id

        is_sequence = element.tag in self.sequence_tags
        for name, value in element.attributes.items():
            tokens, number = _analyzed(value, self.numeric_typing)
            self.out.attributes.append((doc_id, node_id, name, value, number))
            self._index_keywords(node_id, tokens)

        if is_sequence:
            residues = element.full_text()
            length = _sequence_length(element, residues)
            self.out.sequences.append(
                (doc_id, node_id, residues, length,
                 element.get("molecule_type")))
            # residues stay out of text_values and keywords; a sequence
            # element is a leaf in the relational image
            self.out.elements.append(
                (doc_id, node_id, parent_id, element.tag, sib_ord, node_id,
                 node_id, depth, tag_sib_ord))
            return node_id

        element_sib = 0
        tag_counts: dict[str, int] = {}
        subtree_end = node_id
        for child in element.children:
            if isinstance(child, Text):
                if child.value:
                    tokens, number = _analyzed(child.value,
                                               self.numeric_typing)
                    self.out.text_values.append(
                        (doc_id, node_id, child.value, number))
                    self._index_keywords(node_id, tokens)
            else:
                child_tag_ord = tag_counts.get(child.tag, 0)
                tag_counts[child.tag] = child_tag_ord + 1
                subtree_end = self.visit(child, parent_id=node_id,
                                         sib_ord=element_sib,
                                         depth=depth + 1,
                                         tag_sib_ord=child_tag_ord)
                element_sib += 1
        self.out.elements.append(
            (doc_id, node_id, parent_id, element.tag, sib_ord, node_id,
             subtree_end, depth, tag_sib_ord))
        return subtree_end

    def _index_keywords(self, node_id: int,
                        tokens: tuple[str, ...]) -> None:
        position = self.keyword_position
        doc_id = self.out.doc_id
        append = self.out.keywords.append
        for token in tokens:
            append((doc_id, node_id, token, position))
            position += 1
        self.keyword_position = position


def _sequence_length(element: Element, residues: str) -> int:
    """Sequence length: the declared ``length`` attribute when present
    and numeric, else the residue count actually stored."""
    declared = element.get("length")
    if declared is not None and declared.isdigit():
        return int(declared)
    return len(residues)
