"""Command-line interface.

Subcommands mirror the system's workflow::

    xomatiq init --db wh.sqlite                      # create a warehouse
    xomatiq load --db wh.sqlite --source hlx_enzyme enzyme.dat
    xomatiq harvest --db wh.sqlite --repo mirror/ --retries 4
    xomatiq synth --out corpus/ --enzyme 200 --embl 300 --sprot 200
    xomatiq query --db wh.sqlite --file query.xq [--xml]
    xomatiq query --db wh.sqlite 'FOR $a IN ... RETURN ...'
    xomatiq translate --db wh.sqlite 'FOR ...'        # show generated SQL
    xomatiq profile --db wh.sqlite 'FOR ...'          # stage timings + plans
    xomatiq profile --synth --backend minidb 'FOR ...'
    xomatiq dtd --source hlx_enzyme                   # DTD tree (GUI panel)
    xomatiq sources                                   # registered sources
    xomatiq stats --db wh.sqlite [--json]             # table/row counts
    xomatiq metrics --db wh.sqlite 'FOR ...'          # always-on metrics
    xomatiq metrics --synth --format prometheus       # exposition text
    xomatiq health --db wh.sqlite [--json]            # warehouse health
    xomatiq serve --db wh.sqlite --port 8014          # HTTP query service
    xomatiq serve --synth --rate-limit 50             # demo service
    xomatiq serve --synth --shards 3                  # federated demo node
    xomatiq trace list --url http://127.0.0.1:8014    # retained traces
    xomatiq trace show [trace-id]                     # span-tree waterfall
    xomatiq trace export [trace-id] --out trace.json  # Chrome trace_event

``health`` exits 0/2/1 for ok/warn/fail so monitoring can tell a
degraded-but-serving warehouse from a broken one. The ``trace`` verbs
talk HTTP to a running ``serve`` node: ``list`` summarizes the trace
store's ring, ``show`` renders one request's span tree as a waterfall
(per-shard rows shipped, cache hits, semi-join mode, SQL timings), and
``export`` writes Chrome ``trace_event`` JSON for about:tracing /
ui.perfetto.dev. ``show``/``export`` default to the newest trace.

Federation (sharded warehouses behind one query surface)::

    xomatiq shard add --map shards.json s0 --path s0.sqlite
    xomatiq shard assign --map shards.json hlx_enzyme s0
    xomatiq shard assign --map shards.json hlx_embl s1 s2   # partitioned
    xomatiq shard init --map shards.json      # create shard databases
    xomatiq shard list --map shards.json [--json]
    xomatiq load --shard-map shards.json --source hlx_embl embl.dat
    xomatiq query --shard-map shards.json 'FOR ...'   # scatter-gather
    xomatiq analyze --shard-map shards.json           # optimizer stats
    xomatiq stats --shard-map shards.json             # aggregated
    xomatiq health --shard-map shards.json            # per-shard roll-up
    xomatiq metrics --shard-map shards.json 'FOR ...' # federation.*

``analyze`` samples per-shard cardinalities, keyword and value
histograms into ``shards.stats.json``; subsequent federated queries
plan cost-based (shard pruning, join ordering, semi-join pushdown).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.datahounds.registry import SourceRegistry
from repro.engine import Warehouse
from repro.errors import ReproError
from repro.relational.sqlite_backend import SqliteBackend


def build_parser() -> argparse.ArgumentParser:
    """The xomatiq argument parser (see module docstring)."""
    parser = argparse.ArgumentParser(
        prog="xomatiq",
        description="XomatiQ/Data Hounds: warehouse and query biological "
                    "data as XML over a relational engine")
    sub = parser.add_subparsers(dest="command", required=True)

    init = sub.add_parser("init", help="create an empty warehouse database")
    init.add_argument("--db", required=True, help="sqlite database path")

    load = sub.add_parser("load", help="transform and load a flat file")
    load.add_argument("--db", help="sqlite database path")
    load.add_argument("--shard-map",
                      help="load into a sharded federation instead of "
                           "--db (partitioned sources split into "
                           "contiguous slices across their shards)")
    load.add_argument("--source", required=True,
                      help="source name (hlx_enzyme, hlx_embl, hlx_sprot)")
    load.add_argument("flatfile", help="path to the flat-file release")
    load.add_argument("--batch-size", type=int, default=None,
                      help="documents per bulk-load flush transaction "
                           "(default: warehouse bulk_batch_size, 512)")
    load.add_argument("--workers", type=int, default=None,
                      help="transform+shred worker threads "
                           "(default 0: run inline)")

    harvest = sub.add_parser(
        "harvest", help="hound-harvest every source from a mirror "
                        "directory, with retries and per-source fault "
                        "isolation")
    harvest.add_argument("--db", required=True, help="sqlite database path")
    harvest.add_argument("--repo", required=True,
                         help="mirror directory "
                              "(<repo>/<source>/<release>.dat layout)")
    harvest.add_argument("--source", action="append", dest="sources",
                         help="harvest only this source (repeatable; "
                              "default: every registered source the "
                              "mirror publishes)")
    harvest.add_argument("--retries", type=int, default=None,
                         help="max fetch attempts per source (enables "
                              "the resilient transport wrapper: "
                              "backoff, integrity verification, "
                              "circuit breakers)")
    harvest.add_argument("--fail-fast", action="store_true",
                         help="abort on the first failing source "
                              "instead of isolating it")
    harvest.add_argument("--quarantine", action="store_true",
                         help="skip and report malformed entries "
                              "instead of aborting the release")

    synth = sub.add_parser("synth",
                           help="generate a cross-linked synthetic corpus")
    synth.add_argument("--out", required=True, help="output directory")
    synth.add_argument("--seed", type=int, default=7)
    synth.add_argument("--enzyme", type=int, default=100)
    synth.add_argument("--embl", type=int, default=150)
    synth.add_argument("--sprot", type=int, default=100)

    query = sub.add_parser("query", help="run a XomatiQ query")
    query.add_argument("--db", help="sqlite database path")
    query.add_argument("--shard-map",
                       help="run federated over the shard-map registry "
                            "file instead of --db")
    query.add_argument("--file", help="read the query from a file")
    query.add_argument("--xml", action="store_true",
                       help="XML output instead of a table")
    query.add_argument("text", nargs="?", help="query text")

    translate = sub.add_parser(
        "translate", help="show the SQL a query translates to")
    translate.add_argument("--db", required=True)
    translate.add_argument("--file")
    translate.add_argument("text", nargs="?")

    profile = sub.add_parser(
        "profile", help="profile a query: per-stage timings, "
                        "per-statement counters, EXPLAIN plans")
    profile.add_argument("--db", help="sqlite database path")
    profile.add_argument("--synth", action="store_true",
                         help="profile against an in-memory synthetic "
                              "corpus instead of --db")
    profile.add_argument("--backend", choices=("sqlite", "minidb"),
                         default="sqlite",
                         help="relational engine for --synth runs")
    profile.add_argument("--seed", type=int, default=7,
                         help="corpus seed for --synth runs")
    profile.add_argument("--no-explain", action="store_true",
                         help="skip EXPLAIN plan capture")
    profile.add_argument("--json", dest="json_out",
                         help="also write the profile JSON to this path")
    profile.add_argument("--file", help="read the query from a file")
    profile.add_argument("text", nargs="?", help="query text")

    dtd = sub.add_parser("dtd", help="print a source's DTD tree")
    dtd.add_argument("--source", required=True)

    sub.add_parser("sources", help="list registered source transformers")

    stats = sub.add_parser("stats", help="warehouse table/row counts")
    stats.add_argument("--db", help="sqlite database path")
    stats.add_argument("--shard-map",
                       help="aggregate stats across a federation's "
                            "shards instead of --db")
    stats.add_argument("--per-shard", action="store_true",
                       help="with --shard-map: per-shard breakdown "
                            "instead of the aggregate")
    stats.add_argument("--json", action="store_true",
                       help="machine-readable JSON instead of a table")

    analyze = sub.add_parser(
        "analyze", help="collect federation optimizer statistics from "
                        "every reachable shard (persisted next to the "
                        "shard map; enables cost-based planning)")
    analyze.add_argument("--shard-map", required=True,
                         help="shard-map registry file (JSON)")
    analyze.add_argument("--stats",
                         help="statistics catalog path (default: the "
                              "shard map's sibling .stats.json)")
    analyze.add_argument("--json", action="store_true",
                         help="machine-readable summary instead of a "
                              "table")

    metrics = sub.add_parser(
        "metrics", help="dump the always-on metrics registry (optionally "
                        "after running a query to exercise the pipeline)")
    metrics.add_argument("--db", help="sqlite database path")
    metrics.add_argument("--shard-map",
                         help="run federated over a shard map; the dump "
                              "includes the federation.* metrics")
    metrics.add_argument("--synth", action="store_true",
                         help="run against an in-memory synthetic corpus "
                              "instead of --db")
    metrics.add_argument("--seed", type=int, default=7,
                         help="corpus seed for --synth runs")
    metrics.add_argument("--format", choices=("json", "prometheus"),
                         default="json",
                         help="snapshot JSON or Prometheus text exposition")
    metrics.add_argument("--file", help="read a query from a file")
    metrics.add_argument("text", nargs="?",
                         help="optional query to run before dumping")

    health = sub.add_parser(
        "health", help="warehouse health: row-count and keyword-index "
                       "sanity checks plus per-source harvest freshness")
    health.add_argument("--db", help="sqlite database path")
    health.add_argument("--shard-map",
                        help="roll up health across a federation's "
                             "shards instead of --db")
    health.add_argument("--synth", action="store_true",
                        help="check an in-memory synthetic corpus")
    health.add_argument("--seed", type=int, default=7,
                        help="corpus seed for --synth runs")
    health.add_argument("--json", action="store_true",
                        help="machine-readable JSON instead of a report")

    serve = sub.add_parser(
        "serve", help="run the always-on HTTP query service over a "
                      "warehouse (--db), a federation (--shard-map) or "
                      "an in-memory synthetic corpus (--synth)")
    serve.add_argument("--db", help="sqlite database path")
    serve.add_argument("--shard-map",
                       help="serve a sharded federation instead of --db")
    serve.add_argument("--synth", action="store_true",
                       help="serve an in-memory synthetic corpus "
                            "(demos, benchmarks)")
    serve.add_argument("--seed", type=int, default=7,
                       help="corpus seed for --synth")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8014,
                       help="bind port (default 8014; 0 = ephemeral)")
    serve.add_argument("--max-in-flight", type=int, default=64,
                       help="concurrent work requests before 503 "
                            "load-shedding (default 64)")
    serve.add_argument("--rate-limit", type=float, default=0.0,
                       help="sustained requests/second allowed per "
                            "client before 429 (default 0: unlimited)")
    serve.add_argument("--rate-burst", type=float, default=None,
                       help="per-client burst allowance "
                            "(default: 2 x rate limit)")
    serve.add_argument("--shards", type=int, default=0,
                       help="with --synth: serve the corpus as an "
                            "in-memory federation of this many shards "
                            "(EMBL horizontally partitioned across all "
                            "of them) instead of one warehouse")
    serve.add_argument("--replicas", type=int, default=0,
                       help="with --shards: in-memory replicas per "
                            "shard, enabling failover and hedging "
                            "(default 0)")
    serve.add_argument("--trace-capacity", type=int, default=256,
                       help="retained request traces (0 disables "
                            "tracing; default 256)")
    serve.add_argument("--trace-sample", type=float, default=1.0,
                       help="head-sampling rate for routine traces; "
                            "slow and error traces are always kept "
                            "(default 1.0)")
    serve.add_argument("--trace-slow-ms", type=float, default=500.0,
                       help="requests at or over this duration are "
                            "always kept (default 500)")

    trace = sub.add_parser(
        "trace", help="inspect a running service's request traces "
                      "(talks HTTP to a serve node's /traces API)")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    def _trace_common(command):
        command.add_argument("--url", default="http://127.0.0.1:8014",
                             help="service base URL "
                                  "(default http://127.0.0.1:8014)")
        command.add_argument("--timeout", type=float, default=10.0,
                             help="HTTP timeout in seconds (default 10)")

    trace_list = trace_sub.add_parser(
        "list", help="summaries of retained traces, newest first")
    _trace_common(trace_list)
    trace_list.add_argument("--limit", type=int, default=0,
                            help="show at most this many (default: all)")
    trace_list.add_argument("--json", action="store_true",
                            help="raw /traces JSON instead of a table")

    trace_show = trace_sub.add_parser(
        "show", help="render one trace as a span-tree waterfall")
    _trace_common(trace_show)
    trace_show.add_argument("trace_id", nargs="?",
                            help="trace id (default: the newest trace)")
    trace_show.add_argument("--json", action="store_true",
                            help="raw xomatiq-trace/1 JSON instead of "
                                 "the waterfall")

    trace_export = trace_sub.add_parser(
        "export", help="write one trace as Chrome trace_event JSON "
                       "(about:tracing / ui.perfetto.dev)")
    _trace_common(trace_export)
    trace_export.add_argument("trace_id", nargs="?",
                              help="trace id (default: the newest trace)")
    trace_export.add_argument("--out",
                              help="output path "
                                   "(default: trace-<id>.json)")

    subscribe = sub.add_parser(
        "subscribe", help="register a standing query on a serve node "
                          "and tail its deltas (talks HTTP to "
                          "/subscriptions)")
    subscribe.add_argument("query", nargs="?",
                           help="FLWR query text (or use --file)")
    subscribe.add_argument("--file", help="read the query from a file")
    subscribe.add_argument("--url", default="http://127.0.0.1:8014",
                           help="service base URL "
                                "(default http://127.0.0.1:8014)")
    subscribe.add_argument("--policy", default="coalesce",
                           choices=("block", "drop_oldest", "coalesce"),
                           help="backpressure policy for this "
                                "subscriber's queue (default coalesce)")
    subscribe.add_argument("--max-events", type=int, default=0,
                           help="stop after this many deltas "
                                "(default: tail until interrupted)")
    subscribe.add_argument("--timeout", type=float, default=10.0,
                           help="long-poll wait per request in seconds "
                                "(default 10; the server clamps it)")
    subscribe.add_argument("--keep", action="store_true",
                           help="leave the subscription registered on "
                                "exit instead of deleting it")
    subscribe.add_argument("--json", action="store_true",
                           help="print raw delta JSON, one per line")

    shard = sub.add_parser(
        "shard", help="manage a federation's shard-map registry file")
    shard_sub = shard.add_subparsers(dest="shard_command", required=True)

    shard_add = shard_sub.add_parser(
        "add", help="register a shard (creates the map file if absent)")
    shard_add.add_argument("--map", required=True,
                           help="shard-map registry file (JSON)")
    shard_add.add_argument("name", help="shard name")
    shard_add.add_argument("--path", default=None,
                           help="shard database path "
                                "(default: <name>.sqlite)")
    shard_add.add_argument("--latency-s", type=float, default=0.0,
                           help="simulated access round-trip in seconds "
                                "(models a remote shard; E13 latency "
                                "experiments)")
    shard_add.add_argument("--backend", choices=("sqlite", "minidb"),
                           default="sqlite")

    shard_replica = shard_sub.add_parser(
        "add-replica", help="register a replica backend for a shard "
                            "(query path fails over / hedges onto it)")
    shard_replica.add_argument("--map", required=True,
                               help="shard-map registry file (JSON)")
    shard_replica.add_argument("shard", help="shard to replicate")
    shard_replica.add_argument("--path", default=None,
                               help="replica database path "
                                    "(default: <shard>-r<n>.sqlite)")
    shard_replica.add_argument("--latency-s", type=float, default=0.0,
                               help="simulated access round-trip in "
                                    "seconds")
    shard_replica.add_argument("--backend", choices=("sqlite", "minidb"),
                               default="sqlite")

    shard_assign = shard_sub.add_parser(
        "assign", help="route a source to one shard (whole) or several "
                       "(horizontally partitioned, in order)")
    shard_assign.add_argument("--map", required=True)
    shard_assign.add_argument("source", help="source name (hlx_enzyme, ...)")
    shard_assign.add_argument("shards", nargs="+",
                              help="shard names, partition order")

    shard_init = shard_sub.add_parser(
        "init", help="create every shard database the map declares")
    shard_init.add_argument("--map", required=True)

    shard_list = shard_sub.add_parser(
        "list", help="show registered shards and source routing")
    shard_list.add_argument("--map", required=True)
    shard_list.add_argument("--json", action="store_true")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # downstream pager/head closed early; not an error, but the
        # interpreter would complain at exit unless stdout is detached
        sys.stdout = open(os.devnull, "w")
        return 0


def _dispatch(args) -> int:
    if args.command == "init":
        warehouse = Warehouse(backend=SqliteBackend(args.db))
        warehouse.close()
        print(f"created warehouse {args.db}")
        return 0

    if args.command == "load":
        if args.shard_map:
            federation = _open_federation(args.shard_map)
            counts = federation.load_text(
                args.source,
                Path(args.flatfile).read_text(encoding="utf-8"),
                batch_size=args.batch_size, workers=args.workers)
            per_shard = ", ".join(f"{shard}: {count}"
                                  for shard, count in counts.items())
            print(f"loaded {sum(counts.values())} documents into "
                  f"{args.source} ({per_shard})")
            federation.close()
            return 0
        if not args.db:
            print("error: provide --db or --shard-map", file=sys.stderr)
            return 2
        warehouse = _open(args.db)
        count = warehouse.load_file(args.source, args.flatfile,
                                    batch_size=args.batch_size,
                                    workers=args.workers)
        print(f"loaded {count} documents into {args.source}")
        warehouse.close()
        return 0

    if args.command == "harvest":
        from repro.datahounds.transport import DirectoryRepository
        warehouse = _open(args.db)
        report = warehouse.harvest(DirectoryRepository(args.repo),
                                   sources=args.sources,
                                   quarantine=args.quarantine,
                                   retries=args.retries,
                                   fail_fast=args.fail_fast)
        print(report)
        warehouse.close()
        return 0 if report.ok else 1

    if args.command == "synth":
        from repro.synth import build_corpus
        corpus = build_corpus(seed=args.seed, enzyme_count=args.enzyme,
                              embl_count=args.embl, sprot_count=args.sprot)
        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        (out / "enzyme.dat").write_text(corpus.enzyme_text, encoding="utf-8")
        (out / "embl.dat").write_text(corpus.embl_text, encoding="utf-8")
        (out / "sprot.dat").write_text(corpus.sprot_text, encoding="utf-8")
        print(f"wrote corpus to {out} ({corpus.sizes()})")
        return 0

    if args.command == "query" and args.shard_map:
        text = _query_text(args)
        federation = _open_federation(args.shard_map)
        result = federation.query(text)
        for warning in result.warnings:
            print(f"warning: {warning}", file=sys.stderr)
        print(result.to_xml() if args.xml else result.to_table())
        federation.close()
        return 0

    if args.command in ("query", "translate"):
        text = _query_text(args)
        if args.command == "query" and not args.db:
            print("error: provide --db or --shard-map", file=sys.stderr)
            return 2
        warehouse = _open(args.db)
        if args.command == "translate":
            compiled = warehouse.translate(text)
            for index, statement in enumerate(compiled.statements(), 1):
                print(f"-- statement {index}")
                print(statement)
                print()
        else:
            result = warehouse.query(text)
            print(result.to_xml() if args.xml else result.to_table())
        warehouse.close()
        return 0

    if args.command == "profile":
        from repro.obs import export_profiles, format_profile
        text = _query_text(args)
        if args.synth:
            from repro.relational import MiniDbBackend
            from repro.synth import build_corpus
            backend = (MiniDbBackend() if args.backend == "minidb"
                       else SqliteBackend())
            warehouse = Warehouse(backend=backend)
            warehouse.load_corpus(build_corpus(seed=args.seed))
        elif args.db:
            warehouse = _open(args.db)
        else:
            print("error: provide --db or --synth", file=sys.stderr)
            return 2
        report = warehouse.profile(text, explain=not args.no_explain)
        print(format_profile(report))
        if args.json_out:
            export_profiles([report], args.json_out)
            print(f"\nwrote profile JSON to {args.json_out}")
        warehouse.close()
        return 0

    if args.command == "dtd":
        registry = SourceRegistry()
        transformer = registry.create(args.source, validate=False)
        print(transformer.dtd_tree().render())
        return 0

    if args.command == "stats":
        import json
        if args.shard_map:
            federation = _open_federation(args.shard_map)
            if args.per_shard:
                per_shard = federation.shard_stats()
                if args.json:
                    print(json.dumps(per_shard, indent=2, sort_keys=True))
                else:
                    for shard, stats in per_shard.items():
                        print(f"[{shard}]")
                        for key, count in stats.items():
                            print(f"  {key:<22} {count}")
            else:
                stats = federation.stats()
                if args.json:
                    print(json.dumps(stats, indent=2, sort_keys=True))
                else:
                    for key, count in stats.items():
                        print(f"{key:<24} {count}")
            federation.close()
            return 0
        if not args.db:
            print("error: provide --db or --shard-map", file=sys.stderr)
            return 2
        warehouse = _open(args.db)
        stats = warehouse.stats()
        if args.json:
            print(json.dumps(stats, indent=2, sort_keys=True))
        else:
            for key, count in stats.items():
                print(f"{key:<24} {count}")
        warehouse.close()
        return 0

    if args.command == "analyze":
        import json
        from repro.federation import FederatedXomatiQ, default_stats_path
        stats_path = args.stats or default_stats_path(args.shard_map)
        federation = FederatedXomatiQ.from_shard_map(
            args.shard_map, stats_path=stats_path)
        try:
            summary = federation.analyze()
        finally:
            federation.close()
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(f"analyzed {summary['shards_analyzed']} shard(s) "
                  f"-> {stats_path}")
            for name, record in summary["shards"].items():
                complete = "complete" if record["tokens_complete"] \
                    else "capped"
                print(f"  {name:<8} gen {record['generation']:<4} "
                      f"{record['documents']:>6} docs "
                      f"{record['elements']:>8} elements "
                      f"{record['tokens']:>6} tokens ({complete})")
            for name in summary.get("shards_skipped", []):
                print(f"  {name:<8} unreachable — skipped")
        return 0

    if args.command == "metrics":
        import json
        from repro.obs import MetricsRegistry
        registry = MetricsRegistry()
        warehouse = _open_for_check(args, metrics=registry)
        if warehouse is None:
            return 2
        if args.text or args.file:
            warehouse.query(_query_text(args))
        if args.format == "prometheus":
            sys.stdout.write(registry.render_prometheus())
        else:
            print(json.dumps(registry.snapshot(), indent=2, sort_keys=True))
        warehouse.close()
        return 0

    if args.command == "health":
        import json
        from repro.obs import format_health
        warehouse = _open_for_check(args)
        if warehouse is None:
            return 2
        report = warehouse.health()
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(format_health(report))
        warehouse.close()
        # Nagios-style tri-state so monitoring can tell degraded from
        # broken: 0 = ok, 2 = warn (degraded but serving), 1 = fail
        return {"ok": 0, "warn": 2}.get(report["status"], 1)

    if args.command == "serve":
        return _dispatch_serve(args)

    if args.command == "trace":
        return _dispatch_trace(args)

    if args.command == "sources":
        registry = SourceRegistry()
        for name in registry.names():
            transformer = registry.create(name, validate=False)
            codes = ", ".join(spec.code for spec in transformer.line_specs)
            print(f"{name:<12} root <{transformer.dtd.root}>  lines: {codes}")
        return 0

    if args.command == "subscribe":
        return _dispatch_subscribe(args)

    if args.command == "shard":
        return _dispatch_shard(args)

    raise AssertionError(f"unhandled command {args.command}")


def _dispatch_serve(args) -> int:
    """Run the HTTP service until SIGINT/SIGTERM, then drain."""
    import signal
    import threading
    from repro.service import ServiceConfig, serve
    if args.shards:
        if not args.synth:
            print("error: --shards requires --synth", file=sys.stderr)
            return 2
        engine = _build_synth_federation(args.seed, args.shards,
                                         replicas=args.replicas)
    else:
        engine = _open_for_check(args)
    if engine is None:
        return 2
    config = ServiceConfig(host=args.host, port=args.port,
                           max_in_flight=args.max_in_flight,
                           rate_limit=args.rate_limit,
                           rate_burst=args.rate_burst,
                           trace_capacity=args.trace_capacity,
                           trace_sample=args.trace_sample,
                           trace_slow_ms=args.trace_slow_ms)
    server = serve(engine, config)
    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *__: stop.set())
    # serve_forever must run off the main thread so the main thread
    # can wait on the signal event and call shutdown() (calling it
    # from the serving thread deadlocks by contract)
    thread = threading.Thread(target=server.serve_forever,
                              name="xomatiq-serve", daemon=True)
    thread.start()
    print(f"serving on {server.url} "
          f"(max in-flight {config.max_in_flight}"
          + (f", {config.rate_limit:g} req/s per client"
             if config.rate_limit > 0 else "")
          + "; SIGINT/SIGTERM to stop)", flush=True)
    try:
        stop.wait()
    except KeyboardInterrupt:
        pass
    print("shutting down", flush=True)
    server.close()
    thread.join(timeout=10)
    return 0


def _dispatch_subscribe(args) -> int:
    """``subscribe`` — register a standing query on a serve node and
    tail its deltas over the long-poll API until interrupted."""
    import json
    from urllib.error import HTTPError, URLError
    from urllib.request import Request, urlopen

    base = args.url.rstrip("/")
    if args.file:
        text = Path(args.file).read_text(encoding="utf-8")
    elif args.query:
        text = args.query
    else:
        print("error: give a query or --file", file=sys.stderr)
        return 2

    def call(method: str, path: str, body: dict | None = None) -> dict:
        request = Request(
            base + path, method=method,
            data=(json.dumps(body).encode("utf-8")
                  if body is not None else None),
            headers={"Content-Type": "application/json"}
            if body is not None else {})
        try:
            with urlopen(request, timeout=args.timeout + 5) as response:
                return json.loads(response.read().decode("utf-8"))
        except HTTPError as exc:
            try:
                detail = json.loads(
                    exc.read().decode("utf-8")).get("error", "")
            except Exception:
                detail = ""
            raise ReproError(
                f"{base}{path}: HTTP {exc.code}"
                + (f" ({detail})" if detail else "")) from None
        except (URLError, OSError) as exc:
            raise ReproError(
                f"cannot reach service at {base}: {exc}") from None

    record = call("POST", "/subscriptions",
                  {"query": text, "policy": args.policy,
                   "persist": args.keep})
    sub_id = record["id"]
    print(f"subscribed {sub_id} (policy {args.policy}, "
          f"sources {', '.join(record.get('sources', []) or ['?'])}); "
          f"waiting for deltas — Ctrl-C to stop", flush=True)
    cursor = 0
    seen = 0
    try:
        while not args.max_events or seen < args.max_events:
            page = call("GET", f"/subscriptions/{sub_id}/events"
                               f"?after={cursor}&timeout={args.timeout}")
            for event in page["events"]:
                cursor = event["id"]
                seen += 1
                delta = event["delta"]
                if args.json:
                    print(json.dumps(delta, sort_keys=True), flush=True)
                else:
                    print(f"#{event['id']} {delta['source']} "
                          f"{delta['release'] or '-'} "
                          f"[{delta['origin']}] "
                          f"+{len(delta['added'])} "
                          f"-{len(delta['removed'])} "
                          f"rows={delta['total_rows']}", flush=True)
                if args.max_events and seen >= args.max_events:
                    break
            if page.get("lost_events"):
                print(f"warning: channel overflowed, "
                      f"{page['lost_events']} event(s) lost",
                      file=sys.stderr, flush=True)
    except KeyboardInterrupt:
        pass
    finally:
        if not args.keep:
            try:
                call("DELETE", f"/subscriptions/{sub_id}")
                print(f"unsubscribed {sub_id}", flush=True)
            except ReproError as exc:
                print(f"warning: could not unsubscribe: {exc}",
                      file=sys.stderr)
    return 0


def _dispatch_trace(args) -> int:
    """``trace list/show/export`` — read a serve node's /traces API."""
    import json
    from urllib.error import HTTPError, URLError
    from urllib.request import urlopen

    base = args.url.rstrip("/")

    def fetch(path: str) -> dict:
        try:
            with urlopen(base + path, timeout=args.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except HTTPError as exc:
            try:
                detail = json.loads(
                    exc.read().decode("utf-8")).get("error", "")
            except Exception:
                detail = ""
            raise ReproError(
                f"{base}{path}: HTTP {exc.code}"
                + (f" ({detail})" if detail else "")) from None
        except (URLError, OSError) as exc:
            raise ReproError(
                f"cannot reach service at {base}: {exc}") from None

    def resolve_id() -> str:
        if getattr(args, "trace_id", None):
            return args.trace_id
        newest = fetch("/traces?limit=1")["traces"]
        if not newest:
            raise ReproError("the service has no retained traces yet "
                             "(send it a request first)")
        return newest[0]["trace_id"]

    if args.trace_command == "list":
        query = f"?limit={args.limit}" if args.limit else ""
        payload = fetch("/traces" + query)
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        print(f"{payload['kept']}/{payload['offered']} traces kept "
              f"(ring capacity {payload['capacity']}), newest first:")
        for summary in payload["traces"]:
            print(f"  {summary['trace_id']:<20} "
                  f"{summary['endpoint'] or '-':<10} "
                  f"status={summary['status']} "
                  f"{summary['duration_ms']:>9.2f}ms "
                  f"{summary['spans']:>3} spans  "
                  f"kept={summary['kept']}")
        return 0

    if args.trace_command == "show":
        from repro.obs import format_trace
        trace = fetch(f"/traces/{resolve_id()}")
        if args.json:
            print(json.dumps(trace, indent=2, sort_keys=True))
        else:
            print(format_trace(trace))
        return 0

    if args.trace_command == "export":
        trace_id = resolve_id()
        payload = fetch(f"/traces/{trace_id}?format=chrome")
        out = args.out or f"trace-{trace_id}.json"
        Path(out).write_text(json.dumps(payload, indent=2) + "\n",
                             encoding="utf-8")
        print(f"wrote Chrome trace_event JSON for {trace_id} to {out} "
              f"(open in about:tracing or ui.perfetto.dev)")
        return 0
    raise AssertionError(f"unhandled trace command {args.trace_command}")


def _dispatch_shard(args) -> int:
    import json
    from repro.federation import ShardCatalog
    path = Path(args.map)

    if args.shard_command == "add":
        catalog = (ShardCatalog.load(path) if path.exists()
                   else ShardCatalog())
        db_path = args.path if args.path is not None \
            else f"{args.name}.sqlite"
        catalog.add_shard(args.name, path=db_path, backend=args.backend,
                          latency_s=args.latency_s)
        catalog.save(path)
        print(f"added shard {args.name} -> {db_path} ({args.backend})")
        return 0

    catalog = ShardCatalog.load(path)
    if args.shard_command == "add-replica":
        ordinal = len(catalog.replicas(args.shard))
        db_path = args.path if args.path is not None \
            else f"{args.shard}-r{ordinal}.sqlite"
        spec = catalog.add_replica(args.shard, path=db_path,
                                   backend=args.backend,
                                   latency_s=args.latency_s)
        catalog.save(path)
        print(f"added replica {spec.name} -> {db_path} ({args.backend})")
        return 0
    if args.shard_command == "assign":
        catalog.assign(args.source, *args.shards)
        catalog.save(path)
        print(f"routed {args.source} -> {', '.join(args.shards)}")
        return 0
    if args.shard_command == "init":
        catalog.create_shards()
        catalog.close()
        print(f"initialized {len(catalog.shard_names())} shard "
              f"database(s)")
        return 0
    if args.shard_command == "list":
        if args.json:
            print(json.dumps(catalog.to_dict(), indent=2, sort_keys=True))
            return 0
        print("shards:")
        for name in catalog.shard_names():
            spec = catalog.spec(name)
            print(f"  {name:<12} {spec.backend:<8} {spec.path}")
            for replica in catalog.replicas(name):
                print(f"  {replica.name:<12} {replica.backend:<8} "
                      f"{replica.path} (replica)")
        print("sources:")
        sources = catalog.sources()
        if not sources:
            print("  (none routed)")
        for source, shards in sources.items():
            print(f"  {source:<12} -> {', '.join(shards)}")
        return 0
    raise AssertionError(f"unhandled shard command {args.shard_command}")


def _open(db: str, metrics=None) -> Warehouse:
    # reuse the schema if the database file already exists
    exists = Path(db).exists()
    return Warehouse(backend=SqliteBackend(db), create=not exists,
                     metrics=metrics)


def _build_synth_federation(seed: int, shards: int, replicas: int = 0):
    """An in-memory federation over the synthetic corpus: ENZYME and
    SPROT on single shards, EMBL horizontally partitioned across every
    shard — so a demo node exercises both routing modes (and a request
    trace shows real scatter-gather fan-out). ``replicas`` in-memory
    replicas per shard are loaded alongside their primaries, giving
    the executor failover/hedging targets."""
    from repro.federation import FederatedXomatiQ, ShardCatalog
    from repro.synth import build_corpus
    catalog = ShardCatalog()
    names = [f"s{index}" for index in range(max(1, shards))]
    for name in names:
        catalog.add_shard(name)
        for __ in range(max(0, replicas)):
            catalog.add_replica(name)
    catalog.assign("hlx_enzyme", names[0])
    catalog.assign("hlx_sprot", names[-1])
    catalog.assign("hlx_embl", *names)
    federation = FederatedXomatiQ(catalog)
    federation.load_corpus(build_corpus(seed=seed))
    return federation


def _open_federation(shard_map: str, metrics=None):
    """Open a federated facade over a shard-map registry file."""
    from repro.federation import FederatedXomatiQ
    return FederatedXomatiQ.from_shard_map(shard_map, metrics=metrics)


def _open_for_check(args, metrics=None):
    """Open --db / --shard-map, or build an in-memory --synth
    warehouse; None = usage error (message already printed). The
    returned object answers ``query``/``health``/``close`` whether it
    is a warehouse or a federation."""
    if getattr(args, "shard_map", None):
        return _open_federation(args.shard_map, metrics=metrics)
    if args.synth:
        from repro.synth import build_corpus
        warehouse = Warehouse(metrics=metrics)
        warehouse.load_corpus(build_corpus(seed=args.seed))
        return warehouse
    if args.db:
        return _open(args.db, metrics=metrics)
    print("error: provide --db or --synth", file=sys.stderr)
    return None


def _query_text(args) -> str:
    if args.file:
        return Path(args.file).read_text(encoding="utf-8")
    if args.text:
        return args.text
    print("error: provide query text or --file", file=sys.stderr)
    raise SystemExit(2)


if __name__ == "__main__":
    raise SystemExit(main())
