"""The XomatiQ query language: FLWR subset of the June-2001 XQuery
draft plus the ``contains()`` keyword extension (paper §3)."""

from repro.xquery.ast import (
    Binding,
    BoolAnd,
    BoolNot,
    BoolOr,
    Compare,
    Condition,
    Contains,
    DocumentName,
    LiteralOperand,
    Query,
    ReturnItem,
    VarPath,
)
from repro.xquery.parser import parse_query
from repro.xquery.semantics import check_query

__all__ = [
    "Binding",
    "BoolAnd",
    "BoolNot",
    "BoolOr",
    "Compare",
    "Condition",
    "Contains",
    "DocumentName",
    "LiteralOperand",
    "Query",
    "ReturnItem",
    "VarPath",
    "check_query",
    "parse_query",
]
