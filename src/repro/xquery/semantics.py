"""Semantic checks on parsed queries.

Performed before translation so the user gets a query-shaped error
("$b is not bound") rather than an SQL-shaped one. Checks:

* binding variables are unique; context variables are bound earlier,
* every variable used in WHERE/RETURN is bound,
* known document names (when a resolver is supplied),
* path sanity against the source DTD (when a DTD resolver is
  supplied): each step name must occur somewhere in the DTD — the
  paper's GUI prevents unknown names by construction (users click DTD
  nodes); text queries get the equivalent safety net here.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import BindingError, UnknownDocumentError
from repro.xmlkit.dtd import Dtd
from repro.xmlkit.path import Path
from repro.xquery.ast import (
    Binding,
    BoolAnd,
    BoolNot,
    BoolOr,
    Compare,
    Condition,
    Contains,
    OrderCompare,
    Query,
    SeqContains,
    ValueIn,
    VarPath,
)

DocumentChecker = Callable[[str, str | None], bool]
DtdResolver = Callable[[str], Dtd | None]


def check_query(query: Query,
                document_exists: DocumentChecker | None = None,
                dtd_for_source: DtdResolver | None = None) -> None:
    """Raise on semantic errors; returns None when the query is sound."""
    bound: dict[str, Binding] = {}
    for binding in query.bindings:
        if binding.var in bound:
            raise BindingError(f"variable ${binding.var} bound twice")
        if binding.context_var is not None:
            if binding.context_var not in bound:
                raise BindingError(
                    f"${binding.var} is rooted on unbound "
                    f"${binding.context_var}")
        elif document_exists is not None:
            name = binding.document
            if not document_exists(name.source, name.collection):
                raise UnknownDocumentError(
                    f'document("{name}") is not loaded in this warehouse')
        bound[binding.var] = binding

    used = _used_varpaths(query)
    for varpath in used:
        if varpath.var not in bound:
            raise BindingError(f"variable ${varpath.var} is not bound")

    if dtd_for_source is not None:
        _check_paths_against_dtds(query, bound, dtd_for_source)


def _used_varpaths(query: Query) -> list[VarPath]:
    """Every VarPath the query reads (conditions, plain return items
    and constructor-embedded expressions)."""
    used: list[VarPath] = []
    if query.where is not None:
        _collect_varpaths(query.where, used)
    for item in query.returns:
        if item.constructor is not None:
            used.extend(item.constructor.varpaths())
        else:
            used.append(item.value)
    return used


def _collect_varpaths(condition: Condition, out: list[VarPath]) -> None:
    if isinstance(condition, (Contains, SeqContains, ValueIn)):
        out.append(condition.target)
    elif isinstance(condition, Compare):
        for operand in (condition.left, condition.right):
            if isinstance(operand, VarPath):
                out.append(operand)
    elif isinstance(condition, OrderCompare):
        out.append(condition.left)
        out.append(condition.right)
    elif isinstance(condition, (BoolAnd, BoolOr)):
        for item in condition.items:
            _collect_varpaths(item, out)
    elif isinstance(condition, BoolNot):
        _collect_varpaths(condition.item, out)
    else:
        # fail loudly: a skipped condition type would escape both the
        # binding check and the DTD path check
        raise TypeError(
            f"unknown condition type {type(condition).__name__}")


def _source_of(var: str, bound: dict[str, Binding]) -> str:
    binding = bound[var]
    while binding.context_var is not None:
        binding = bound[binding.context_var]
    return binding.document.source


def _check_paths_against_dtds(query: Query, bound: dict[str, Binding],
                              dtd_for_source: DtdResolver) -> None:
    known_names: dict[str, set[str] | None] = {}

    def names_for(source: str) -> set[str] | None:
        if source not in known_names:
            dtd = dtd_for_source(source)
            if dtd is None:
                known_names[source] = None
            else:
                names: set[str] = set(dtd.elements)
                for decl in dtd.elements.values():
                    names.update(decl.attributes)
                known_names[source] = names
        return known_names[source]

    def check_path(path: Path | None, source: str, label: str) -> None:
        if path is None:
            return
        names = names_for(source)
        if names is None:
            return
        for step in path.steps:
            if step.name != "*" and step.name not in names:
                raise BindingError(
                    f"{label}: name {step.name!r} does not occur in the "
                    f"DTD of {source}")
            for predicate in step.predicates:
                target = getattr(predicate, "name", None)
                if target is not None and target not in names:
                    raise BindingError(
                        f"{label}: predicate target {target!r} "
                        f"does not occur in the DTD of {source}")

    for binding in query.bindings:
        check_path(binding.path, _source_of(binding.var, bound),
                   f"binding ${binding.var}")
    for varpath in _used_varpaths(query):
        check_path(varpath.path, _source_of(varpath.var, bound),
                   f"path ${varpath.var}{varpath.path}")
