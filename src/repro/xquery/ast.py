"""AST of the XomatiQ query language.

A query is a FLWR expression (the paper uses FOR-WHERE-RETURN; LET is
accepted and treated as a single-binding FOR since our bindings are
node sequences either way)::

    FOR   $a IN document("hlx_embl.inv")/hlx_n_sequence,
          $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
    WHERE contains($a, "cdc6", any) AND $a//x = $b/enzyme_id
    RETURN $Alias = $a//embl_accession_number, $b//enzyme_description

Conditions form a boolean algebra over two atoms: ``contains`` and
comparisons. Operands are variable-rooted paths or literals.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xmlkit.path import Path


@dataclass(frozen=True)
class DocumentName:
    """A ``document("source.collection")`` argument, split at the last
    dot. A name with no dot addresses every collection of the source."""

    source: str
    collection: str | None

    @classmethod
    def parse(cls, raw: str) -> "DocumentName":
        """Split ``source.collection`` at the last dot."""
        if "." in raw:
            source, __, collection = raw.rpartition(".")
            return cls(source, collection)
        return cls(raw, None)

    def __str__(self) -> str:
        if self.collection is None:
            return self.source
        return f"{self.source}.{self.collection}"


@dataclass(frozen=True)
class Binding:
    """One FOR binding: ``$var IN document(...)path`` or
    ``$var IN $context path`` (re-rooting on another variable)."""

    var: str
    document: DocumentName | None   # exactly one of document/context set
    context_var: str | None
    path: Path | None               # None = the document root itself

    def __str__(self) -> str:
        if self.document is not None:
            origin = f'document("{self.document}")'
        else:
            origin = f"${self.context_var}"
        return f"${self.var} IN {origin}{self.path or ''}"


@dataclass(frozen=True)
class VarPath:
    """A variable-rooted path operand: ``$a`` or ``$a//x/@y``."""

    var: str
    path: Path | None = None

    def __str__(self) -> str:
        return f"${self.var}{self.path or ''}"


@dataclass(frozen=True)
class LiteralOperand:
    """A string or numeric literal operand."""

    value: str | float

    @property
    def is_numeric(self) -> bool:
        """True for numeric literals (affects comparison typing)."""
        return isinstance(self.value, float)

    def __str__(self) -> str:
        if self.is_numeric:
            return f"{self.value:g}"
        return f'"{self.value}"'


Operand = VarPath | LiteralOperand


class Condition:
    """Base class for WHERE conditions."""


@dataclass(frozen=True)
class Contains(Condition):
    """``contains(target, "phrase"[, scope])``.

    ``scope`` is ``"node"`` (default: all tokens under the target node),
    ``"any"`` (anywhere in the target's document) or an integer
    proximity window in token positions.
    """

    target: VarPath
    phrase: str
    scope: str | int = "node"

    def __str__(self) -> str:
        extra = ""
        if self.scope == "any":
            extra = ", any"
        elif isinstance(self.scope, int):
            extra = f", {self.scope}"
        return f'contains({self.target}, "{self.phrase}"{extra})'


@dataclass(frozen=True)
class SeqContains(Condition):
    """``seqcontains(target, "motif")`` — pattern search over sequence
    residues (the query class the paper's sequence/non-sequence split
    exists for). The motif matches case-insensitively anywhere in the
    residue string; ``.`` matches any single residue."""

    target: VarPath
    motif: str

    def __str__(self) -> str:
        return f'seqcontains({self.target}, "{self.motif}")'


@dataclass(frozen=True)
class ValueIn(Condition):
    """``target IN ("v1", "v2", ...)`` — membership of some text value
    of ``target`` in a literal list.

    There is no surface syntax for this atom: the federation planner
    injects it into shard subqueries as the IN-list form of a semi-join
    pushdown (the coordinator runs the cheap join side, collects its
    join-key values and ships them into the expensive side's subquery
    so shards return only bindings that can possibly join). Semantics
    are existential over the target's text values, exactly like an
    equality join: an empty element (no text row) never matches, and an
    empty ``values`` tuple matches nothing.
    """

    target: VarPath
    values: tuple[str, ...]
    #: when set, membership is tested against the *entry key* of the
    #: target variable's document rather than its text values — the
    #: subscription engine's delta restriction (re-evaluate a standing
    #: query only for the entries one harvest touched). ``target.path``
    #: must be None in this form: entry keys belong to the bound
    #: document, not to a path inside it.
    on_entry_key: bool = False

    def __str__(self) -> str:
        inner = ", ".join(f'"{value}"' for value in self.values)
        if self.on_entry_key:
            return f"entry-key({self.target}) IN ({inner})"
        return f"{self.target} IN ({inner})"


@dataclass(frozen=True)
class Compare(Condition):
    """``left op right`` with op in ``= != < <= > >=``."""

    op: str
    left: Operand
    right: Operand

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class OrderCompare(Condition):
    """``left BEFORE right`` / ``left AFTER right`` — document-order
    comparison (the order-based functionality the generic schema's
    ``doc_order`` column exists for). Holds when some element matched
    by ``left`` precedes (follows) some element matched by ``right``
    within the same document."""

    op: str          # "before" | "after"
    left: VarPath
    right: VarPath

    def __str__(self) -> str:
        return f"{self.left} {self.op.upper()} {self.right}"


@dataclass(frozen=True)
class BoolAnd(Condition):
    """Conjunction of conditions."""

    items: tuple[Condition, ...]

    def __str__(self) -> str:
        return " AND ".join(_paren(i) for i in self.items)


@dataclass(frozen=True)
class BoolOr(Condition):
    """Disjunction of conditions."""

    items: tuple[Condition, ...]

    def __str__(self) -> str:
        return " OR ".join(_paren(i) for i in self.items)


@dataclass(frozen=True)
class BoolNot(Condition):
    """Negated condition."""

    item: Condition

    def __str__(self) -> str:
        return f"NOT {_paren(self.item)}"


def _paren(condition: Condition) -> str:
    if isinstance(condition, (BoolAnd, BoolOr)):
        return f"({condition})"
    return str(condition)


@dataclass(frozen=True)
class Constructor:
    """An element constructor in a RETURN clause (June-2001 draft
    syntax)::

        RETURN <hit ec="{ $b/enzyme_id }">
                 <acc>{ $a//embl_accession_number }</acc>
                 <desc>{ $a//description }</desc>
               </hit>

    ``attributes`` values and element ``children`` are either literal
    strings / nested constructors, or embedded :class:`VarPath`
    expressions whose values are spliced in per result row.
    """

    tag: str
    attributes: tuple[tuple[str, "str | VarPath"], ...] = ()
    children: tuple["Constructor | VarPath", ...] = ()

    def varpaths(self) -> list[VarPath]:
        """Every embedded VarPath, document order."""
        out: list[VarPath] = []
        for __, value in self.attributes:
            if isinstance(value, VarPath):
                out.append(value)
        for child in self.children:
            if isinstance(child, VarPath):
                out.append(child)
            else:
                out.extend(child.varpaths())
        return out

    def __str__(self) -> str:
        attrs = "".join(
            f' {name}="{{ {value} }}"' if isinstance(value, VarPath)
            else f' {name}="{value}"'
            for name, value in self.attributes)
        if not self.children:
            return f"<{self.tag}{attrs}/>"
        inner = " ".join(
            f"{{ {child} }}" if isinstance(child, VarPath) else str(child)
            for child in self.children)
        return f"<{self.tag}{attrs}> {inner} </{self.tag}>"


@dataclass(frozen=True)
class ReturnItem:
    """One RETURN item: a path (optionally named), or an element
    constructor.

    The paper's Figure 11 names outputs (``$Accession_Number = $a//...``);
    unnamed items take the final step name of their path; constructor
    items take their root tag.
    """

    value: VarPath | None = None
    alias: str | None = None
    constructor: Constructor | None = None

    def __post_init__(self):
        if (self.value is None) == (self.constructor is None):
            raise ValueError(
                "ReturnItem needs exactly one of value/constructor")

    @property
    def output_name(self) -> str:
        """The result-column name this item produces."""
        if self.alias:
            return self.alias
        if self.constructor is not None:
            return self.constructor.tag
        if self.value.path is not None:
            name = self.value.path.last_name
            return ("@" + name) if self.value.path.is_attribute_path else name
        return self.value.var

    def __str__(self) -> str:
        if self.constructor is not None:
            return str(self.constructor)
        if self.alias:
            return f"${self.alias} = {self.value}"
        return str(self.value)


@dataclass(frozen=True)
class Query:
    """A full FLWR query."""

    bindings: tuple[Binding, ...]
    where: Condition | None
    returns: tuple[ReturnItem, ...]

    def variables(self) -> list[str]:
        """Bound variable names, binding order."""
        return [binding.var for binding in self.bindings]

    def __str__(self) -> str:
        parts = ["FOR " + ",\n    ".join(str(b) for b in self.bindings)]
        if self.where is not None:
            parts.append(f"WHERE {self.where}")
        parts.append("RETURN " + ",\n       ".join(
            str(r) for r in self.returns))
        return "\n".join(parts)
