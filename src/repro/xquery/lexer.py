"""Lexer for the XomatiQ query language.

The language is the FLWR subset of the June-2001 XQuery draft that the
paper implements, extended with ``contains()`` keyword search. Keywords
(`FOR`, `IN`, `WHERE`, `AND`, `OR`, `NOT`, `RETURN`, plus the
``document``/``contains``/``any`` builtins) are recognized
case-insensitively — the paper writes them in upper case, the draft in
lower case.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import XQuerySyntaxError

KEYWORDS = frozenset({"for", "let", "in", "where", "and", "or", "not",
                      "return", "document", "contains", "seqcontains",
                      "any", "before", "after"})

_SYMBOLS = ("//", "/", "[", "]", "(", ")", ",", "@", "$", "*",
            "<=", ">=", "!=", "=", "<", ">", ":=", "{", "}")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source offset."""

    kind: str    # "var", "name", "keyword", "string", "number", "symbol", "end"
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        """True for the given (lowercased) keyword."""
        return self.kind == "keyword" and self.value == word

    def is_symbol(self, symbol: str) -> bool:
        """True for the given punctuation symbol."""
        return self.kind == "symbol" and self.value == symbol


def tokenize(text: str) -> list[Token]:
    """Tokenize a query; raises :class:`XQuerySyntaxError` on garbage."""
    tokens: list[Token] = []
    pos = 0
    length = len(text)
    while pos < length:
        ch = text[pos]
        if ch in " \t\r\n":
            pos += 1
            continue
        if ch == '"' or ch == "'":
            end = text.find(ch, pos + 1)
            if end < 0:
                raise XQuerySyntaxError("unterminated string literal", pos)
            tokens.append(Token("string", text[pos + 1:end], pos))
            pos = end + 1
            continue
        if ch == "$":
            end = pos + 1
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            if end == pos + 1:
                raise XQuerySyntaxError("expected variable name after $", pos)
            tokens.append(Token("var", text[pos + 1:end], pos))
            pos = end
            continue
        if ch.isdigit():
            end = pos
            seen_dot = False
            while end < length and (text[end].isdigit()
                                    or (text[end] == "." and not seen_dot
                                        and end + 1 < length
                                        and text[end + 1].isdigit())):
                if text[end] == ".":
                    seen_dot = True
                end += 1
            # an identifier-like tail (EC numbers in paths are quoted, so
            # bare numbers are genuinely numeric)
            tokens.append(Token("number", text[pos:end], pos))
            pos = end
            continue
        if ch.isalpha() or ch == "_":
            end = pos
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[pos:end]
            kind = "keyword" if word.lower() in KEYWORDS else "name"
            value = word.lower() if kind == "keyword" else word
            tokens.append(Token(kind, value, pos))
            pos = end
            continue
        matched = False
        for symbol in _SYMBOLS:
            if text.startswith(symbol, pos):
                tokens.append(Token("symbol", symbol, pos))
                pos += len(symbol)
                matched = True
                break
        if not matched:
            raise XQuerySyntaxError(f"unexpected character {ch!r}", pos)
    tokens.append(Token("end", "", length))
    return tokens
