"""Recursive-descent parser for the XomatiQ query language."""

from __future__ import annotations

from repro.errors import XQuerySyntaxError
from repro.xmlkit.path import Path, PositionPredicate, Predicate, Step
from repro.xquery.ast import (
    Binding,
    BoolAnd,
    BoolNot,
    BoolOr,
    Compare,
    Condition,
    Constructor,
    Contains,
    DocumentName,
    LiteralOperand,
    Operand,
    OrderCompare,
    Query,
    ReturnItem,
    SeqContains,
    VarPath,
)
from repro.xquery.lexer import Token, tokenize

_COMPARE_OPS = {"=", "!=", "<", "<=", ">", ">="}


def parse_query(text: str) -> Query:
    """Parse a query string into a :class:`Query` AST."""
    parser = _Parser(tokenize(text))
    query = parser.parse_query()
    parser.expect_end()
    return query


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def accept_keyword(self, word: str) -> bool:
        if self.peek().is_keyword(word):
            self.pos += 1
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            self.error(f"expected {word.upper()}")

    def accept_symbol(self, symbol: str) -> bool:
        if self.peek().is_symbol(symbol):
            self.pos += 1
            return True
        return False

    def expect_symbol(self, symbol: str) -> None:
        if not self.accept_symbol(symbol):
            self.error(f"expected {symbol!r}")

    def error(self, message: str):
        token = self.peek()
        found = token.value or "end of query"
        raise XQuerySyntaxError(f"{message}, found {found!r}",
                                token.position)

    # -- grammar --------------------------------------------------------------

    def parse_query(self) -> Query:
        if not (self.accept_keyword("for") or self.accept_keyword("let")):
            self.error("query must begin with FOR")
        bindings = [self.parse_binding()]
        while self.accept_symbol(","):
            # a FOR list may interleave further FOR/LET keywords
            self.accept_keyword("for") or self.accept_keyword("let")
            bindings.append(self.parse_binding())
        while self.accept_keyword("for") or self.accept_keyword("let"):
            bindings.append(self.parse_binding())
            while self.accept_symbol(","):
                bindings.append(self.parse_binding())

        where: Condition | None = None
        if self.accept_keyword("where"):
            where = self.parse_or()
            # the paper's example style: WHERE c1 AND c2 on separate
            # lines with leading AND keywords is already handled by
            # parse_or; stray ANDs are not.

        self.expect_keyword("return")
        returns = [self.parse_return_item()]
        while self.accept_symbol(","):
            returns.append(self.parse_return_item())
        return Query(bindings=tuple(bindings), where=where,
                     returns=tuple(returns))

    def parse_binding(self) -> Binding:
        token = self.peek()
        if token.kind != "var":
            self.error("expected a $variable binding")
        var = self.advance().value
        if not (self.accept_keyword("in") or self.accept_symbol(":=")):
            self.error(f"expected IN after ${var}")
        if self.accept_keyword("document"):
            self.expect_symbol("(")
            name_token = self.peek()
            if name_token.kind != "string":
                self.error("document() expects a quoted name")
            self.advance()
            self.expect_symbol(")")
            path = self.parse_optional_path()
            return Binding(var=var,
                           document=DocumentName.parse(name_token.value),
                           context_var=None, path=path)
        if self.peek().kind == "var":
            context = self.advance().value
            path = self.parse_optional_path()
            return Binding(var=var, document=None, context_var=context,
                           path=path)
        self.error("expected document(...) or a $variable after IN")

    def parse_optional_path(self) -> Path | None:
        """A path continuation starting with / or //, or None."""
        steps: list[Step] = []
        while True:
            if self.accept_symbol("//"):
                descendant = True
            elif self.accept_symbol("/"):
                descendant = False
            else:
                break
            steps.append(self.parse_step(descendant))
        if not steps:
            return None
        for step in steps[:-1]:
            if step.is_attribute:
                self.error("attribute step must be the final step")
        return Path(tuple(steps))

    def parse_step(self, descendant: bool) -> Step:
        is_attribute = self.accept_symbol("@")
        token = self.peek()
        if token.is_symbol("*"):
            self.advance()
            name = "*"
        elif token.kind in ("name", "keyword"):
            self.advance()
            name = token.value
        else:
            self.error("expected a step name")
        predicates: list[Predicate] = []
        while self.accept_symbol("["):
            predicates.append(self.parse_predicate())
        if is_attribute and predicates:
            self.error("attribute steps cannot carry predicates")
        return Step(name=name, descendant=descendant,
                    is_attribute=is_attribute,
                    predicates=tuple(predicates))

    def parse_predicate(self) -> Predicate | PositionPredicate:
        token = self.peek()
        if token.kind == "number":
            self.advance()
            position = int(float(token.value))
            if position < 1:
                self.error("positional predicates are 1-based")
            self.expect_symbol("]")
            return PositionPredicate(position)
        on_attribute = self.accept_symbol("@")
        token = self.peek()
        if token.kind not in ("name", "keyword"):
            self.error("expected a predicate target name")
        self.advance()
        name = token.value
        self.expect_symbol("=")
        value_token = self.peek()
        if value_token.kind != "string":
            self.error("predicate value must be a quoted string")
        self.advance()
        self.expect_symbol("]")
        return Predicate(name=name, value=value_token.value,
                         on_attribute=on_attribute)

    # -- conditions ---------------------------------------------------------------

    def parse_or(self) -> Condition:
        items = [self.parse_and()]
        while self.accept_keyword("or"):
            items.append(self.parse_and())
        return items[0] if len(items) == 1 else BoolOr(tuple(items))

    def parse_and(self) -> Condition:
        items = [self.parse_not()]
        while self.accept_keyword("and"):
            items.append(self.parse_not())
        return items[0] if len(items) == 1 else BoolAnd(tuple(items))

    def parse_not(self) -> Condition:
        if self.accept_keyword("not"):
            return BoolNot(self.parse_not())
        return self.parse_atom()

    def parse_atom(self) -> Condition:
        if self.accept_keyword("contains"):
            return self.parse_contains()
        if self.accept_keyword("seqcontains"):
            return self.parse_seqcontains()
        if self.peek().is_symbol("("):
            self.advance()
            inner = self.parse_or()
            self.expect_symbol(")")
            return inner
        left = self.parse_operand()
        op_token = self.peek()
        if op_token.kind == "symbol" and op_token.value in _COMPARE_OPS:
            self.advance()
            right = self.parse_operand()
            return Compare(op=op_token.value, left=left, right=right)
        if op_token.is_keyword("before") or op_token.is_keyword("after"):
            self.advance()
            if not isinstance(left, VarPath):
                self.error(f"{op_token.value.upper()} compares element "
                           f"paths, not literals")
            right = self.parse_operand()
            if not isinstance(right, VarPath):
                self.error(f"{op_token.value.upper()} compares element "
                           f"paths, not literals")
            return OrderCompare(op=op_token.value, left=left, right=right)
        self.error("expected a comparison operator")

    def parse_contains(self) -> Contains:
        self.expect_symbol("(")
        target = self.parse_varpath()
        self.expect_symbol(",")
        phrase_token = self.peek()
        if phrase_token.kind != "string":
            self.error("contains() expects a quoted keyword phrase")
        self.advance()
        scope: str | int = "node"
        if self.accept_symbol(","):
            scope_token = self.peek()
            if scope_token.is_keyword("any"):
                self.advance()
                scope = "any"
            elif scope_token.kind == "number":
                self.advance()
                scope = int(float(scope_token.value))
            else:
                self.error("contains() scope must be `any` or a number")
        self.expect_symbol(")")
        return Contains(target=target, phrase=phrase_token.value,
                        scope=scope)

    def parse_seqcontains(self) -> SeqContains:
        self.expect_symbol("(")
        target = self.parse_varpath()
        self.expect_symbol(",")
        motif_token = self.peek()
        if motif_token.kind != "string":
            self.error("seqcontains() expects a quoted motif")
        self.advance()
        self.expect_symbol(")")
        if not motif_token.value.strip():
            self.error("seqcontains() motif must be non-empty")
        return SeqContains(target=target, motif=motif_token.value)

    def parse_operand(self) -> Operand:
        token = self.peek()
        if token.kind == "var":
            return self.parse_varpath()
        if token.kind == "string":
            self.advance()
            return LiteralOperand(token.value)
        if token.kind == "number":
            self.advance()
            return LiteralOperand(float(token.value))
        self.error("expected a $variable path or a literal")

    def parse_varpath(self) -> VarPath:
        token = self.peek()
        if token.kind != "var":
            self.error("expected a $variable")
        var = self.advance().value
        path = self.parse_optional_path()
        return VarPath(var=var, path=path)

    # -- return clause ----------------------------------------------------------------

    def parse_return_item(self) -> ReturnItem:
        token = self.peek()
        if token.is_symbol("<"):
            return ReturnItem(constructor=self.parse_constructor())
        if token.kind == "var":
            # either `$Alias = $a//x` or a bare `$a//x`
            var = self.advance().value
            if self.accept_symbol("="):
                value = self.parse_varpath()
                return ReturnItem(value=value, alias=var)
            path = self.parse_optional_path()
            return ReturnItem(value=VarPath(var=var, path=path))
        self.error("expected a return item ($var path, $Alias = $var path "
                   "or an <element> constructor)")

    # -- element constructors -----------------------------------------------------

    def parse_constructor(self) -> Constructor:
        self.expect_symbol("<")
        token = self.peek()
        if token.kind not in ("name", "keyword"):
            self.error("expected an element name after <")
        tag = self.advance().value
        attributes: list[tuple[str, object]] = []
        while True:
            token = self.peek()
            if token.is_symbol(">") or token.is_symbol("/"):
                break
            if token.kind not in ("name", "keyword"):
                self.error("expected an attribute name in constructor")
            name = self.advance().value
            self.expect_symbol("=")
            value_token = self.peek()
            if value_token.kind == "string":
                self.advance()
                raw = value_token.value.strip()
                if raw.startswith("{") and raw.endswith("}"):
                    # attribute value is an embedded expression:
                    # re-lex the inside as a varpath
                    inner = _Parser(tokenize(raw[1:-1]))
                    varpath = inner.parse_varpath()
                    if inner.peek().kind != "end":
                        self.error(
                            f"bad embedded expression in attribute {name}")
                    attributes.append((name, varpath))
                else:
                    attributes.append((name, value_token.value))
            elif value_token.is_symbol("{"):
                self.advance()
                attributes.append((name, self.parse_varpath()))
                self.expect_symbol("}")
            else:
                self.error(f"attribute {name} needs a quoted value or "
                           f"{{ $var path }}")
        if self.accept_symbol("/"):
            self.expect_symbol(">")
            return Constructor(tag=tag, attributes=tuple(attributes))
        self.expect_symbol(">")
        children: list = []
        while True:
            token = self.peek()
            if token.is_symbol("<"):
                if self.tokens[self.pos + 1].is_symbol("/"):
                    break  # closing tag
                children.append(self.parse_constructor())
            elif token.is_symbol("{"):
                self.advance()
                children.append(self.parse_varpath())
                self.expect_symbol("}")
            else:
                self.error("constructor content must be nested elements "
                           "or { $var path } expressions")
        self.expect_symbol("<")
        self.expect_symbol("/")
        close_token = self.peek()
        if close_token.kind not in ("name", "keyword"):
            self.error("expected closing tag name")
        self.advance()
        if close_token.value != tag:
            self.error(f"mismatched constructor tags <{tag}> vs "
                       f"</{close_token.value}>")
        self.expect_symbol(">")
        return Constructor(tag=tag, attributes=tuple(attributes),
                           children=tuple(children))

    def expect_end(self) -> None:
        if self.peek().kind != "end":
            self.error("unexpected trailing content")
