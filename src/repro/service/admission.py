"""Admission control for the query service.

A warehouse node that accepts every connection melts the moment
traffic exceeds its backend's capacity — the waiting requests pile up
behind the SQLite lock and *everyone* times out. Two guards keep the
node answering:

* :class:`AdmissionController` — a hard cap on concurrently executing
  requests. Over the cap the service answers ``503`` immediately
  (with ``Retry-After``) instead of queueing; a fast rejection is the
  load-shedding contract that keeps tail latency bounded for the
  requests that *are* admitted.
* :class:`RateLimiter` — a token bucket per client identity
  (``X-Client-Id`` header, else the peer address). Sustained rate
  above ``rate`` drains the bucket and the client sees ``429`` until
  it backs off; short bursts up to ``burst`` pass. Per-client (not
  global) so one greedy script cannot starve the other biologists.

Both are plain ``threading`` primitives — one lock + float per bucket,
one semaphore for the in-flight cap — cheap enough to sit in front of
every request.
"""

from __future__ import annotations

import threading
import time
from typing import Callable


class TokenBucket:
    """One client's budget: ``rate`` tokens/s refill, ``burst`` cap."""

    __slots__ = ("rate", "burst", "_tokens", "_refilled_at", "_lock")

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic):
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._refilled_at = clock()
        self._lock = threading.Lock()

    def allow(self, now: float, amount: float = 1.0) -> bool:
        """Take ``amount`` tokens if available; refill lazily."""
        with self._lock:
            elapsed = now - self._refilled_at
            if elapsed > 0:
                self._tokens = min(self.burst,
                                   self._tokens + elapsed * self.rate)
                self._refilled_at = now
            if self._tokens >= amount:
                self._tokens -= amount
                return True
            return False


class RateLimiter:
    """Per-client token buckets; ``rate <= 0`` disables limiting.

    The bucket table is bounded (``max_clients``): when a flood of
    distinct client ids would grow it past the cap, the oldest-created
    half is dropped — a dropped client merely restarts with a full
    bucket, so the failure mode of the bound is *generosity*, never a
    false 429.
    """

    def __init__(self, rate: float, burst: float | None = None,
                 clock: Callable[[], float] = time.monotonic,
                 max_clients: int = 10_000):
        self.rate = rate
        self.burst = burst if burst is not None else max(1.0, 2.0 * rate)
        self._clock = clock
        self.max_clients = max_clients
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def allow(self, client: str) -> bool:
        """True when ``client`` may proceed now."""
        if self.rate <= 0:
            return True
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                if len(self._buckets) >= self.max_clients:
                    for stale in list(self._buckets)[
                            :self.max_clients // 2]:
                        del self._buckets[stale]
                bucket = self._buckets[client] = TokenBucket(
                    self.rate, self.burst, clock=self._clock)
        return bucket.allow(now)


def decide(rate_limiter: "RateLimiter",
           controller: "AdmissionController",
           client: str) -> tuple[bool, str | None]:
    """Evaluate both gates for one request, in rejection-cost order.

    The token bucket is checked first — a rate-limited client must not
    consume an in-flight slot just to be told 429. Returns
    ``(admitted, refusal)`` where ``refusal`` is ``"rate_limit"``
    (answer 429) or ``"capacity"`` (answer 503) when the request is
    shed, else ``None`` — and then the caller owns an in-flight slot
    and must call ``controller.release()``.
    """
    if not rate_limiter.allow(client):
        return False, "rate_limit"
    if not controller.try_admit():
        return False, "capacity"
    return True, None


class AdmissionController:
    """Bounded in-flight requests: admit or reject, never queue."""

    def __init__(self, max_in_flight: int):
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        self.max_in_flight = max_in_flight
        self._semaphore = threading.BoundedSemaphore(max_in_flight)
        self._in_flight = 0
        self._lock = threading.Lock()

    @property
    def in_flight(self) -> int:
        """Currently admitted requests (the service gauge)."""
        with self._lock:
            return self._in_flight

    def try_admit(self) -> bool:
        """Admit without blocking; False means shed this request."""
        if not self._semaphore.acquire(blocking=False):
            return False
        with self._lock:
            self._in_flight += 1
        return True

    def release(self) -> None:
        """Return one admitted request's slot."""
        with self._lock:
            self._in_flight -= 1
        self._semaphore.release()
