"""The always-on query service (``xomatiq serve``).

One long-running process serves a shared warehouse — or a whole
federation — over HTTP/JSON: queries, keyword search, document
reconstruction, health, metrics, stats and harvests, behind admission
control and per-client rate limits. See docs/service.md.
"""

from repro.service.admission import (AdmissionController, RateLimiter,
                                     TokenBucket)
from repro.service.app import (PROMETHEUS_CONTENT_TYPE, QueryService,
                               Response, ServiceConfig, ServiceServer,
                               serve)

__all__ = [
    "AdmissionController",
    "PROMETHEUS_CONTENT_TYPE",
    "QueryService",
    "RateLimiter",
    "Response",
    "ServiceConfig",
    "ServiceServer",
    "TokenBucket",
    "serve",
]
