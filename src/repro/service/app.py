"""The always-on query service: warehouse resources over HTTP/JSON.

Every caller so far constructed a :class:`~repro.engine.Warehouse`
in-process; this module is the long-running counterpart — one shared
warehouse (or a :class:`~repro.federation.FederatedXomatiQ`) behind a
stdlib :class:`~http.server.ThreadingHTTPServer`, speaking the JSON
resource style of the MiST genomics API (SNIPPETS.md): flat records,
explicit counts, machine-readable errors.

Resources (full schemas in docs/service.md)::

    POST /query                 FLWR text -> rows (JSON) or XML
    GET  /keyword?q=...         inverted-index search -> document hits
    GET  /documents/{doc_id}    reconstructed XML document
    GET  /health                tri-state health report (503 on fail)
    GET  /metrics               metrics snapshot (JSON or Prometheus)
    GET  /stats                 table/row counts
    GET  /traces                retained request traces (summaries)
    GET  /traces/{trace_id}     one span tree (JSON, ?format=chrome)
    POST /harvest               hound-harvest a mirror directory

Work endpoints (query/keyword/documents/harvest) pass admission
control — a hard in-flight cap answering ``503`` and per-client token
buckets answering ``429`` (:mod:`repro.service.admission`) — while the
probe endpoints (health/metrics/stats/traces) bypass it so monitoring
still sees an overloaded node. Every request lands in the engine's
structured event log and the ``service.*`` metrics (per-endpoint
request counters and latency histograms), so the same ``GET /metrics``
the scraper polls also describes the service itself.

Every request is traced end to end: the service mints a
:class:`~repro.obs.trace.TraceContext` (honoring a caller-supplied
``X-Request-Id`` when it is safe to echo) and opens a ``request`` root
span that the engine's own spans — planner, scatter-gather shard
subqueries, per-statement SQL — nest under. The finished tree is
offered to a bounded :class:`~repro.obs.TraceStore` (head sampling
plus always-keep for slow and error traces) and served back on
``GET /traces/{id}``; kept trace ids are also attached to the
``service.request_seconds`` histogram as Prometheus exemplars.
``X-Request-Id`` and ``X-Trace-Id`` are echoed on **every** response,
including 429/503 rejections, so a shed request is still correlatable.

The handler pool shares one warehouse: translation hits the (locked)
compiled-query cache, statements serialize on the backend's connection
lock, and on-disk databases run WAL so out-of-process readers coexist
with the service's writes.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.engine import Warehouse
from repro.errors import (
    ReproError,
    ShardUnreachableError,
    StorageError,
    UnknownDocumentError,
)
from repro.obs.trace import TraceContext
from repro.obs.tracestore import (
    TraceStore,
    chrome_trace,
    trace_summary,
    trace_to_dict,
)
from repro.service.admission import (
    AdmissionController,
    RateLimiter,
    decide,
)
from repro.xmlkit import serialize

#: Prometheus text exposition content type (version 0.0.4)
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

JSON_CONTENT_TYPE = "application/json; charset=utf-8"
XML_CONTENT_TYPE = "application/xml; charset=utf-8"

#: endpoints that must answer even when the node sheds load
_UNGATED = frozenset({"health", "metrics", "stats", "traces"})


@dataclass
class ServiceConfig:
    """Operator knobs (docs/service.md documents each)."""

    host: str = "127.0.0.1"
    port: int = 8014
    #: concurrently executing work requests before 503 load-shedding
    max_in_flight: int = 64
    #: sustained requests/second allowed per client id (0 = unlimited)
    rate_limit: float = 0.0
    #: short-burst allowance per client (default: 2 x rate_limit)
    rate_burst: float | None = None
    #: request bodies above this answer 413 (a query is a few KiB)
    max_body_bytes: int = 1_048_576
    #: default / maximum hits per keyword search
    keyword_limit: int = 50
    keyword_limit_max: int = 500
    #: retained finished traces (ring buffer; 0 disables tracing)
    trace_capacity: int = 256
    #: head-sampling rate for routine traces (slow/error always kept)
    trace_sample: float = 1.0
    #: root spans at or over this duration are kept regardless
    trace_slow_ms: float = 500.0
    #: standing-query subscriptions (False disables the endpoints)
    subscriptions: bool = True
    #: delivery-bus worker threads / per-subscriber queue bound
    subscription_workers: int = 2
    subscription_queue_max: int = 64
    #: per-subscription event ring (Last-Event-Id resume window)
    subscription_channel_capacity: int = 256
    #: hard cap on one long-poll / SSE wait (seconds); a held request
    #: occupies an admission slot, so the cap bounds slot occupancy
    subscription_poll_max_s: float = 30.0


@dataclass
class Response:
    """One protocol-independent response (the HTTP layer frames it)."""

    status: int
    payload: object = None            # JSON-able; ignored when body set
    body: bytes | None = None         # pre-encoded (XML, Prometheus)
    content_type: str = JSON_CONTENT_TYPE
    headers: dict = field(default_factory=dict)
    #: when set, the HTTP layer streams these byte chunks instead of a
    #: fixed body (SSE); the connection closes when the iterator ends
    stream: object = None

    def encoded(self) -> bytes:
        """The wire body."""
        if self.body is not None:
            return self.body
        return json.dumps(self.payload, sort_keys=True).encode("utf-8")


class QueryService:
    """Routes service requests onto one shared engine.

    ``engine`` is a :class:`~repro.engine.Warehouse` or a
    :class:`~repro.federation.FederatedXomatiQ`; the service adapts to
    whichever surface it finds (a federation rejects ``/harvest`` and
    requires ``shard`` on document fetches). Protocol-independent so
    tests and benchmarks can drive :meth:`handle` without sockets.
    """

    def __init__(self, engine, config: ServiceConfig | None = None,
                 events=None):
        from repro.obs import EventLog, NullMetrics
        self.engine = engine
        self.config = config or ServiceConfig()
        self.federated = not isinstance(engine, Warehouse) \
            and hasattr(engine, "catalog")
        self.metrics = engine.metrics
        self._metrics_sink = (None if isinstance(self.metrics, NullMetrics)
                              else self.metrics)
        self.events = events if events is not None else \
            getattr(engine, "events", None) or EventLog()
        self.admission = AdmissionController(self.config.max_in_flight)
        self.rate_limiter = RateLimiter(self.config.rate_limit,
                                        self.config.rate_burst)
        if self.config.trace_capacity > 0 \
                and hasattr(engine, "enable_tracing"):
            #: shared with the engine — planner / shard / SQL spans
            #: nest under the per-request root this service opens
            self.tracer = engine.enable_tracing(
                max_spans=self.config.trace_capacity)
            self.trace_store = TraceStore(
                capacity=self.config.trace_capacity,
                sample_rate=self.config.trace_sample,
                slow_ms=self.config.trace_slow_ms)
        else:
            self.tracer = None
            self.trace_store = None
        if self._metrics_sink is not None:
            self._in_flight_gauge = self._metrics_sink.gauge(
                "service.in_flight")
        else:
            self._in_flight_gauge = None
        #: one harvest at a time — concurrent mirror pulls into one
        #: warehouse would interleave release snapshots
        self._harvest_lock = threading.Lock()
        #: standing-query push (warehouse engines only: a federation
        #: has no trigger hub — subscribe per shard instead)
        self.subscriptions = None
        if self.config.subscriptions and not self.federated \
                and isinstance(engine, Warehouse):
            from repro.subscriptions import SubscriptionManager
            self.subscriptions = SubscriptionManager(
                engine,
                workers=self.config.subscription_workers,
                queue_max=self.config.subscription_queue_max,
                channel_capacity=self.config.subscription_channel_capacity)

    # -- request entry ------------------------------------------------------

    def handle(self, method: str, target: str, body: bytes = b"",
               client: str = "", headers=None) -> Response:
        """Route one request; never raises (errors become responses)."""
        started = time.perf_counter()
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        params = {key: values[-1] for key, values
                  in parse_qs(split.query).items()}
        endpoint, tail = self._route(path)
        client_id = (headers or {}).get("X-Client-Id") or client or "-"
        inbound_id = (headers or {}).get("X-Request-Id") or ""
        context = TraceContext.mint(inbound_id)
        # echo the caller's id when it was safe to honor (mint adopted
        # it as the trace id), else the minted id — never raw junk
        request_id = context.trace_id
        gated = endpoint not in _UNGATED and endpoint != "unknown"
        admitted = False
        root = span_cm = None
        if self.tracer is not None:
            span_cm = self.tracer.span("request", context=context,
                                       endpoint=endpoint, method=method,
                                       path=path)
            root = span_cm.__enter__()
        try:
            refusal = None
            if gated:
                admitted, refusal = self._admit(client_id)
            if refusal == "rate_limit":
                response = self._reject(429, "rate limit exceeded",
                                        "rate_limit", client_id,
                                        request_id)
            elif refusal == "capacity":
                response = self._reject(503, "service at capacity",
                                        "capacity", client_id,
                                        request_id)
            else:
                if self._in_flight_gauge is not None and admitted:
                    self._in_flight_gauge.set(self.admission.in_flight)
                response = self._dispatch(endpoint, tail, method,
                                          params, body, headers or {})
        except UnknownDocumentError as exc:
            response = _error(404, exc)
        except ReproError as exc:
            response = _error(400, exc)
        except Exception as exc:   # one bad request must not kill a node
            response = _error(500, exc)
        finally:
            if admitted:
                self.admission.release()
                if self._in_flight_gauge is not None:
                    self._in_flight_gauge.set(self.admission.in_flight)
            if span_cm is not None:
                span_cm.__exit__(None, None, None)
        response.headers.setdefault("X-Request-Id", request_id)
        kept = None
        if root is not None:
            response.headers.setdefault("X-Trace-Id", context.trace_id)
            root.meta["status"] = response.status
            # /traces requests are not offered to the store — the trace
            # CLI polling for traces must not become the newest trace
            if self.trace_store is not None and endpoint != "traces":
                kept = self.trace_store.offer(
                    root, request_id=request_id, endpoint=endpoint,
                    status=response.status,
                    error=response.status >= 500)
        duration_s = time.perf_counter() - started
        self._observe(endpoint, method, path, response.status,
                      duration_s, client_id, request_id,
                      trace_id=context.trace_id if kept is not None
                      else "")
        return response

    def _admit(self, client_id: str) -> tuple[bool, str | None]:
        """Both gates, under an ``admission`` span when tracing — a
        shed request's trace shows *where* it was turned away."""
        if self.tracer is None:
            return decide(self.rate_limiter, self.admission, client_id)
        with self.tracer.span("admission", client=client_id) as span:
            admitted, refusal = decide(self.rate_limiter,
                                       self.admission, client_id)
            if refusal:
                span.meta["refused"] = refusal
            return admitted, refusal

    def close(self) -> None:
        """Release the engine (the server owns it in CLI mode)."""
        if self.subscriptions is not None:
            self.subscriptions.close()
        self.engine.close()

    # -- routing ------------------------------------------------------------

    @staticmethod
    def _route(path: str) -> tuple[str, str]:
        if path == "/documents" or path.startswith("/documents/"):
            return "documents", path[len("/documents/"):]
        if path == "/traces" or path.startswith("/traces/"):
            return "traces", path[len("/traces/"):]
        if path == "/subscriptions" or path.startswith("/subscriptions/"):
            return "subscriptions", path[len("/subscriptions/"):]
        name = path.lstrip("/")
        if name in ("query", "keyword", "health", "metrics", "stats",
                    "harvest"):
            return name, ""
        return "unknown", ""

    def _dispatch(self, endpoint: str, tail: str, method: str,
                  params: dict, body: bytes, headers) -> Response:
        if endpoint == "unknown":
            return _error(404, "no such resource")
        if endpoint == "subscriptions":
            if len(body) > self.config.max_body_bytes:
                return _error(413, "request body too large")
            return self._subscriptions(tail, method, params, body,
                                       headers)
        expected = "POST" if endpoint in ("query", "harvest") else "GET"
        if method != expected:
            return Response(405, {"error": f"{endpoint} expects "
                                           f"{expected}"},
                            headers={"Allow": expected})
        if len(body) > self.config.max_body_bytes:
            return _error(413, "request body too large")
        if endpoint == "query":
            return self._query(_json_body(body), headers)
        if endpoint == "keyword":
            return self._keyword(params)
        if endpoint == "documents":
            return self._document(tail, params)
        if endpoint == "health":
            return self._health()
        if endpoint == "metrics":
            return self._metrics(params)
        if endpoint == "traces":
            return self._traces(tail, params)
        if endpoint == "stats":
            payload = self.engine.stats()
            optimizer = getattr(self.engine, "optimizer_stats", None)
            if optimizer is not None:
                # federated engines expose the cost-based optimizer's
                # statistics-catalog state alongside warehouse counts
                payload = {**payload, "optimizer": optimizer()}
            return Response(200, payload)
        return self._harvest(_json_body(body))

    # -- resources ----------------------------------------------------------

    def _query(self, request: dict, headers=None) -> Response:
        text = request.get("query")
        if not isinstance(text, str) or not text.strip():
            return _error(400, 'body must carry a "query" string')
        fmt = request.get("format", "rows")
        if fmt not in ("rows", "xml"):
            return _error(400, f'unknown format {fmt!r} '
                               '(expected "rows" or "xml")')
        mode = request.get("mode", "partial")
        if mode not in ("strict", "partial"):
            return _error(400, f'unknown mode {mode!r} '
                               '(expected "strict" or "partial")')
        deadline_s = None
        raw_deadline = (headers or {}).get("X-Deadline-Ms")
        if raw_deadline:
            try:
                deadline_s = float(raw_deadline) / 1000.0
            except ValueError:
                return _error(400, "X-Deadline-Ms must be a number "
                                   "of milliseconds")
            if deadline_s <= 0:
                return _error(400, "X-Deadline-Ms must be positive")
        if self.federated:
            # the deadline propagates into per-shard task timeouts;
            # stragglers past it are interrupted (docs/robustness.md)
            result = self.engine.query(text, deadline_s=deadline_s)
        else:
            result = self.engine.query(text)
        missing = list(getattr(result, "failed_shards", []))
        if not result.complete and mode == "strict":
            # strict callers would rather retry than act on a partial
            # answer; Retry-After matches the breaker cooldown — by
            # then the shard has either probed healthy or stayed open
            if self._metrics_sink is not None:
                self._metrics_sink.inc("service.strict_refusals")
            return Response(503, {
                "error": "partial results refused (mode=strict)",
                "reason": "degraded",
                "missing_shards": missing,
                "warnings": list(result.warnings),
            }, headers={"Retry-After": str(self._retry_after_s())})
        degraded_headers = {}
        if not result.complete:
            degraded_headers["X-Partial-Results"] = "true"
            if self._metrics_sink is not None:
                self._metrics_sink.inc("service.partial_responses")
        if fmt == "xml":
            return Response(200, body=result.to_xml().encode("utf-8"),
                            content_type=XML_CONTENT_TYPE,
                            headers=degraded_headers)
        return Response(200, {
            "columns": result.columns,
            "variables": result.variables,
            "row_count": len(result),
            "complete": result.complete,
            "partial": not result.complete,
            "missing_shards": missing,
            "warnings": list(result.warnings),
            "rows": [_row_record(row) for row in result.rows],
        }, headers=degraded_headers)

    def _retry_after_s(self) -> int:
        """Strict-mode 503s advise retrying after the federation's
        breaker cooldown (rounded up; at least 1 s)."""
        policy = getattr(getattr(self.engine, "executor", None),
                         "policy", None)
        if policy is None:
            return 1
        return max(1, int(-(-policy.breaker_cooldown_s // 1)))

    def _keyword(self, params: dict) -> Response:
        phrase = params.get("q", "")
        if not phrase.strip():
            return _error(400, 'provide search terms via "?q="')
        try:
            limit = int(params.get("limit", self.config.keyword_limit))
        except ValueError:
            return _error(400, '"limit" must be an integer')
        limit = max(1, min(limit, self.config.keyword_limit_max))
        hits = self.engine.keyword_search(
            phrase, source=params.get("source"), limit=limit)
        return Response(200, {"query": phrase, "limit": limit,
                              "count": len(hits), "results": hits})

    def _document(self, tail: str, params: dict) -> Response:
        if not tail or not tail.isdigit():
            return _error(400, "document path must be "
                               "/documents/{doc_id}")
        doc_id = int(tail)
        probe = "SELECT doc_id FROM documents WHERE doc_id = ?"
        if self.federated:
            shard = params.get("shard")
            if not shard:
                # resolve the owning shard from the catalog (keyword
                # hits still carry ?shard= as an explicit override)
                shard = self.engine.find_document_shard(doc_id)
                if shard is None:
                    return _error(404, f"no document with doc_id "
                                       f"{doc_id} on any reachable "
                                       f"shard")
            # the shard's first healthy backend answers — replicas
            # hold the same documents as their primary
            warehouse = rows = None
            for backend in self.engine.catalog.backends_for(shard):
                try:
                    candidate = self.engine.catalog.warehouse(backend)
                    rows = candidate.backend.execute(probe, (doc_id,))
                except (ShardUnreachableError, StorageError):
                    continue
                warehouse = candidate
                break
            if warehouse is None:
                return _error(404, f"shard {shard!r} has no reachable "
                                   f"backend")
        else:
            warehouse = self.engine
            rows = warehouse.backend.execute(probe, (doc_id,))
        if not rows:
            return _error(404, f"no document with doc_id {doc_id}")
        document = warehouse.fetch_document(doc_id)
        return Response(200, body=serialize(document).encode("utf-8"),
                        content_type=XML_CONTENT_TYPE)

    def _health(self) -> Response:
        report = self.engine.health()
        status = 503 if report["status"] == "fail" else 200
        return Response(status, report)

    def _metrics(self, params: dict) -> Response:
        if params.get("format") == "prometheus":
            text = self.metrics.render_prometheus()
            return Response(200, body=text.encode("utf-8"),
                            content_type=PROMETHEUS_CONTENT_TYPE)
        return Response(200, self.metrics.snapshot())

    def _traces(self, tail: str, params: dict) -> Response:
        if self.trace_store is None:
            return _error(404, "tracing is disabled on this node "
                               "(trace_capacity = 0)")
        if tail:
            record = self.trace_store.get(tail)
            if record is None:
                return _error(404, f"no retained trace {tail} (the "
                                   "store is bounded; it may have been "
                                   "evicted or sampled out)")
            fmt = params.get("format", "json")
            if fmt == "chrome":
                return Response(200, chrome_trace(record))
            if fmt != "json":
                return _error(400, f'unknown format {fmt!r} '
                                   '(expected "json" or "chrome")')
            return Response(200, trace_to_dict(record))
        try:
            limit = int(params["limit"]) if "limit" in params else None
        except ValueError:
            return _error(400, '"limit" must be an integer')
        records = self.trace_store.records(limit)
        return Response(200, {
            "count": len(records),
            "offered": self.trace_store.offered,
            "kept": self.trace_store.kept,
            "capacity": self.trace_store.capacity,
            "traces": [trace_summary(record) for record in records],
        })

    def _harvest(self, request: dict) -> Response:
        if self.federated:
            return _error(400, "harvest is a warehouse operation; "
                               "run it per shard")
        repo = request.get("repo")
        if not isinstance(repo, str) or not repo:
            return _error(400, 'body must carry a "repo" mirror '
                               'directory')
        if not self._harvest_lock.acquire(blocking=False):
            return Response(409, {"error": "a harvest is already "
                                           "running"})
        try:
            from repro.datahounds.transport import DirectoryRepository
            report = self.engine.harvest(
                DirectoryRepository(repo),
                sources=request.get("sources"),
                quarantine=bool(request.get("quarantine", False)),
                retries=request.get("retries"),
                fail_fast=bool(request.get("fail_fast", False)))
        finally:
            self._harvest_lock.release()
        payload = {
            "ok": report.ok,
            "documents_loaded": report.documents_loaded,
            "reports": {
                source: {
                    "release": load.release,
                    "documents_loaded": load.documents_loaded,
                    "added": len(load.plan.added),
                    "updated": len(load.plan.updated),
                    "removed": len(load.plan.removed),
                    "unchanged": len(load.plan.unchanged),
                    "quarantined": len(load.quarantined),
                } for source, load in report.reports.items()},
            "failures": {
                source: {"error": failure.error,
                         "type": failure.error_type}
                for source, failure in report.failures.items()},
        }
        return Response(200 if report.ok else 502, payload)

    # -- subscriptions ------------------------------------------------------

    def _subscriptions(self, tail: str, method: str, params: dict,
                       body: bytes, headers) -> Response:
        """The push surface (docs/subscriptions.md):

        * ``POST /subscriptions``               create (FLWR body)
        * ``GET  /subscriptions``               list registrations
        * ``GET  /subscriptions/{id}/events``   long-poll or SSE tail
        * ``DELETE /subscriptions/{id}``        cancel

        All of it is admission-gated like any other work endpoint; a
        long-poll/SSE wait holds its admission slot, so waits are
        clamped to ``subscription_poll_max_s``.
        """
        if self.subscriptions is None:
            return _error(404, "subscriptions are disabled on this "
                               "node (federated engine or "
                               "subscriptions=False)")
        if not tail:
            if method == "POST":
                return self._subscription_create(_json_body(body))
            if method == "GET":
                return Response(200, {
                    "count": len(self.subscriptions.subscriptions()),
                    "subscriptions": [
                        sub.as_record() for sub
                        in self.subscriptions.subscriptions()],
                })
            return Response(405, {"error": "subscriptions expects "
                                           "POST or GET"},
                            headers={"Allow": "POST, GET"})
        if tail.endswith("/events"):
            sub_id = tail[:-len("/events")]
            if method != "GET":
                return Response(405, {"error": "events expects GET"},
                                headers={"Allow": "GET"})
            return self._subscription_events(sub_id, params, headers)
        if "/" in tail:
            return _error(404, "subscription paths are "
                               "/subscriptions/{id} and "
                               "/subscriptions/{id}/events")
        if method == "DELETE":
            if not self.subscriptions.unsubscribe(tail):
                return _error(404, f"no subscription {tail}")
            return Response(200, {"id": tail, "cancelled": True})
        if method == "GET":
            subscription = self.subscriptions.get(tail)
            if subscription is None:
                return _error(404, f"no subscription {tail}")
            return Response(200, subscription.as_record())
        return Response(405, {"error": "subscription expects GET or "
                                       "DELETE"},
                        headers={"Allow": "GET, DELETE"})

    def _subscription_create(self, request: dict) -> Response:
        text = request.get("query")
        if not isinstance(text, str) or not text.strip():
            return _error(400, 'body must carry a "query" string')
        policy = request.get("policy", "coalesce")
        from repro.subscriptions import POLICIES
        if policy not in POLICIES:
            return _error(400, f"unknown policy {policy!r} (expected "
                               f"one of {', '.join(POLICIES)})")
        persist = bool(request.get("persist", True))
        subscription = self.subscriptions.subscribe(
            text, policy=policy, persist=persist)
        if self._metrics_sink is not None:
            self._metrics_sink.inc("service.subscriptions_created")
        self.events.emit("service.subscription_created",
                         sub_id=subscription.id, policy=policy)
        return Response(201, subscription.as_record())

    def _subscription_events(self, sub_id: str, params: dict,
                             headers) -> Response:
        subscription = self.subscriptions.get(sub_id)
        if subscription is None:
            return _error(404, f"no subscription {sub_id}")
        channel = subscription.channel
        if channel is None:
            return _error(400, f"subscription {sub_id} delivers to an "
                               f"in-process callback, not a channel")
        after = 0
        raw_after = params.get("after") \
            or (headers or {}).get("Last-Event-Id")
        if raw_after:
            try:
                after = int(raw_after)
            except ValueError:
                return _error(400, "Last-Event-Id / ?after= must be an "
                                   "integer event id")
        try:
            timeout = float(params.get("timeout", 0.0))
            limit = int(params.get("limit", 100))
        except ValueError:
            return _error(400, '"timeout" and "limit" must be numbers')
        timeout = max(0.0, min(timeout,
                               self.config.subscription_poll_max_s))
        if params.get("stream") == "sse":
            return self._subscription_sse(sub_id, channel, after, params)
        events, last_id = channel.poll(after=after, timeout=timeout,
                                       limit=limit)
        return Response(200, {
            "id": sub_id,
            "events": [{"id": event_id, "delta": payload}
                       for event_id, payload in events],
            "next": last_id,
            "lost_events": channel.lost,
        })

    def _subscription_sse(self, sub_id: str, channel, after: int,
                          params: dict) -> Response:
        """``text/event-stream`` tail: numbered ``id:``/``data:``
        frames, comment heartbeats while idle, bounded by
        ``max_events``/``max_seconds`` (and always by the poll cap per
        wait) so a stream cannot hold its slot forever."""
        from repro.subscriptions import payload_json
        try:
            max_events = int(params.get("max_events", 0))
            max_seconds = float(params.get(
                "max_seconds", self.config.subscription_poll_max_s))
        except ValueError:
            return _error(400, '"max_events" and "max_seconds" must be '
                               'numbers')
        max_seconds = max(0.1, min(max_seconds,
                                   self.config.subscription_poll_max_s))

        def frames():
            yield b"retry: 1000\n\n"
            cursor = after
            sent = 0
            deadline = time.perf_counter() + max_seconds
            while time.perf_counter() < deadline:
                wait = min(1.0, max(0.0,
                                    deadline - time.perf_counter()))
                events, last_id = channel.poll(after=cursor,
                                               timeout=wait, limit=100)
                if not events:
                    yield b": keep-alive\n\n"
                    continue
                for event_id, payload in events:
                    cursor = event_id
                    sent += 1
                    data = payload_json(payload)
                    yield (f"id: {event_id}\n"
                           f"data: {data}\n\n").encode("utf-8")
                    if max_events and sent >= max_events:
                        return
            # explicit end-of-window marker so tails distinguish a
            # server-closed window from a dead connection
            yield b"event: end\ndata: {}\n\n"

        return Response(200, stream=frames(),
                        content_type="text/event-stream; charset=utf-8",
                        headers={"Cache-Control": "no-store",
                                 "X-Subscription-Id": sub_id})

    # -- observability ------------------------------------------------------

    def _reject(self, status: int, message: str, reason: str,
                client: str, request_id: str = "") -> Response:
        if self._metrics_sink is not None:
            self._metrics_sink.inc("service.rejected", reason=reason)
        self.events.emit("service.rejected", severity="warning",
                         reason=reason, client=client,
                         request_id=request_id)
        headers = {"Retry-After": "1"} if status in (429, 503) else {}
        return Response(status, {"error": message, "reason": reason,
                                 "request_id": request_id},
                        headers=headers)

    def _observe(self, endpoint: str, method: str, path: str,
                 status: int, duration_s: float, client: str,
                 request_id: str = "", trace_id: str = "") -> None:
        if self._metrics_sink is not None:
            self._metrics_sink.inc("service.requests",
                                   endpoint=endpoint, status=status)
            # a kept trace id rides along as the histogram exemplar, so
            # a slow bucket links straight to the trace that filled it
            self._metrics_sink.observe("service.request_seconds",
                                       duration_s, endpoint=endpoint,
                                       exemplar=trace_id or None)
        self.events.emit("service.request",
                         severity="warning" if status >= 500 else "info",
                         method=method, path=path, status=status,
                         duration_ms=round(duration_s * 1000.0, 3),
                         client=client, request_id=request_id)


def _row_record(row) -> dict:
    """One result row as a JSON record; federated bindings keep their
    shard so the client can fetch the document."""
    bindings = {}
    for variable, node in row.bindings.items():
        record = {"doc_id": node.doc_id, "node_id": node.node_id}
        shard = getattr(node, "shard", None)
        if shard is not None:
            record["shard"] = shard
        bindings[variable] = record
    return {"bindings": bindings, "values": row.values}


def _json_body(body: bytes) -> dict:
    if not body:
        return {}
    try:
        parsed = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ReproError(f"request body is not valid JSON: {exc}") \
            from None
    if not isinstance(parsed, dict):
        raise ReproError("request body must be a JSON object")
    return parsed


def _error(status: int, error) -> Response:
    return Response(status, {"error": str(error),
                             "type": type(error).__name__
                             if isinstance(error, Exception) else
                             "error"})


# -- the HTTP layer ---------------------------------------------------------


class _Handler(BaseHTTPRequestHandler):
    """Frames :meth:`QueryService.handle` responses onto sockets."""

    server_version = "xomatiq"
    #: HTTP/1.1 keeps benchmark client connections alive between
    #: requests (Content-Length is always sent, so framing is sound)
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:          # noqa: N802 - stdlib contract
        self._respond(b"")

    def do_POST(self) -> None:         # noqa: N802 - stdlib contract
        try:
            length = int(self.headers.get("Content-Length", 0) or 0)
        except ValueError:
            length = 0
        self._respond(self.rfile.read(length) if length > 0 else b"")

    def do_DELETE(self) -> None:       # noqa: N802 - stdlib contract
        self._respond(b"")

    def _respond(self, body: bytes) -> None:
        service: QueryService = self.server.service
        response = service.handle(
            self.command, self.path, body=body,
            client=self.client_address[0], headers=self.headers)
        if response.stream is not None:
            self._stream(response)
            return
        encoded = response.encoded()
        try:
            self.send_response(response.status)
            self.send_header("Content-Type", response.content_type)
            self.send_header("Content-Length", str(len(encoded)))
            for name, value in response.headers.items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(encoded)
        except (BrokenPipeError, ConnectionResetError):
            # the client gave up while we were answering — routine for
            # long-poll subscribers; the work is done, drop the reply
            self.close_connection = True

    def _stream(self, response: Response) -> None:
        """Unframed streaming (SSE): no Content-Length, connection
        closes when the iterator ends or the client hangs up."""
        self.close_connection = True
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Connection", "close")
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()
        try:
            for chunk in response.stream:
                self.wfile.write(chunk)
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass   # client went away mid-stream; nothing to clean up

    def log_message(self, format: str, *args) -> None:
        """Silenced — requests land in the structured event log."""


class ServiceServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`QueryService`.

    ``serve_forever`` runs until :meth:`shutdown`; ``close`` also
    releases the engine. ``daemon_threads`` keeps a hung handler from
    blocking process exit — graceful drain is the in-flight cap's job.
    """

    daemon_threads = True
    allow_reuse_address = True
    #: socketserver's default listen backlog is 5; a burst of clients
    #: connecting at once overflows it and the kernel resets the
    #: overflow connections before a handler ever sees them. Admission
    #: control is the layer that sheds load — the backlog just has to
    #: be deep enough that the decision is ours, not the kernel's.
    request_queue_size = 128

    def __init__(self, service: QueryService,
                 address: tuple[str, int] | None = None):
        self.service = service
        config = service.config
        super().__init__(address or (config.host, config.port), _Handler)

    @property
    def url(self) -> str:
        """The server's base URL (port 0 resolves after bind)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def close(self) -> None:
        """Stop accepting, close the socket, release the engine."""
        self.shutdown()
        self.server_close()
        self.service.close()


def serve(engine, config: ServiceConfig | None = None) -> ServiceServer:
    """Bind a server for ``engine`` (not yet serving — the caller runs
    ``serve_forever``, usually on a background thread)."""
    return ServiceServer(QueryService(engine, config=config))
