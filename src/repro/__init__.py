"""XomatiQ / Data Hounds reproduction (ICDE 2003).

Public API lives here; see README.md for a tour. The short version::

    from repro import Warehouse
    from repro.synth import build_corpus

    wh = Warehouse()                      # in-memory SQLite warehouse
    wh.load_corpus(build_corpus(seed=7))  # Data Hounds: fetch+shred+load
    result = wh.query('FOR $a IN document("hlx_enzyme.DEFAULT") ... ')
    print(result.to_table())
"""

__version__ = "1.0.0"

from repro.errors import ReproError  # noqa: F401

__all__ = [
    "FederatedXomatiQ",
    "ProfileReport",
    "QueryResult",
    "QuerySubscription",
    "ReproError",
    "ShardCatalog",
    "Tracer",
    "Warehouse",
    "XomatiQ",
    "__version__",
]

_LAZY_EXPORTS = {
    "Warehouse": ("repro.engine", "Warehouse"),
    "XomatiQ": ("repro.engine", "XomatiQ"),
    "QueryResult": ("repro.results.resultset", "QueryResult"),
    "QuerySubscription": ("repro.subscriptions", "QuerySubscription"),
    "Tracer": ("repro.obs", "Tracer"),
    "ProfileReport": ("repro.obs", "ProfileReport"),
    "FederatedXomatiQ": ("repro.federation", "FederatedXomatiQ"),
    "ShardCatalog": ("repro.federation", "ShardCatalog"),
}


def __getattr__(name):
    # Facade classes sit at the top of the dependency chain; import them
    # lazily so substrate modules stay importable on their own.
    target = _LAZY_EXPORTS.get(name)
    if target is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib
    module = importlib.import_module(target[0])
    return getattr(module, target[1])
