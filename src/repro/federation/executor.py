"""Scatter-gather execution of a federated plan.

Shard subqueries run concurrently on a thread pool (each shard's
warehouse is its own engine; the sqlite backend serializes statements
on a per-connection lock, so parallelism buys exactly the cross-shard
overlap the paper's single-RDBMS design could not). The coordinator
then

* unions each subplan's bindings across its shards (a document lives
  on exactly one shard, so the union is exact),
* hash-joins units on the shipped cross-unit key values — existential
  over value pairs, the same semantics the monolithic translator's SQL
  join has,
* deduplicates binding combinations across DNF disjuncts and sorts
  them by per-variable ``(shard position, doc_id, node_id)`` — with
  contiguous partitioned loading this reproduces the monolithic
  warehouse's binding order, which is what makes federated results
  byte-identical to single-warehouse results,
* re-assembles RETURN values (and constructor elements) from the
  shipped projections through the same helpers the monolithic
  executor uses.

Cost-based plans add a **two-phase mode**: subplans marked as
semi-join *builds* run first; their distinct join-key values become a
filter shipped into each *probe* subplan's shard subqueries — a
``ValueIn`` conjunct (real parameterized SQL ``IN``) below the IN-list
cutoff, a Bloom-filter check above it — so shards only return bindings
that can possibly join. Bloom false positives are removed by the
coordinator hash-join, which keeps optimized answers byte-identical to
the rule-based (and monolithic) ones. When a build-side shard fails,
its probes degrade to the unfiltered scatter with an explicit warning
rather than risking dropped rows.

A shard that cannot be opened or fails mid-statement costs its rows,
not the query: the executor answers from the surviving shards and says
so in ``result.warnings`` (the same degrade-with-warning philosophy as
harvest quarantine). Planner/user errors still raise.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.errors import (
    ShardUnreachableError,
    StorageError,
    UnknownDocumentError,
)
from repro.federation.costs import (
    INLIST_CUTOFF,
    ROW_OVERHEAD_BYTES,
    BloomFilter,
)
from repro.federation.planner import (
    FederatedPlan,
    SemiJoinPushdown,
    ShardSubPlan,
)
from repro.results.resultset import (
    BoundNode,
    QueryResult,
    ResultRow,
    unique_columns,
)
from repro.translator.execute import _build_element
from repro.xmlkit.serializer import serialize_compact
from repro.xquery.ast import BoolAnd, ValueIn, VarPath

#: failures the query path degrades on — a shard that is gone or whose
#: store is broken; anything else (syntax, semantics, bugs) propagates
DEGRADABLE = (ShardUnreachableError, StorageError)


@dataclass(frozen=True)
class ShardBoundNode(BoundNode):
    """A bound element plus the shard its document lives on (document
    fetch must go back to the right warehouse)."""

    shard: str = ""


@dataclass
class _UnitRow:
    """One shipped binding tuple of one subplan."""

    bindings: dict[str, ShardBoundNode]
    sort_keys: dict[str, tuple]      # var → (shard position, doc, node)
    values: dict[str, list[str]]     # str(varpath) → shipped values


class ScatterGatherExecutor:
    """Runs :class:`FederatedPlan` objects against a shard catalog."""

    def __init__(self, catalog, metrics=None, tracer=None,
                 max_workers: int | None = None, stats=None):
        self.catalog = catalog
        self.metrics = metrics
        self.tracer = tracer
        self.max_workers = max_workers
        #: statistics catalog fed with runtime latency/row observations
        self.stats = stats
        #: injectable sleep honouring ShardSpec.latency_s (simulated
        #: remote-shard round-trips; tests pass a recorder)
        self.sleep = time.sleep

    def execute(self, plan: FederatedPlan) -> QueryResult:
        """Scatter, gather, join, assemble."""
        if self.tracer is None:
            return self._execute(plan, None)
        with self.tracer.span("federated_query", query=plan.text,
                              fanout=plan.fanout) as root:
            result = self._execute(plan, root)
            root.count("result_rows", len(result))
        result.trace = root
        return result

    def _execute(self, plan: FederatedPlan, root) -> QueryResult:
        if self.metrics is not None:
            self.metrics.inc("federation.queries")
            self.metrics.inc("federation.fanout", plan.fanout)
        if plan.route_shard is not None:
            return self._route(plan, root)
        return self._scatter(plan, root)

    # -- single-shard fast path ----------------------------------------------

    def _route(self, plan: FederatedPlan, root) -> QueryResult:
        """Every source lives whole on one shard: hand the original
        query to that shard's engine untouched."""
        shard = plan.route_shard
        if self.tracer is not None and root is not None:
            with self.tracer.span("shard_subquery", parent=root,
                                  shard=shard, route="single") as span:
                return self._route_inner(plan, shard, span)
        return self._route_inner(plan, shard, None)

    def _route_inner(self, plan: FederatedPlan, shard: str,
                     span) -> QueryResult:
        started = time.perf_counter()
        try:
            latency = self.catalog.spec(shard).latency_s
            if latency:
                self.sleep(latency)  # one round-trip, same as scatter
            warehouse = self.catalog.warehouse(shard)
            result = warehouse.xomatiq.query(plan.text, ast=plan.query)
        except DEGRADABLE as exc:
            if span is not None:
                span.meta["error"] = str(exc)
            return self._degraded_result(plan, [self._warn(shard, exc)])
        self._observe_shard(shard, time.perf_counter() - started,
                            len(result.rows), span,
                            sum(_row_bytes(row.values)
                                for row in result.rows))
        for row in result.rows:
            row.bindings = {
                var: ShardBoundNode(doc_id=node.doc_id,
                                    node_id=node.node_id, shard=shard)
                for var, node in row.bindings.items()}
        return result

    # -- scatter-gather -------------------------------------------------------

    def _scatter(self, plan: FederatedPlan, root) -> QueryResult:
        unit_rows: dict[int, list[_UnitRow]] = {
            subplan.index: [] for subplan in plan.subplans}
        warnings: list[str] = []
        self._observe_optimizer(plan, root)

        by_probe: dict[int, SemiJoinPushdown] = {
            semijoin.probe: semijoin for semijoin in plan.semijoins}
        phase_one = [(subplan, None, None) for subplan in plan.subplans
                     if subplan.index not in by_probe]
        failed = self._run_phase(plan, phase_one, unit_rows, warnings,
                                 root)

        phase_two = []
        for subplan in plan.subplans:
            semijoin = by_probe.get(subplan.index)
            if semijoin is None:
                continue
            if semijoin.build in failed:
                # the filter cannot be trusted when part of its build
                # side is missing — scan unfiltered instead of silently
                # dropping probe rows that might still join elsewhere
                warnings.append(
                    f"semi-join filter for {' and '.join(subplan.sources)} "
                    f"unavailable (build side degraded); scanning "
                    f"unfiltered")
                phase_two.append((subplan, None, None))
                continue
            phase_two.append(
                self._filtered_subplan(subplan, semijoin, unit_rows))
        if phase_two:
            self._run_phase(plan, phase_two, unit_rows, warnings, root)

        if self.tracer is not None and root is not None:
            with self.tracer.span("coordinator_join") as span:
                combos = self._gather(plan, unit_rows)
                result = self._assemble(plan, combos)
                span.count("combos", len(combos))
        else:
            combos = self._gather(plan, unit_rows)
            result = self._assemble(plan, combos)
        result.warnings.extend(warnings)
        if warnings and self.metrics is not None:
            self.metrics.inc("federation.partial_results")
        return result

    def _run_phase(self, plan: FederatedPlan, entries, unit_rows,
                   warnings: list[str], root) -> set[int]:
        """Run one phase's ``(subplan, bloom, semijoin mode)`` entries
        across their shards; returns the subplan ids that lost at
        least one shard."""
        tasks = [(subplan, bloom, mode, shard)
                 for subplan, bloom, mode in entries
                 for shard in subplan.shards]
        if not tasks:
            return set()
        if self.max_workers is not None:
            workers = self.max_workers
        else:
            workers = len(tasks)
        if workers > 1 and len(tasks) > 1:
            with ThreadPoolExecutor(
                    max_workers=min(workers, len(tasks)),
                    thread_name_prefix="shard") as pool:
                futures = [pool.submit(self._run_subquery, plan,
                                       subplan, shard, root, bloom,
                                       mode)
                           for subplan, bloom, mode, shard in tasks]
                outcomes = [future.result() for future in futures]
        else:
            outcomes = [self._run_subquery(plan, subplan, shard, root,
                                           bloom, mode)
                        for subplan, bloom, mode, shard in tasks]
        failed: set[int] = set()
        for (subplan, __, ___, shard), (rows, warning) in zip(tasks,
                                                              outcomes):
            if warning is not None:
                warnings.append(warning)
                failed.add(subplan.index)
            else:
                unit_rows[subplan.index].extend(rows)
        return failed

    def _filtered_subplan(self, subplan: ShardSubPlan,
                          semijoin: SemiJoinPushdown, unit_rows):
        """Attach the build side's join-key values to a probe subplan:
        an IN-list rewrite of the subquery below the cutoff (the filter
        runs inside the shard's SQL), a Bloom post-check above it.
        Returns a ``(subplan, bloom, semijoin mode)`` phase entry."""
        values = sorted({value
                        for row in unit_rows[semijoin.build]
                        for value in row.values.get(semijoin.build_key, [])
                        if value})
        if len(values) <= INLIST_CUTOFF:
            if self.metrics is not None:
                self.metrics.inc("federation.semijoin_filters",
                                 mode="inlist")
            atom = ValueIn(target=semijoin.probe_path,
                           values=tuple(values))
            where = subplan.subquery.where
            if where is None:
                conjunction = atom
            elif isinstance(where, BoolAnd):
                conjunction = BoolAnd(items=where.items + (atom,))
            else:
                conjunction = BoolAnd(items=(where, atom))
            subquery = dataclasses.replace(subplan.subquery,
                                           where=conjunction)
            rewritten = dataclasses.replace(subplan, subquery=subquery,
                                            text=str(subquery))
            return rewritten, None, "inlist"
        if self.metrics is not None:
            self.metrics.inc("federation.semijoin_filters", mode="bloom")
        return subplan, (semijoin.probe_key, BloomFilter(values)), "bloom"

    def _run_subquery(self, plan: FederatedPlan, subplan: ShardSubPlan,
                      shard: str, root, bloom=None, mode=None):
        """One (subplan, shard) task; returns ``(rows, warning)``.

        ``bloom`` is a ``(value key, BloomFilter)`` pair: the shipped
        semi-join filter, applied before rows count as shipped (it
        models the filter running at the shard's end of the wire).
        ``mode`` labels the span with the semi-join flavour in play.

        This runs on a pool worker thread, so the shard span is opened
        with an **explicit parent** — the coordinator's
        ``federated_query`` span — because a worker's thread-local span
        stack starts empty and cannot see the coordinator's. The shard
        warehouse shares the federation tracer, so its own ``query``
        span (and every SQL statement record) nests under this one:
        one connected tree from request to statement.
        """
        if self.tracer is not None and root is not None:
            meta = {"shard": shard,
                    "sources": ", ".join(subplan.sources)}
            if mode is not None:
                meta["semijoin"] = mode
            with self.tracer.span("shard_subquery", parent=root,
                                  **meta) as span:
                return self._shard_subquery(plan, subplan, shard,
                                            bloom, span)
        return self._shard_subquery(plan, subplan, shard, bloom, None)

    def _shard_subquery(self, plan: FederatedPlan,
                        subplan: ShardSubPlan, shard: str, bloom, span):
        started = time.perf_counter()
        try:
            latency = self.catalog.spec(shard).latency_s
            if latency:
                # one simulated round-trip per shard subquery; the
                # sleep drops the GIL, so concurrent scatter overlaps
                # the waits exactly as it would overlap network hops
                self.sleep(latency)
            warehouse = self.catalog.warehouse(shard)
            result = warehouse.xomatiq.query(subplan.text,
                                             ast=subplan.subquery)
        except UnknownDocumentError:
            # the shard hosts the source but holds none of its
            # documents (an empty partition slice): zero bindings,
            # not a fault
            return [], None
        except DEGRADABLE as exc:
            if span is not None:
                span.meta["error"] = str(exc)
            return [], self._warn(shard, exc, subplan)
        rows = self._unit_rows(plan, subplan, shard, result)
        if bloom is not None:
            key, shipped_filter = bloom
            kept = [row for row in rows
                    if any(value and value in shipped_filter
                           for value in row.values.get(key, []))]
            if self.metrics is not None:
                self.metrics.inc("federation.rows_pruned",
                                 len(rows) - len(kept))
            rows = kept
        self._observe_shard(shard, time.perf_counter() - started,
                            len(rows), span,
                            sum(_row_bytes(row.values) for row in rows))
        return rows, None

    def _unit_rows(self, plan: FederatedPlan, subplan: ShardSubPlan,
                   shard: str, result: QueryResult) -> list[_UnitRow]:
        """Reshape one shard result into coordinator unit rows."""
        position = {var: self.catalog.shard_position(
            plan.var_source[var], shard) for var in subplan.vars}
        rows: list[_UnitRow] = []
        for row in result.rows:
            bindings: dict[str, ShardBoundNode] = {}
            sort_keys: dict[str, tuple] = {}
            for var in subplan.vars:
                node = row.bindings[var]
                bindings[var] = ShardBoundNode(
                    doc_id=node.doc_id, node_id=node.node_id,
                    shard=shard)
                sort_keys[var] = (position[var], node.doc_id,
                                  node.node_id)
            values = {key: row.values.get(column, [])
                      for key, column in zip(subplan.item_keys,
                                             result.columns)}
            rows.append(_UnitRow(bindings=bindings, sort_keys=sort_keys,
                                 values=values))
        return rows

    # -- coordinator join -----------------------------------------------------

    def _gather(self, plan: FederatedPlan,
                unit_rows: dict[int, list[_UnitRow]]) -> list:
        """Join each disjunct's units, dedupe combinations across
        disjuncts, and order them like the monolithic executor would.

        Returns ``[(var → unit row)]`` sorted by per-variable
        ``(shard position, doc_id, node_id)``.
        """
        accepted: dict[tuple, tuple] = {}
        for disjunct in plan.disjuncts:
            for combo in self._join_disjunct(disjunct, unit_rows):
                var_rows = {var: combo[unit]
                            for var, unit in disjunct.var_unit.items()}
                key = tuple(
                    (var_rows[var].bindings[var].shard,
                     var_rows[var].bindings[var].doc_id,
                     var_rows[var].bindings[var].node_id)
                    for var in plan.variables)
                if key not in accepted:
                    sort_key = tuple(var_rows[var].sort_keys[var]
                                     for var in plan.variables)
                    accepted[key] = (sort_key, var_rows)
        return [var_rows for __, var_rows in
                sorted(accepted.values(), key=lambda item: item[0])]

    def _join_disjunct(self, disjunct,
                       unit_rows: dict[int, list[_UnitRow]]) -> list:
        """All surviving unit-row combinations of one disjunct, as
        ``{subplan id → unit row}`` dicts."""
        var_unit = disjunct.var_unit
        combos: list[dict[int, _UnitRow]] = [{}]
        joined: set[int] = set()
        for unit in disjunct.subplan_ids:
            rows = unit_rows.get(unit, [])
            if not combos or not rows:
                return []
            applicable = [atom for atom in disjunct.atoms
                          if self._applies(atom, var_unit, joined, unit)]
            hash_atom = next(
                (atom for atom in applicable
                 if atom.op == "=" and not atom.negated), None)
            rest = [atom for atom in applicable if atom is not hash_atom]
            if hash_atom is not None:
                probe = self._hash_join(hash_atom, var_unit, unit, rows)
            else:
                probe = lambda combo: rows  # noqa: E731 - cross product
            next_combos = []
            for combo in combos:
                for row in probe(combo):
                    extended = dict(combo)
                    extended[unit] = row
                    if all(self._atom_holds(atom, var_unit, extended)
                           for atom in rest):
                        next_combos.append(extended)
            combos = next_combos
            joined.add(unit)
        return combos

    @staticmethod
    def _applies(atom, var_unit, joined: set[int], unit: int) -> bool:
        """An atom is applied the moment its second unit joins."""
        left, right = var_unit[atom.left.var], var_unit[atom.right.var]
        return ({left, right} <= joined | {unit}
                and unit in (left, right))

    def _hash_join(self, atom, var_unit, unit: int,
                   rows: list[_UnitRow]):
        """Probe function for one equality atom: index the joining
        unit's rows by shipped key value, look prior combos up by the
        other side's values. Empty string values never join — an
        element with no text produces no value row in the monolithic
        SQL join either."""
        if var_unit[atom.left.var] == unit:
            build_key, probe_key = atom.left_key, atom.right_key
        else:
            build_key, probe_key = atom.right_key, atom.left_key
        index: dict[str, list[_UnitRow]] = {}
        for row in rows:
            for value in row.values.get(build_key, []):
                if value:
                    index.setdefault(value, []).append(row)

        def probe(combo: dict[int, _UnitRow]) -> list[_UnitRow]:
            other = var_unit[atom.left.var if probe_key == atom.left_key
                             else atom.right.var]
            candidates: list[_UnitRow] = []
            seen: set[int] = set()
            for value in combo[other].values.get(probe_key, []):
                if not value:
                    continue
                for row in index.get(value, []):
                    if id(row) not in seen:
                        seen.add(id(row))
                        candidates.append(row)
            return candidates

        return probe

    def _atom_holds(self, atom, var_unit,
                    combo: dict[int, _UnitRow]) -> bool:
        """Existential comparison over the two operands' shipped
        values (SQL-join semantics); negation inverts the existence."""
        left = combo[var_unit[atom.left.var]].values.get(
            atom.left_key, [])
        right = combo[var_unit[atom.right.var]].values.get(
            atom.right_key, [])
        holds = any(
            _compare(lv, atom.op, rv)
            for lv in left if lv for rv in right if rv)
        return (not holds) if atom.negated else holds

    # -- output assembly ------------------------------------------------------

    def _assemble(self, plan: FederatedPlan, combos: list) -> QueryResult:
        """Rebuild rows in the monolithic result shape from shipped
        values (constructor items reuse the monolithic executor's
        element builder)."""
        columns = unique_columns([item.output_name
                                  for item in plan.query.returns])
        result = QueryResult(columns=columns,
                             variables=list(plan.variables))
        for var_rows in combos:
            row = ResultRow(bindings={
                var: var_rows[var].bindings[var]
                for var in plan.variables})

            def values_for(varpath: VarPath, __=None) -> list[str]:
                return var_rows[varpath.var].values.get(
                    str(varpath), [])

            for column, item in zip(columns, plan.query.returns):
                if item.constructor is not None:
                    maps = [None] * len(item.constructor.varpaths())
                    element = _build_element(item.constructor, maps,
                                             values_for)
                    row.elements[column] = element
                    row.values[column] = [serialize_compact(element)]
                else:
                    row.values[column] = values_for(item.value)
            result.rows.append(row)
        return result

    def _degraded_result(self, plan: FederatedPlan,
                         warnings: list[str]) -> QueryResult:
        """Empty-but-answering result for a fully lost route."""
        if self.metrics is not None:
            self.metrics.inc("federation.partial_results")
        columns = unique_columns([item.output_name
                                  for item in plan.query.returns])
        return QueryResult(columns=columns,
                           variables=list(plan.variables),
                           warnings=warnings)

    # -- bookkeeping ----------------------------------------------------------

    def _warn(self, shard: str, exc: Exception,
              subplan: ShardSubPlan | None = None) -> str:
        if self.metrics is not None:
            self.metrics.inc("federation.shard_errors", shard=shard)
        sources = (" and ".join(subplan.sources)
                   if subplan is not None else "this query")
        return (f"shard {shard!r} unavailable — results for {sources} "
                f"are partial: {exc}")

    def _observe_optimizer(self, plan: FederatedPlan, root) -> None:
        """Record what the cost-based pass claimed and removed."""
        if not plan.cost_based:
            return
        estimated = round(sum(plan.estimated_rows.values()))
        if self.metrics is not None:
            if plan.estimated_rows:
                self.metrics.inc("federation.estimated_rows", estimated)
            if plan.pruned:
                self.metrics.inc("federation.shards_pruned",
                                 len(plan.pruned))
        if root is not None:
            if plan.estimated_rows:
                root.count("estimated_rows", estimated)
            if plan.pruned:
                root.count("shards_pruned", len(plan.pruned))
            if plan.semijoins:
                root.count("semijoin_filters", len(plan.semijoins))

    def _observe_shard(self, shard: str, seconds: float, rows: int,
                       span, bytes_shipped: int = 0) -> None:
        """Record one finished shard visit on the metrics plane and on
        its (live, worker-opened) ``shard_subquery`` span. The span's
        trace id doubles as the ``federation.shard_seconds`` exemplar,
        tying the latency bucket to a resolvable trace."""
        if self.metrics is not None:
            exemplar = (span.trace_id
                        if span is not None and span.trace_id else None)
            self.metrics.observe("federation.shard_seconds", seconds,
                                 shard=shard, exemplar=exemplar)
            self.metrics.inc("federation.rows_shipped", rows)
            self.metrics.inc("federation.bytes_shipped", bytes_shipped)
        if self.stats is not None:
            self.stats.record_observation(shard, seconds, rows)
        if span is not None:
            span.counters["rows_shipped"] = rows
            span.counters["bytes_shipped"] = bytes_shipped


def _row_bytes(values: dict) -> int:
    """Serialized size estimate of one shipped binding: fixed framing
    plus the value strings (the ``federation.bytes_shipped`` unit)."""
    return ROW_OVERHEAD_BYTES + sum(
        len(value) for items in values.values() for value in items)


_OPS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _compare(left: str, op: str, right: str) -> bool:
    return _OPS[op](left, right)
