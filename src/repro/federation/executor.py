"""Scatter-gather execution of a federated plan.

Shard subqueries run concurrently on a thread pool (each shard's
warehouse is its own engine; the sqlite backend serializes statements
on a per-connection lock, so parallelism buys exactly the cross-shard
overlap the paper's single-RDBMS design could not). The coordinator
then

* unions each subplan's bindings across its shards (a document lives
  on exactly one shard, so the union is exact),
* hash-joins units on the shipped cross-unit key values — existential
  over value pairs, the same semantics the monolithic translator's SQL
  join has,
* deduplicates binding combinations across DNF disjuncts and sorts
  them by per-variable ``(shard position, doc_id, node_id)`` — with
  contiguous partitioned loading this reproduces the monolithic
  warehouse's binding order, which is what makes federated results
  byte-identical to single-warehouse results,
* re-assembles RETURN values (and constructor elements) from the
  shipped projections through the same helpers the monolithic
  executor uses.

Cost-based plans add a **two-phase mode**: subplans marked as
semi-join *builds* run first; their distinct join-key values become a
filter shipped into each *probe* subplan's shard subqueries — a
``ValueIn`` conjunct (real parameterized SQL ``IN``) below the IN-list
cutoff, a Bloom-filter check above it — so shards only return bindings
that can possibly join. Bloom false positives are removed by the
coordinator hash-join, which keeps optimized answers byte-identical to
the rule-based (and monolithic) ones. When a build-side shard fails,
its probes degrade to the unfiltered scatter with an explicit warning
rather than risking dropped rows.

A shard that cannot be opened or fails mid-statement costs its rows,
not the query: the executor answers from the surviving shards and says
so in ``result.warnings`` (the same degrade-with-warning philosophy as
harvest quarantine). Planner/user errors still raise.

**Fault tolerance** (see docs/robustness.md, "Query-path fault
tolerance") upgrades that degradation story from *detect* to *cover*:

* every backend — shard primaries and their replicas — is guarded by a
  :class:`repro.resilience.CircuitBreaker`, so a dead backend is
  skipped instantly instead of paying a connection attempt per query;
* a failed or timed-out subquery **fails over** to the shard's next
  healthy replica (replicas hold the same entry slice, so a covered
  loss keeps the answer byte-identical);
* an optional **deadline** bounds the whole query: per-shard attempts
  inherit the remaining budget and stragglers are cancelled through
  ``Warehouse.interrupt()`` (SQLite's cross-thread statement abort);
* with a spare replica available, a **hedge** duplicate of the
  subquery launches after a delay derived from the shard's latency
  EWMA (a p95 proxy: EWMA × multiplier) — first result wins, the
  loser is interrupted, and losing to a hedge (or to the deadline)
  counts against the loser's breaker, so a stalled backend that keeps
  getting out-raced ends up skipped entirely.

All of it lands on the metrics plane (``federation.shard_retries`` /
``failovers`` / ``hedges`` / ``hedge_wins`` / ``breaker_state``) and as
``backend`` / ``attempts`` / ``hedged`` annotations on the
``shard_subquery`` trace spans.

One caveat worth knowing when reading interrupt-related code:
``sqlite3.Connection.interrupt`` aborts *whatever statement is running
on that connection*, so cancelling a straggler on a backend that is
concurrently serving another subquery of the same query can abort that
one too — the victim surfaces as a degradable error and takes the same
retry/failover path, so the answer survives; it just costs an extra
attempt.
"""

from __future__ import annotations

import dataclasses
import queue as queue_module
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.errors import (
    ShardUnreachableError,
    StorageError,
    UnknownDocumentError,
)
from repro.resilience import OPEN, CircuitBreaker
from repro.federation.costs import (
    INLIST_CUTOFF,
    ROW_OVERHEAD_BYTES,
    BloomFilter,
)
from repro.federation.planner import (
    FederatedPlan,
    SemiJoinPushdown,
    ShardSubPlan,
)
from repro.results.resultset import (
    BoundNode,
    QueryResult,
    ResultRow,
    unique_columns,
)
from repro.translator.execute import _build_element
from repro.xmlkit.serializer import serialize_compact
from repro.xquery.ast import BoolAnd, ValueIn, VarPath

#: failures the query path degrades on — a shard that is gone or whose
#: store is broken; anything else (syntax, semantics, bugs) propagates
DEGRADABLE = (ShardUnreachableError, StorageError)


@dataclass(frozen=True)
class FaultPolicy:
    """Knobs of the fault-tolerant subquery path.

    ``retries_per_backend`` counts attempts on one backend before
    failing over to the next (1 = fail over immediately);
    ``retry_delay_s`` sleeps between same-backend retries (through the
    executor's injectable ``sleep``). ``subquery_timeout_s`` bounds a
    single backend attempt; a per-query deadline (``X-Deadline-Ms``)
    additionally bounds everything, whichever is tighter.

    Hedging fires a duplicate subquery on a spare healthy replica once
    the primary has been out for ``hedge_delay_s`` — or, when that is
    None, for ``max(hedge_min_delay_s, EWMA latency × hedge_multiplier)``
    from the statistics catalog (the EWMA-based p95 proxy: a request
    slower than several times its moving average is in the tail).
    ``hedge=False`` disables hedging outright.

    Breaker knobs are tighter than the harvest plane's (threshold 3,
    5 s cooldown): query traffic is dense enough that three straight
    failures mean *down*, and probes are cheap.
    """

    retries_per_backend: int = 1
    retry_delay_s: float = 0.0
    subquery_timeout_s: float | None = None
    hedge: bool = True
    hedge_delay_s: float | None = None
    hedge_multiplier: float = 4.0
    hedge_min_delay_s: float = 0.05
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 5.0


@dataclass(frozen=True)
class ShardBoundNode(BoundNode):
    """A bound element plus the shard its document lives on (document
    fetch must go back to the right warehouse)."""

    shard: str = ""


@dataclass
class _UnitRow:
    """One shipped binding tuple of one subplan."""

    bindings: dict[str, ShardBoundNode]
    sort_keys: dict[str, tuple]      # var → (shard position, doc, node)
    values: dict[str, list[str]]     # str(varpath) → shipped values


class ScatterGatherExecutor:
    """Runs :class:`FederatedPlan` objects against a shard catalog."""

    def __init__(self, catalog, metrics=None, tracer=None,
                 max_workers: int | None = None, stats=None,
                 policy: FaultPolicy | None = None):
        self.catalog = catalog
        self.metrics = metrics
        self.tracer = tracer
        self.max_workers = max_workers
        #: statistics catalog fed with runtime latency/row observations
        self.stats = stats
        self.policy = policy if policy is not None else FaultPolicy()
        #: injectable sleep honouring ShardSpec.latency_s (simulated
        #: remote-shard round-trips; tests pass a recorder)
        self.sleep = time.sleep
        #: injectable clock driving deadlines, timeouts and breakers
        self.clock = time.monotonic
        self._breakers: dict[str, CircuitBreaker] = {}
        self._breaker_lock = threading.Lock()

    # -- breakers -------------------------------------------------------------

    def breaker(self, backend: str) -> CircuitBreaker:
        """The (lazily created) breaker guarding one backend — a shard
        primary (``s0``) or a replica (``s0#r0``)."""
        with self._breaker_lock:
            breaker = self._breakers.get(backend)
            if breaker is None:
                breaker = self._breakers[backend] = CircuitBreaker(
                    backend,
                    failure_threshold=self.policy.breaker_threshold,
                    cooldown_s=self.policy.breaker_cooldown_s,
                    clock=self.clock, metrics=self.metrics,
                    gauge="federation.breaker_state", label="backend",
                    event_prefix="federation.breaker")
            return breaker

    def breaker_states(self) -> dict[str, dict]:
        """Per-backend breaker status (the health report's view)."""
        with self._breaker_lock:
            return {backend: breaker.status()
                    for backend, breaker in sorted(self._breakers.items())}

    def breaker_is_open(self, backend: str) -> bool:
        """Read-only open check for callers outside the attempt path:
        the facade's admin probes (stats, keyword search, document
        resolution) use it to try healthy backends first without
        mutating the breaker state machine — half-open probing stays
        the query path's job."""
        with self._breaker_lock:
            breaker = self._breakers.get(backend)
        return breaker is not None and breaker.state == OPEN

    def execute(self, plan: FederatedPlan,
                deadline_s: float | None = None) -> QueryResult:
        """Scatter, gather, join, assemble. ``deadline_s`` bounds the
        whole execution: subqueries still running once it passes are
        interrupted and their shards reported as failed."""
        deadline = (self.clock() + deadline_s
                    if deadline_s is not None else None)
        if self.tracer is None:
            return self._execute(plan, None, deadline)
        with self.tracer.span("federated_query", query=plan.text,
                              fanout=plan.fanout) as root:
            if deadline_s is not None:
                root.meta["deadline_ms"] = round(deadline_s * 1000.0, 3)
            result = self._execute(plan, root, deadline)
            root.count("result_rows", len(result))
        result.trace = root
        return result

    def _execute(self, plan: FederatedPlan, root, deadline) -> QueryResult:
        if self.metrics is not None:
            self.metrics.inc("federation.queries")
            self.metrics.inc("federation.fanout", plan.fanout)
        if plan.route_shard is not None:
            return self._route(plan, root, deadline)
        return self._scatter(plan, root, deadline)

    # -- single-shard fast path ----------------------------------------------

    def _route(self, plan: FederatedPlan, root, deadline) -> QueryResult:
        """Every source lives whole on one shard: hand the original
        query to that shard's engine untouched."""
        shard = plan.route_shard
        if self.tracer is not None and root is not None:
            with self.tracer.span("shard_subquery", parent=root,
                                  shard=shard, route="single") as span:
                return self._route_inner(plan, shard, span, deadline)
        return self._route_inner(plan, shard, None, deadline)

    def _route_inner(self, plan: FederatedPlan, shard: str,
                     span, deadline) -> QueryResult:
        started = time.perf_counter()
        try:
            result, backend, info = self._resilient_subquery(
                plan.text, plan.query, shard, deadline)
        except DEGRADABLE as exc:
            if span is not None:
                span.meta["error"] = str(exc)
            return self._degraded_result(plan, [self._warn(shard, exc)],
                                         shard)
        self._annotate_attempt(span, backend, info)
        self._observe_shard(shard, time.perf_counter() - started,
                            len(result.rows), span,
                            sum(_row_bytes(row.values)
                                for row in result.rows))
        for row in result.rows:
            row.bindings = {
                var: ShardBoundNode(doc_id=node.doc_id,
                                    node_id=node.node_id, shard=shard)
                for var, node in row.bindings.items()}
        return result

    # -- scatter-gather -------------------------------------------------------

    def _scatter(self, plan: FederatedPlan, root, deadline) -> QueryResult:
        unit_rows: dict[int, list[_UnitRow]] = {
            subplan.index: [] for subplan in plan.subplans}
        warnings: list[str] = []
        lost: set[str] = set()
        self._observe_optimizer(plan, root)

        by_probe: dict[int, SemiJoinPushdown] = {
            semijoin.probe: semijoin for semijoin in plan.semijoins}
        phase_one = [(subplan, None, None) for subplan in plan.subplans
                     if subplan.index not in by_probe]
        failed = self._run_phase(plan, phase_one, unit_rows, warnings,
                                 root, deadline, lost)

        phase_two = []
        for subplan in plan.subplans:
            semijoin = by_probe.get(subplan.index)
            if semijoin is None:
                continue
            if semijoin.build in failed:
                # the filter cannot be trusted when part of its build
                # side is missing — scan unfiltered instead of silently
                # dropping probe rows that might still join elsewhere
                warnings.append(
                    f"semi-join filter for {' and '.join(subplan.sources)} "
                    f"unavailable (build side degraded); scanning "
                    f"unfiltered")
                phase_two.append((subplan, None, None))
                continue
            phase_two.append(
                self._filtered_subplan(subplan, semijoin, unit_rows))
        if phase_two:
            self._run_phase(plan, phase_two, unit_rows, warnings, root,
                            deadline, lost)

        if self.tracer is not None and root is not None:
            with self.tracer.span("coordinator_join") as span:
                combos = self._gather(plan, unit_rows)
                result = self._assemble(plan, combos)
                span.count("combos", len(combos))
        else:
            combos = self._gather(plan, unit_rows)
            result = self._assemble(plan, combos)
        result.warnings.extend(warnings)
        result.failed_shards = sorted(lost)
        if warnings and self.metrics is not None:
            self.metrics.inc("federation.partial_results")
        return result

    def _run_phase(self, plan: FederatedPlan, entries, unit_rows,
                   warnings: list[str], root, deadline,
                   lost: set[str]) -> set[int]:
        """Run one phase's ``(subplan, bloom, semijoin mode)`` entries
        across their shards; returns the subplan ids that lost at
        least one shard (and adds the shard names to ``lost``)."""
        tasks = [(subplan, bloom, mode, shard)
                 for subplan, bloom, mode in entries
                 for shard in subplan.shards]
        if not tasks:
            return set()
        if self.max_workers is not None:
            workers = self.max_workers
        else:
            workers = len(tasks)
        if workers > 1 and len(tasks) > 1:
            with ThreadPoolExecutor(
                    max_workers=min(workers, len(tasks)),
                    thread_name_prefix="shard") as pool:
                futures = [pool.submit(self._run_subquery, plan,
                                       subplan, shard, root, bloom,
                                       mode, deadline)
                           for subplan, bloom, mode, shard in tasks]
                outcomes = [future.result() for future in futures]
        else:
            outcomes = [self._run_subquery(plan, subplan, shard, root,
                                           bloom, mode, deadline)
                        for subplan, bloom, mode, shard in tasks]
        failed: set[int] = set()
        for (subplan, __, ___, shard), (rows, warning) in zip(tasks,
                                                              outcomes):
            if warning is not None:
                warnings.append(warning)
                failed.add(subplan.index)
                lost.add(shard)
            else:
                unit_rows[subplan.index].extend(rows)
        return failed

    def _filtered_subplan(self, subplan: ShardSubPlan,
                          semijoin: SemiJoinPushdown, unit_rows):
        """Attach the build side's join-key values to a probe subplan:
        an IN-list rewrite of the subquery below the cutoff (the filter
        runs inside the shard's SQL), a Bloom post-check above it.
        Returns a ``(subplan, bloom, semijoin mode)`` phase entry."""
        values = sorted({value
                        for row in unit_rows[semijoin.build]
                        for value in row.values.get(semijoin.build_key, [])
                        if value})
        if len(values) <= INLIST_CUTOFF:
            if self.metrics is not None:
                self.metrics.inc("federation.semijoin_filters",
                                 mode="inlist")
            atom = ValueIn(target=semijoin.probe_path,
                           values=tuple(values))
            where = subplan.subquery.where
            if where is None:
                conjunction = atom
            elif isinstance(where, BoolAnd):
                conjunction = BoolAnd(items=where.items + (atom,))
            else:
                conjunction = BoolAnd(items=(where, atom))
            subquery = dataclasses.replace(subplan.subquery,
                                           where=conjunction)
            rewritten = dataclasses.replace(subplan, subquery=subquery,
                                            text=str(subquery))
            return rewritten, None, "inlist"
        if self.metrics is not None:
            self.metrics.inc("federation.semijoin_filters", mode="bloom")
        return subplan, (semijoin.probe_key, BloomFilter(values)), "bloom"

    def _run_subquery(self, plan: FederatedPlan, subplan: ShardSubPlan,
                      shard: str, root, bloom=None, mode=None,
                      deadline=None):
        """One (subplan, shard) task; returns ``(rows, warning)``.

        ``bloom`` is a ``(value key, BloomFilter)`` pair: the shipped
        semi-join filter, applied before rows count as shipped (it
        models the filter running at the shard's end of the wire).
        ``mode`` labels the span with the semi-join flavour in play.

        This runs on a pool worker thread, so the shard span is opened
        with an **explicit parent** — the coordinator's
        ``federated_query`` span — because a worker's thread-local span
        stack starts empty and cannot see the coordinator's. The shard
        warehouse shares the federation tracer, so its own ``query``
        span (and every SQL statement record) nests under this one:
        one connected tree from request to statement.
        """
        if self.tracer is not None and root is not None:
            meta = {"shard": shard,
                    "sources": ", ".join(subplan.sources)}
            if mode is not None:
                meta["semijoin"] = mode
            with self.tracer.span("shard_subquery", parent=root,
                                  **meta) as span:
                return self._shard_subquery(plan, subplan, shard,
                                            bloom, span, deadline)
        return self._shard_subquery(plan, subplan, shard, bloom, None,
                                    deadline)

    def _shard_subquery(self, plan: FederatedPlan,
                        subplan: ShardSubPlan, shard: str, bloom, span,
                        deadline):
        started = time.perf_counter()
        try:
            result, backend, info = self._resilient_subquery(
                subplan.text, subplan.subquery, shard, deadline)
        except UnknownDocumentError:
            # the shard hosts the source but holds none of its
            # documents (an empty partition slice): zero bindings,
            # not a fault
            return [], None
        except DEGRADABLE as exc:
            if span is not None:
                span.meta["error"] = str(exc)
            return [], self._warn(shard, exc, subplan)
        self._annotate_attempt(span, backend, info)
        rows = self._unit_rows(plan, subplan, shard, result)
        if bloom is not None:
            key, shipped_filter = bloom
            kept = [row for row in rows
                    if any(value and value in shipped_filter
                           for value in row.values.get(key, []))]
            if self.metrics is not None:
                self.metrics.inc("federation.rows_pruned",
                                 len(rows) - len(kept))
            rows = kept
        self._observe_shard(shard, time.perf_counter() - started,
                            len(rows), span,
                            sum(_row_bytes(row.values) for row in rows))
        return rows, None

    def _unit_rows(self, plan: FederatedPlan, subplan: ShardSubPlan,
                   shard: str, result: QueryResult) -> list[_UnitRow]:
        """Reshape one shard result into coordinator unit rows."""
        position = {var: self.catalog.shard_position(
            plan.var_source[var], shard) for var in subplan.vars}
        rows: list[_UnitRow] = []
        for row in result.rows:
            bindings: dict[str, ShardBoundNode] = {}
            sort_keys: dict[str, tuple] = {}
            for var in subplan.vars:
                node = row.bindings[var]
                bindings[var] = ShardBoundNode(
                    doc_id=node.doc_id, node_id=node.node_id,
                    shard=shard)
                sort_keys[var] = (position[var], node.doc_id,
                                  node.node_id)
            values = {key: row.values.get(column, [])
                      for key, column in zip(subplan.item_keys,
                                             result.columns)}
            rows.append(_UnitRow(bindings=bindings, sort_keys=sort_keys,
                                 values=values))
        return rows

    # -- fault-tolerant subquery attempts -------------------------------------

    def _resilient_subquery(self, text: str, ast, shard: str, deadline):
        """Run one shard subquery with breakers, failover, timeouts
        and hedging; returns ``(result, winning backend, info)``.

        Raises the last degradable error when every usable backend is
        exhausted, :class:`ShardUnreachableError` when all breakers are
        open or the deadline passes, and lets
        :class:`UnknownDocumentError` (an empty partition slice — not
        a fault) propagate to the caller untouched.
        """
        candidates = []
        for backend in self.catalog.backends_for(shard):
            if self.breaker(backend).allow():
                candidates.append(backend)
            elif self.metrics is not None:
                self.metrics.inc("federation.breaker_skips",
                                 backend=backend)
        if not candidates:
            raise ShardUnreachableError(
                f"shard {shard!r}: circuit breaker open for every "
                f"backend (cooling down "
                f"{self.policy.breaker_cooldown_s}s)")
        if deadline is not None and self.clock() >= deadline:
            raise ShardUnreachableError(
                f"shard {shard!r}: query deadline exhausted before "
                f"the subquery could start")
        # the plain path — no deadline, no per-attempt timeout, no
        # spare to hedge onto — runs attempts inline on this thread;
        # anything needing cancellation or a duplicate runs attempts
        # on their own threads so the coordinator can time them out
        if (deadline is None and self.policy.subquery_timeout_s is None
                and not (self.policy.hedge and len(candidates) > 1)):
            return self._attempts_inline(text, ast, shard, candidates)
        return self._attempts_threaded(text, ast, shard, candidates,
                                       deadline)

    def _query_backend(self, text: str, ast, backend: str):
        """One raw attempt against one backend (latency sleep, lazy
        open, subquery)."""
        latency = self.catalog.spec(backend).latency_s
        if latency:
            # one simulated round-trip per attempt; the sleep drops
            # the GIL, so concurrent scatter overlaps the waits
            # exactly as it would overlap network hops
            self.sleep(latency)
        warehouse = self.catalog.warehouse(backend)
        return warehouse.xomatiq.query(text, ast=ast)

    def _attempts_inline(self, text: str, ast, shard: str,
                         candidates: list[str]):
        """Sequential attempts: each candidate backend up to
        ``retries_per_backend`` times, then fail over to the next."""
        retries = max(1, self.policy.retries_per_backend)
        attempts = 0
        last_exc = None
        for index, backend in enumerate(candidates):
            for retry in range(retries):
                attempts += 1
                try:
                    result = self._query_backend(text, ast, backend)
                except UnknownDocumentError:
                    self.breaker(backend).record_success()
                    raise
                except DEGRADABLE as exc:
                    self.breaker(backend).record_failure()
                    last_exc = exc
                    if retry + 1 < retries:
                        if self.metrics is not None:
                            self.metrics.inc("federation.shard_retries",
                                             shard=shard)
                        if self.policy.retry_delay_s:
                            self.sleep(self.policy.retry_delay_s)
                    continue
                self.breaker(backend).record_success()
                return result, backend, {"attempts": attempts,
                                         "hedged": False,
                                         "hedge_won": False}
            if index + 1 < len(candidates) and self.metrics is not None:
                self.metrics.inc("federation.failovers", shard=shard)
        raise last_exc

    def _attempts_threaded(self, text: str, ast, shard: str,
                           candidates: list[str], deadline):
        """Attempts on their own threads: per-attempt timeouts, the
        query deadline, and hedging all need a coordinator that can
        outlive (and interrupt) a stuck backend call.

        A straggler that loses — to the deadline, its timeout, or a
        faster hedge — is cancelled with ``Warehouse.interrupt()``;
        its late outcome, if any, is ignored by attempt token.
        """
        policy = self.policy
        retries = max(1, policy.retries_per_backend)
        schedule = [backend for backend in candidates
                    for __ in range(retries)]
        outcomes: queue_module.Queue = queue_module.Queue()
        launched: dict[int, tuple[str, float]] = {}
        in_flight: dict[int, str] = {}
        cursor = 0
        token_counter = 0
        last_exc = None

        def attempt(backend: str, token: int) -> None:
            try:
                outcomes.put((token, self._query_backend(text, ast,
                                                         backend), None))
            except BaseException as exc:  # noqa: BLE001 - ferried out
                outcomes.put((token, None, exc))

        def launch(backend: str) -> int:
            nonlocal token_counter
            token_counter += 1
            token = token_counter
            launched[token] = (backend, self.clock())
            in_flight[token] = backend
            thread = threading.Thread(target=attempt,
                                      args=(backend, token),
                                      name=f"subq-{backend}",
                                      daemon=True)
            thread.start()
            return token

        def next_backend(exclude=()) -> str | None:
            nonlocal cursor
            while cursor < len(schedule):
                backend = schedule[cursor]
                cursor += 1
                if backend not in exclude:
                    return backend
            return None

        def abandon() -> None:
            for backend in in_flight.values():
                self._interrupt(backend)
            in_flight.clear()

        first = next_backend()
        primary_start = self.clock()
        launch(first)
        hedge_at = None
        hedge_token = None
        if policy.hedge and len(candidates) > 1:
            hedge_at = primary_start + self._hedge_delay(shard)

        while in_flight:
            now = self.clock()
            if deadline is not None and now >= deadline:
                # blowing the whole query budget counts against every
                # backend still running — a shard that keeps eating
                # deadlines must eventually trip its breaker
                for straggler in in_flight.values():
                    self.breaker(straggler).record_failure()
                abandon()
                raise ShardUnreachableError(
                    f"shard {shard!r}: query deadline exceeded; "
                    f"straggler subqueries interrupted")
            waits = []
            if deadline is not None:
                waits.append(deadline - now)
            if policy.subquery_timeout_s is not None:
                earliest = min(launched[token][1]
                               for token in in_flight)
                waits.append(earliest + policy.subquery_timeout_s - now)
            if hedge_at is not None and hedge_token is None:
                waits.append(hedge_at - now)
            wait = max(0.0, min(waits)) if waits else None
            try:
                token, result, exc = outcomes.get(timeout=wait)
            except queue_module.Empty:
                now = self.clock()
                if (hedge_at is not None and hedge_token is None
                        and now >= hedge_at):
                    backend = next_backend(
                        exclude=set(in_flight.values()))
                    hedge_at = None
                    if backend is not None:
                        if self.metrics is not None:
                            self.metrics.inc("federation.hedges",
                                             shard=shard)
                        hedge_token = launch(backend)
                    continue
                if policy.subquery_timeout_s is not None:
                    expired = [token for token in list(in_flight)
                               if now >= launched[token][1]
                               + policy.subquery_timeout_s]
                    for token in expired:
                        backend = in_flight.pop(token)
                        self._interrupt(backend)
                        self.breaker(backend).record_failure()
                        if self.metrics is not None:
                            self.metrics.inc("federation.shard_timeouts",
                                             shard=shard)
                        last_exc = ShardUnreachableError(
                            f"shard {shard!r}: backend {backend!r} "
                            f"exceeded its "
                            f"{policy.subquery_timeout_s}s subquery "
                            f"timeout")
                    if expired and not in_flight:
                        backend = next_backend()
                        if backend is not None:
                            if self.metrics is not None:
                                self.metrics.inc("federation.failovers",
                                                 shard=shard)
                            launch(backend)
                continue
            if token not in in_flight:
                continue  # a straggler we already gave up on
            backend = in_flight.pop(token)
            if exc is None:
                self.breaker(backend).record_success()
                hedge_won = (hedge_token is not None
                             and token == hedge_token)
                if hedge_won:
                    # the hedge outracing the primary is hard evidence
                    # the primary is deep in its latency tail (the
                    # hedge only fired because the p95 proxy elapsed):
                    # count the loss against its breaker so a stalled
                    # backend stops being tried at all. A hedge that
                    # fired but *lost* costs the primary nothing.
                    for loser in in_flight.values():
                        self.breaker(loser).record_failure()
                    if self.metrics is not None:
                        self.metrics.inc("federation.hedge_wins",
                                         shard=shard)
                abandon()
                return result, backend, {
                    "attempts": token_counter,
                    "hedged": hedge_token is not None,
                    "hedge_won": hedge_won}
            if isinstance(exc, UnknownDocumentError):
                self.breaker(backend).record_success()
                abandon()
                raise exc
            if not isinstance(exc, DEGRADABLE):
                abandon()
                raise exc
            self.breaker(backend).record_failure()
            last_exc = exc
            if not in_flight:
                nxt = next_backend()
                if nxt is None:
                    raise last_exc
                if self.metrics is not None:
                    if nxt == backend:
                        self.metrics.inc("federation.shard_retries",
                                         shard=shard)
                    else:
                        self.metrics.inc("federation.failovers",
                                         shard=shard)
                launch(nxt)
        if last_exc is not None:
            raise last_exc
        raise ShardUnreachableError(
            f"shard {shard!r}: no backend attempt completed")

    def _hedge_delay(self, shard: str) -> float:
        """How long the primary may run before a duplicate fires on a
        replica: the explicit policy value when set, else a p95 proxy
        from the statistics EWMAs (a request several times slower than
        the shard's moving average is in the tail), floored so cold
        stats never hedge instantly."""
        policy = self.policy
        if policy.hedge_delay_s is not None:
            return policy.hedge_delay_s
        if self.stats is not None:
            record = self.stats.shard(shard)
            ewma = getattr(record, "ewma_seconds", None)
            if ewma:
                return max(policy.hedge_min_delay_s,
                           ewma * policy.hedge_multiplier)
        return policy.hedge_min_delay_s

    def _interrupt(self, backend: str) -> None:
        """Cancel whatever the backend is running for us (breaking
        into its current statement; see the module caveat). A backend
        that never opened has nothing to interrupt."""
        warehouse = self.catalog.peek(backend)
        if warehouse is None:
            return
        try:
            warehouse.interrupt()
        except Exception:
            return  # the backend is already broken; nothing to cancel
        if self.metrics is not None:
            self.metrics.inc("federation.interrupts", backend=backend)

    def _annotate_attempt(self, span, backend: str, info: dict) -> None:
        """Stamp the winning backend and attempt shape on the
        subquery's trace span."""
        if span is None:
            return
        span.meta["backend"] = backend
        if info.get("attempts", 1) > 1:
            span.meta["attempts"] = info["attempts"]
        if info.get("hedged"):
            span.meta["hedged"] = True
        if info.get("hedge_won"):
            span.meta["hedge_won"] = True

    # -- coordinator join -----------------------------------------------------

    def _gather(self, plan: FederatedPlan,
                unit_rows: dict[int, list[_UnitRow]]) -> list:
        """Join each disjunct's units, dedupe combinations across
        disjuncts, and order them like the monolithic executor would.

        Returns ``[(var → unit row)]`` sorted by per-variable
        ``(shard position, doc_id, node_id)``.
        """
        accepted: dict[tuple, tuple] = {}
        for disjunct in plan.disjuncts:
            for combo in self._join_disjunct(disjunct, unit_rows):
                var_rows = {var: combo[unit]
                            for var, unit in disjunct.var_unit.items()}
                key = tuple(
                    (var_rows[var].bindings[var].shard,
                     var_rows[var].bindings[var].doc_id,
                     var_rows[var].bindings[var].node_id)
                    for var in plan.variables)
                if key not in accepted:
                    sort_key = tuple(var_rows[var].sort_keys[var]
                                     for var in plan.variables)
                    accepted[key] = (sort_key, var_rows)
        return [var_rows for __, var_rows in
                sorted(accepted.values(), key=lambda item: item[0])]

    def _join_disjunct(self, disjunct,
                       unit_rows: dict[int, list[_UnitRow]]) -> list:
        """All surviving unit-row combinations of one disjunct, as
        ``{subplan id → unit row}`` dicts."""
        var_unit = disjunct.var_unit
        combos: list[dict[int, _UnitRow]] = [{}]
        joined: set[int] = set()
        for unit in disjunct.subplan_ids:
            rows = unit_rows.get(unit, [])
            if not combos or not rows:
                return []
            applicable = [atom for atom in disjunct.atoms
                          if self._applies(atom, var_unit, joined, unit)]
            hash_atom = next(
                (atom for atom in applicable
                 if atom.op == "=" and not atom.negated), None)
            rest = [atom for atom in applicable if atom is not hash_atom]
            if hash_atom is not None:
                probe = self._hash_join(hash_atom, var_unit, unit, rows)
            else:
                probe = lambda combo: rows  # noqa: E731 - cross product
            next_combos = []
            for combo in combos:
                for row in probe(combo):
                    extended = dict(combo)
                    extended[unit] = row
                    if all(self._atom_holds(atom, var_unit, extended)
                           for atom in rest):
                        next_combos.append(extended)
            combos = next_combos
            joined.add(unit)
        return combos

    @staticmethod
    def _applies(atom, var_unit, joined: set[int], unit: int) -> bool:
        """An atom is applied the moment its second unit joins."""
        left, right = var_unit[atom.left.var], var_unit[atom.right.var]
        return ({left, right} <= joined | {unit}
                and unit in (left, right))

    def _hash_join(self, atom, var_unit, unit: int,
                   rows: list[_UnitRow]):
        """Probe function for one equality atom: index the joining
        unit's rows by shipped key value, look prior combos up by the
        other side's values. Empty string values never join — an
        element with no text produces no value row in the monolithic
        SQL join either."""
        if var_unit[atom.left.var] == unit:
            build_key, probe_key = atom.left_key, atom.right_key
        else:
            build_key, probe_key = atom.right_key, atom.left_key
        index: dict[str, list[_UnitRow]] = {}
        for row in rows:
            for value in row.values.get(build_key, []):
                if value:
                    index.setdefault(value, []).append(row)

        def probe(combo: dict[int, _UnitRow]) -> list[_UnitRow]:
            other = var_unit[atom.left.var if probe_key == atom.left_key
                             else atom.right.var]
            candidates: list[_UnitRow] = []
            seen: set[int] = set()
            for value in combo[other].values.get(probe_key, []):
                if not value:
                    continue
                for row in index.get(value, []):
                    if id(row) not in seen:
                        seen.add(id(row))
                        candidates.append(row)
            return candidates

        return probe

    def _atom_holds(self, atom, var_unit,
                    combo: dict[int, _UnitRow]) -> bool:
        """Existential comparison over the two operands' shipped
        values (SQL-join semantics); negation inverts the existence."""
        left = combo[var_unit[atom.left.var]].values.get(
            atom.left_key, [])
        right = combo[var_unit[atom.right.var]].values.get(
            atom.right_key, [])
        holds = any(
            _compare(lv, atom.op, rv)
            for lv in left if lv for rv in right if rv)
        return (not holds) if atom.negated else holds

    # -- output assembly ------------------------------------------------------

    def _assemble(self, plan: FederatedPlan, combos: list) -> QueryResult:
        """Rebuild rows in the monolithic result shape from shipped
        values (constructor items reuse the monolithic executor's
        element builder)."""
        columns = unique_columns([item.output_name
                                  for item in plan.query.returns])
        result = QueryResult(columns=columns,
                             variables=list(plan.variables))
        for var_rows in combos:
            row = ResultRow(bindings={
                var: var_rows[var].bindings[var]
                for var in plan.variables})

            def values_for(varpath: VarPath, __=None) -> list[str]:
                return var_rows[varpath.var].values.get(
                    str(varpath), [])

            for column, item in zip(columns, plan.query.returns):
                if item.constructor is not None:
                    maps = [None] * len(item.constructor.varpaths())
                    element = _build_element(item.constructor, maps,
                                             values_for)
                    row.elements[column] = element
                    row.values[column] = [serialize_compact(element)]
                else:
                    row.values[column] = values_for(item.value)
            result.rows.append(row)
        return result

    def _degraded_result(self, plan: FederatedPlan, warnings: list[str],
                         shard: str | None = None) -> QueryResult:
        """Empty-but-answering result for a fully lost route."""
        if self.metrics is not None:
            self.metrics.inc("federation.partial_results")
        columns = unique_columns([item.output_name
                                  for item in plan.query.returns])
        return QueryResult(columns=columns,
                           variables=list(plan.variables),
                           warnings=warnings,
                           failed_shards=[shard] if shard else [])

    # -- bookkeeping ----------------------------------------------------------

    def _warn(self, shard: str, exc: Exception,
              subplan: ShardSubPlan | None = None) -> str:
        if self.metrics is not None:
            self.metrics.inc("federation.shard_errors", shard=shard)
        sources = (" and ".join(subplan.sources)
                   if subplan is not None else "this query")
        return (f"shard {shard!r} unavailable — results for {sources} "
                f"are partial: {exc}")

    def _observe_optimizer(self, plan: FederatedPlan, root) -> None:
        """Record what the cost-based pass claimed and removed."""
        if not plan.cost_based:
            return
        estimated = round(sum(plan.estimated_rows.values()))
        if self.metrics is not None:
            if plan.estimated_rows:
                self.metrics.inc("federation.estimated_rows", estimated)
            if plan.pruned:
                self.metrics.inc("federation.shards_pruned",
                                 len(plan.pruned))
        if root is not None:
            if plan.estimated_rows:
                root.count("estimated_rows", estimated)
            if plan.pruned:
                root.count("shards_pruned", len(plan.pruned))
            if plan.semijoins:
                root.count("semijoin_filters", len(plan.semijoins))

    def _observe_shard(self, shard: str, seconds: float, rows: int,
                       span, bytes_shipped: int = 0) -> None:
        """Record one finished shard visit on the metrics plane and on
        its (live, worker-opened) ``shard_subquery`` span. The span's
        trace id doubles as the ``federation.shard_seconds`` exemplar,
        tying the latency bucket to a resolvable trace."""
        if self.metrics is not None:
            exemplar = (span.trace_id
                        if span is not None and span.trace_id else None)
            self.metrics.observe("federation.shard_seconds", seconds,
                                 shard=shard, exemplar=exemplar)
            self.metrics.inc("federation.rows_shipped", rows)
            self.metrics.inc("federation.bytes_shipped", bytes_shipped)
        if self.stats is not None:
            self.stats.record_observation(shard, seconds, rows)
        if span is not None:
            span.counters["rows_shipped"] = rows
            span.counters["bytes_shipped"] = bytes_shipped


def _row_bytes(values: dict) -> int:
    """Serialized size estimate of one shipped binding: fixed framing
    plus the value strings (the ``federation.bytes_shipped`` unit)."""
    return ROW_OVERHEAD_BYTES + sum(
        len(value) for items in values.values() for value in items)


_OPS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _compare(left: str, op: str, right: str) -> bool:
    return _OPS[op](left, right)
