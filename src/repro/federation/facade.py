"""The federated facade: one XomatiQ surface over many shards.

:class:`FederatedXomatiQ` looks like a :class:`repro.engine.Warehouse`
from the query side — ``query()`` returns the same
:class:`~repro.results.resultset.QueryResult`, ``to_xml()`` renders
through the same tagger — but bindings scatter across per-source
warehouse shards and join back at the coordinator::

    from repro.federation import FederatedXomatiQ, ShardCatalog

    catalog = ShardCatalog()
    catalog.add_shard("s0")          # in-memory; give paths for disk
    catalog.add_shard("s1")
    catalog.assign("hlx_enzyme", "s0")
    catalog.assign("hlx_embl", "s1")

    fed = FederatedXomatiQ(catalog)
    fed.load_corpus(build_corpus(seed=7))
    result = fed.query(FIG11_JOIN)   # scatter, hash-join, re-tag

Loading a source routed to several shards partitions the release into
**contiguous** entry slices, one per shard in catalog order — that
plus the coordinator's ``(shard position, doc_id, node_id)`` sort is
what keeps federated results byte-identical to a monolithic warehouse
loaded from the same release.
"""

from __future__ import annotations

import time

from repro.datahounds.registry import SourceRegistry
from repro.errors import (
    FederationError,
    ShardConfigError,
    ShardUnreachableError,
    UnknownDocumentError,
)
from repro.federation.catalog import ShardCatalog
from repro.federation.costs import (
    BLOOM_FP_RATE,
    INLIST_CUTOFF,
    CostModel,
)
from repro.federation.executor import (
    DEGRADABLE,
    ScatterGatherExecutor,
    ShardBoundNode,
)
from repro.federation.planner import FederatedPlan, FederationPlanner
from repro.federation.stats import StatisticsCatalog, default_stats_path
from repro.results.resultset import QueryResult, ResultRow
from repro.xmlkit import Document, serialize
from repro.xquery.parser import parse_query
from repro.xquery.semantics import check_query


class FederatedXomatiQ:
    """Scatter-gather query engine over a :class:`ShardCatalog`."""

    def __init__(self, catalog: ShardCatalog,
                 registry: SourceRegistry | None = None,
                 validate_sources: bool = True,
                 metrics=None, trace=None,
                 max_workers: int | None = None,
                 stats: StatisticsCatalog | None = None,
                 stats_path=None,
                 fault_policy=None):
        """``metrics``/``trace`` follow :class:`~repro.engine.
        Warehouse` conventions (default registry / no tracer);
        ``max_workers`` caps the scatter pool (default: one thread per
        shard subquery). ``stats`` is the optimizer's statistics
        catalog (empty until :meth:`analyze` runs — plans stay
        rule-based until then); ``stats_path`` is where refreshed
        statistics persist (defaults to the shard map's sibling
        ``.stats.json`` when opened via :meth:`from_shard_map`)."""
        from repro.obs import NullMetrics, Tracer, resolve_metrics
        self.catalog = catalog
        self.registry = registry or SourceRegistry()
        self.validate_sources = validate_sources
        self.metrics = resolve_metrics(metrics)
        self._metrics_sink = (None if isinstance(self.metrics, NullMetrics)
                              else self.metrics)
        self.tracer = None
        if trace is not None and trace is not False:
            self.tracer = trace if isinstance(trace, Tracer) else Tracer()
            if self.tracer.metrics is None:
                self.tracer.metrics = self._metrics_sink
        if self.catalog.metrics is None:
            # shard warehouses record into the facade's registry too
            self.catalog.metrics = self.metrics
        if self.tracer is not None:
            # one tracer across coordinator and every shard — the
            # distributed trace is a single tree
            self.catalog.set_tracer(self.tracer)
        self.statistics = stats if stats is not None else StatisticsCatalog()
        self.stats_path = stats_path
        self.planner = FederationPlanner(
            catalog, cost_model=CostModel(self.statistics))
        self.executor = ScatterGatherExecutor(
            catalog, metrics=self._metrics_sink, tracer=self.tracer,
            max_workers=max_workers, stats=self.statistics,
            policy=fault_policy)

    @classmethod
    def from_shard_map(cls, path, **kwargs) -> "FederatedXomatiQ":
        """Open a federation from a shard-map registry file (what
        ``xomatiq query --shard-map`` does). A sibling statistics
        catalog (``shards.json`` → ``shards.stats.json``) is picked up
        automatically when present — cost-based planning without an
        explicit ``analyze`` on every open."""
        if "stats" not in kwargs:
            stats_path = kwargs.pop("stats_path", None) \
                or default_stats_path(path)
            stats = None
            try:
                stats = StatisticsCatalog.load(stats_path)
            except (OSError, ValueError, KeyError):
                stats = None
            kwargs["stats"] = stats
            kwargs["stats_path"] = stats_path
        return cls(ShardCatalog.load(path), **kwargs)

    # -- querying -------------------------------------------------------------

    def enable_tracing(self, tracer=None, max_spans: int | None = None):
        """Turn span tracing on after construction (idempotent; the
        :meth:`~repro.engine.Warehouse.enable_tracing` counterpart).
        One tracer is shared by the coordinator, the scatter-gather
        executor, and every shard warehouse, so a federated query's
        trace is a single connected tree. Returns the tracer."""
        from repro.obs import Tracer
        if tracer is not None:
            self.tracer = tracer
        elif self.tracer is None:
            self.tracer = Tracer(max_spans=max_spans)
        if max_spans is not None:
            self.tracer.max_spans = max_spans
        if self.tracer.metrics is None:
            self.tracer.metrics = self._metrics_sink
        self.executor.tracer = self.tracer
        self.catalog.set_tracer(self.tracer)
        return self.tracer

    def query(self, text: str,
              deadline_s: float | None = None) -> QueryResult:
        """Parse, check, plan, scatter, gather.

        ``deadline_s`` bounds the whole execution (the service maps
        ``X-Deadline-Ms`` here): shard subqueries still running when
        it passes are interrupted, and the answer degrades to the
        shards that made it, with ``result.failed_shards`` naming the
        ones that did not.

        On a traced federation, planning runs inside a ``plan`` span
        (parse/check/statistics refresh included) as a sibling of the
        executor's ``federated_query`` span, so a request trace reads
        handler → plan → scatter."""
        started = time.perf_counter()
        if self.tracer is None:
            plan = self.plan(text)
        else:
            with self.tracer.span("plan", query=text) as span:
                plan = self.plan(text)
                span.meta["fanout"] = plan.fanout
        result = self.executor.execute(plan, deadline_s=deadline_s)
        if self._metrics_sink is not None:
            self._metrics_sink.observe("federation.query_seconds",
                                       time.perf_counter() - started)
        return result

    def plan(self, text: str) -> FederatedPlan:
        """Parse, check and plan without executing (tests and the
        curious inspect pushdown/fan-out decisions here).

        With statistics collected, planning is cost-based; statistics
        gone stale (a shard's loader generation moved past the recorded
        one) auto-refresh first, so the pruner never acts on a proof
        that stopped being true."""
        ast = parse_query(text)
        check_query(ast, document_exists=self.document_exists,
                    dtd_for_source=self._dtd_for_source)
        self._refresh_stale_stats()
        return self.planner.plan(text, ast)

    def _refresh_stale_stats(self) -> None:
        """Re-analyze shards whose statistics no longer match their
        live loader generation. Only runs once statistics exist at all
        (`analyze` is the opt-in); unreachable shards are skipped —
        their records drop, which disables pruning for them."""
        if not self.statistics:
            return
        stale = self.statistics.stale_shards(self.catalog)
        if not stale:
            return
        self.statistics.collect(self.catalog, shard_names=stale)
        if self._metrics_sink is not None:
            self._metrics_sink.inc("federation.stats_refreshed",
                                   len(stale))
        self._persist_stats()

    def _persist_stats(self) -> None:
        if self.stats_path is not None:
            try:
                self.statistics.save(self.stats_path)
            except OSError:
                pass  # statistics are advisory; never fail the query

    # -- optimizer ------------------------------------------------------------

    def analyze(self, persist: bool = True) -> dict:
        """Collect optimizer statistics from every reachable shard
        (the ``xomatiq analyze`` verb). Returns the catalog summary;
        ``persist`` writes it to ``stats_path`` when one is set."""
        skipped = self.statistics.collect(self.catalog)
        if persist:
            self._persist_stats()
        summary = self.statistics.summary()
        if skipped:
            summary["shards_skipped"] = skipped
        return summary

    def optimizer_stats(self) -> dict:
        """JSON-ready optimizer state (the service's ``/stats`` block):
        the statistics-catalog summary plus the pushdown cutoffs."""
        summary = self.statistics.summary()
        summary["inlist_cutoff"] = INLIST_CUTOFF
        summary["bloom_fp_rate"] = BLOOM_FP_RATE
        summary["stats_path"] = (str(self.stats_path)
                                 if self.stats_path is not None else None)
        return summary

    # -- loading --------------------------------------------------------------

    def load_text(self, source: str, flat_text: str,
                  batch_size: int | None = None,
                  workers: int | None = None) -> dict[str, int]:
        """Load one release into the source's shard(s); returns
        per-shard document counts.

        A multi-shard route partitions the release into contiguous
        entry slices (first shard gets the first slice), preserving
        monolithic document order across the federation. Each shard's
        slice is also written to every replica of that shard, so a
        replica can answer for its primary byte-identically."""
        from repro.flatfile import parse_entries
        shards = self.catalog.shards_for(source)
        if not shards:
            raise ShardConfigError(
                f"source {source!r} is not routed to any shard "
                f"(assign it with `xomatiq shard assign`)")
        entries = list(parse_entries(flat_text))
        counts: dict[str, int] = {}
        for shard, chunk in zip(shards, _slices(entries, len(shards))):
            warehouse = self.catalog.warehouse(shard)
            counts[shard] = warehouse.load_entries(
                source, chunk, batch_size=batch_size, workers=workers)
            if self._metrics_sink is not None:
                self._metrics_sink.inc("federation.documents_loaded",
                                       counts[shard], shard=shard)
            for replica in self.catalog.replicas(shard):
                try:
                    self.catalog.warehouse(replica.name).load_entries(
                        source, chunk, batch_size=batch_size,
                        workers=workers)
                except ShardUnreachableError:
                    # a down replica just loses this slice; the primary
                    # still holds it, and health reports the replica
                    if self._metrics_sink is not None:
                        self._metrics_sink.inc(
                            "federation.replica_load_skipped",
                            backend=replica.name)
        return counts

    def load_corpus(self, corpus) -> dict[str, int]:
        """Load a synthetic corpus; returns per-source totals (the
        :meth:`~repro.engine.Warehouse.load_corpus` shape)."""
        return {source: sum(self.load_text(source, text).values())
                for source, text in corpus.texts().items()}

    # -- catalog / admin ------------------------------------------------------

    def _probe_backends(self, shard: str) -> list[str]:
        """Backend order for admin-path probes (stats, searches,
        document resolution): backends with an open breaker go last,
        so a probe reaches a healthy replica without first eating the
        dead primary's failure mode. They stay in the list — with
        every breaker open, trying is still better than lying."""
        backends = self.catalog.backends_for(shard)
        is_open = self.executor.breaker_is_open
        return ([b for b in backends if not is_open(b)]
                + [b for b in backends if is_open(b)])

    def document_exists(self, source: str,
                        collection: str | None) -> bool:
        """True when some shard holds documents of the address.

        Each shard is asked through its first *healthy* backend —
        replicas hold the same slice, so they answer for a dead
        primary. A shard with no healthy backend at all counts as
        "may hold it": the query then proceeds and degrades to
        partial results with a warning instead of failing the
        semantic check outright."""
        maybe = False
        for shard in self.catalog.shards_for(source):
            answered = False
            for backend in self._probe_backends(shard):
                try:
                    warehouse = self.catalog.warehouse(backend)
                    found = warehouse.document_exists(source, collection)
                except DEGRADABLE:
                    continue
                if found:
                    return True
                answered = True
                break
            if not answered:
                maybe = True
        return maybe

    def keyword_search(self, phrase: str, source: str | None = None,
                       limit: int = 50) -> list[dict]:
        """Federated keyword search: every reachable shard answers
        locally (:meth:`repro.engine.Warehouse.keyword_search`), the
        coordinator merges and re-ranks. Each hit carries its
        ``shard`` so ``GET /documents/{doc_id}?shard=...`` can fetch
        the document from the right warehouse. A shard whose primary
        is down answers through a replica (hits keep the *shard*
        name); shards with no healthy backend are skipped — partial
        results, same degradation contract as :meth:`query`."""
        hits: list[dict] = []
        for name in self.catalog.shard_names():
            for backend in self._probe_backends(name):
                try:
                    warehouse = self.catalog.warehouse(backend)
                    found = warehouse.keyword_search(phrase,
                                                     source=source,
                                                     limit=limit)
                except DEGRADABLE:
                    continue
                for hit in found:
                    hits.append({**hit, "shard": name})
                break
        hits.sort(key=lambda hit: (-hit["matches"], hit["shard"],
                                   hit["doc_id"]))
        return hits[:limit]

    def stats(self) -> dict[str, int]:
        """Aggregated warehouse stats summed across reachable shards
        (each answering through its first healthy backend), plus shard
        accounting (``shards``/``shards_unreachable``)."""
        out: dict[str, int] = {}
        unreachable = 0
        for name, stats in self.shard_stats().items():
            if "error" in stats:
                unreachable += 1
                continue
            for key, value in stats.items():
                out[key] = out.get(key, 0) + value
        out["shards"] = len(self.catalog.shard_names())
        out["shards_unreachable"] = unreachable
        return out

    def shard_stats(self) -> dict[str, dict]:
        """Per-shard stats from each shard's first healthy backend; a
        shard with none maps to ``{"error": reason}``."""
        out: dict[str, dict] = {}
        for name in self.catalog.shard_names():
            error: Exception | None = None
            for backend in self._probe_backends(name):
                try:
                    out[name] = self.catalog.warehouse(backend).stats()
                    break
                except DEGRADABLE as exc:
                    error = exc
            else:
                out[name] = {"error": str(error)}
        return out

    def health(self, stale_after_s: float | None = None) -> dict:
        """Federation health: every shard's own health report rolled
        up under one status, plus the routing table, cumulative
        shard-error counters, per-backend circuit-breaker states (with
        last-failure timestamps) and replica reachability. An open
        breaker warns; a shard whose replicas are *all* down fails —
        it promised redundancy and currently has none. ``format_health``
        renders the roll-up."""
        from repro.obs.health import (  # noqa: F401
            FAIL, OK, WARN, combine_statuses, format_health)
        checks: list[dict] = []
        shards: dict[str, dict] = {}
        stats: dict[str, int] = {}
        for name in self.catalog.shard_names():
            try:
                report = self.catalog.warehouse(name).health(
                    stale_after_s=stale_after_s) \
                    if stale_after_s is not None \
                    else self.catalog.warehouse(name).health()
            except DEGRADABLE as exc:
                shards[name] = {"status": "unreachable",
                                "error": str(exc)}
                checks.append({"name": f"shard:{name}", "status": WARN,
                               "detail": f"unreachable — {exc}"})
                continue
            shards[name] = report
            checks.append({
                "name": f"shard:{name}", "status": report["status"],
                "detail": f"{len(report['checks'])} checks, "
                          f"status {report['status']}"})
            for key, value in report["stats"].items():
                stats[key] = stats.get(key, 0) + value
        # replica coverage: a shard that was given replicas promised
        # redundancy; losing every one of them means the next primary
        # fault is unsurvivable, so that is a FAIL, not a warning.
        # Shards without replicas never made the promise and keep the
        # plain unreachable-warns contract above.
        replicas: dict[str, dict[str, str]] = {}
        for name in self.catalog.shard_names():
            specs = self.catalog.replicas(name)
            if not specs:
                continue
            states: dict[str, str] = {}
            for spec in specs:
                try:
                    self.catalog.warehouse(spec.name)
                    states[spec.name] = "ok"
                except ShardUnreachableError as exc:
                    states[spec.name] = f"unreachable — {exc}"
            replicas[name] = states
            up = sum(1 for state in states.values() if state == "ok")
            replica_status = OK if up == len(states) \
                else (WARN if up else FAIL)
            checks.append({
                "name": f"replicas:{name}", "status": replica_status,
                "detail": f"{up}/{len(states)} replica(s) reachable"
                          + ("" if up else " — redundancy lost")})
        # per-backend circuit breakers (lazily created by the executor
        # on first subquery; an open breaker means the backend is being
        # skipped until cooldown — degraded, not broken)
        breakers = self.executor.breaker_states()
        for backend, state in breakers.items():
            if state["state"] == "closed" \
                    and not state["consecutive_failures"]:
                continue
            last = state.get("last_failure_time")
            checks.append({
                "name": f"breaker:{backend}",
                "status": OK if state["state"] != "open" else WARN,
                "detail": f"circuit breaker {state['state']}"
                          + (f", last failure at {last:.0f}"
                             if last else "")
                          + ("" if state["state"] != "open" else
                             " — subqueries skipped until cooldown")})
        unrouted = [name for name in self.catalog.shard_names()
                    if not any(name in route for route in
                               self.catalog.sources().values())]
        checks.append({
            "name": "sources_routed",
            "status": OK if self.catalog.sources() else WARN,
            "detail": f"{len(self.catalog.sources())} source(s) routed"
                      + (f"; idle shards: {', '.join(unrouted)}"
                         if unrouted else "")})
        errors = {}
        if self._metrics_sink is not None:
            for labels, value in self._metrics_sink.counter_items(
                    "federation.shard_errors"):
                errors[labels.get("shard", "?")] = int(value)
        checks.append({
            "name": "shard_errors",
            "status": OK if not errors else WARN,
            "detail": "no shard failures recorded" if not errors else
                      ", ".join(f"{shard}: {count}" for shard, count
                                in sorted(errors.items()))})
        # a failing shard fails the federation; unreachable/idle warns
        status = combine_statuses(c["status"] for c in checks)
        return {"status": status, "checks": checks, "stats": stats,
                "shards": shards,
                "federation": {"sources": self.catalog.sources(),
                               "shard_errors": errors,
                               "breakers": breakers,
                               "replicas": replicas}}

    # -- document fetch -------------------------------------------------------

    def find_document_shard(self, doc_id: int) -> str | None:
        """The shard holding a document id, or None when no reachable
        shard has it. Doc ids are per-shard sequences, so the same id
        can exist on several shards — catalog order wins, which is
        deterministic; callers needing a specific shard pass it
        explicitly (the service keeps ``?shard=`` as an override).
        A shard whose primary is down is asked through its replicas
        (they hold the same documents)."""
        for name in self.catalog.shard_names():
            for backend in self._probe_backends(name):
                try:
                    warehouse = self.catalog.warehouse(backend)
                    rows = warehouse.backend.execute(
                        "SELECT doc_id FROM documents WHERE doc_id = ?",
                        (doc_id,))
                except DEGRADABLE:
                    continue
                if rows:
                    return name
                break
        return None

    def fetch_document(self, node) -> Document:
        """Reconstruct the document behind a federated binding (the
        binding knows its shard; a dead primary falls back to the
        shard's replicas, which hold identical documents)."""
        if not isinstance(node, ShardBoundNode):
            raise FederationError(
                "federated document fetch needs a ShardBoundNode "
                "binding from a federated QueryResult")
        last_exc: Exception | None = None
        for backend in self._probe_backends(node.shard):
            try:
                return self.catalog.warehouse(backend) \
                    .fetch_document(node)
            except DEGRADABLE as exc:
                last_exc = exc
        raise last_exc

    def fetch_document_xml(self, row: ResultRow, variable: str) -> str:
        """Serialized document behind one result row's variable."""
        try:
            node = row.bindings[variable]
        except KeyError:
            raise UnknownDocumentError(
                f"result row has no binding for ${variable}") from None
        return serialize(self.fetch_document(node))

    def close(self) -> None:
        """Release every catalog-owned shard warehouse."""
        self.catalog.close()

    # -- internals ------------------------------------------------------------

    def _dtd_for_source(self, source: str):
        if source in self.registry:
            return self.registry.create(source, validate=False).dtd
        return None


def _slices(entries: list, parts: int) -> list[list]:
    """Contiguous near-equal slices, earlier parts one longer."""
    base, extra = divmod(len(entries), parts)
    out = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        out.append(entries[start:start + size])
        start += size
    return out
