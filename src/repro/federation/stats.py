"""Per-shard statistics for the cost-based federation optimizer.

The rule-based :class:`~repro.federation.planner.FederationPlanner`
ships every shard's candidate bindings to the coordinator; E13 measured
the resulting ~3x coordinator tax on cross-shard joins. Cost-based
planning needs to know what each shard holds, and this module is that
knowledge: a :class:`StatisticsCatalog` holding one
:class:`ShardStatistics` record per shard —

* table cardinalities and per-source document counts (baseline sizes),
* per-tag element counts (binding-path cardinality estimates),
* a keyword-token document-frequency map sampled from the inverted
  index (``contains()`` selectivity; a ``complete`` flag marks maps
  that enumerate *every* token, which is what makes absence a proof
  the shard-pruner may act on),
* per-tag and per-attribute value histograms — row count, distinct
  count, most-common values — sampled from ``text_values`` /
  ``attributes`` (equality/join selectivity),
* latency and row-rate EWMAs fed at run time from the same
  observations that drive ``federation.shard_seconds`` and
  ``federation.rows_shipped``.

Collection uses only portable SQL (no ``COUNT(DISTINCT)``, ``HAVING``
or subqueries) so it runs unchanged on SQLite and minidb shards; the
distinct-counting happens in Python over capped samples, and every
capped sample is flagged so the cost model knows an estimate is based
on a prefix, and the pruner knows not to treat absence as proof.

The catalog persists as JSON next to the shard map
(``shards.json`` → ``shards.stats.json``) and records each shard's
loader *generation* at collection time. A live shard whose generation
moved on makes the record stale — consumers re-collect (the facade
auto-refreshes on the query path) rather than plan on fiction.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

STATS_VERSION = 1

#: keep at most this many tokens in the document-frequency map; a map
#: that had to drop tokens loses its ``complete`` flag (absence stops
#: being a proof)
TOKEN_CAP = 4096

#: cap on sampled value rows per table scan (text_values / attributes)
VALUE_SAMPLE_CAP = 200_000

#: most-common values kept per tag / attribute histogram
MCV_K = 8

#: EWMA smoothing factor for latency / row-rate observations
EWMA_ALPHA = 0.2


def default_stats_path(map_path) -> Path:
    """Where the catalog lives for a given shard map:
    ``shards.json`` → ``shards.stats.json``."""
    return Path(map_path).with_suffix(".stats.json")


@dataclass
class ValueHistogram:
    """Value distribution of one tag's text values (or one attribute's
    values): enough to price equality predicates and joins."""

    rows: int = 0
    distinct: int = 0
    mcvs: dict[str, int] = field(default_factory=dict)
    sampled: bool = False       # True when the scan hit VALUE_SAMPLE_CAP

    def equality_selectivity(self, literal: str) -> float:
        """Fraction of rows expected to equal ``literal``."""
        if self.rows <= 0:
            return 0.0
        if literal in self.mcvs:
            return self.mcvs[literal] / self.rows
        if self.distinct > 0:
            return 1.0 / self.distinct
        return 1.0

    def to_dict(self) -> dict:
        return {"rows": self.rows, "distinct": self.distinct,
                "mcvs": dict(self.mcvs), "sampled": self.sampled}

    @classmethod
    def from_dict(cls, raw: dict) -> "ValueHistogram":
        return cls(rows=int(raw.get("rows", 0)),
                   distinct=int(raw.get("distinct", 0)),
                   mcvs={str(k): int(v)
                         for k, v in raw.get("mcvs", {}).items()},
                   sampled=bool(raw.get("sampled", False)))

    @classmethod
    def from_values(cls, values, sampled: bool) -> "ValueHistogram":
        counts: dict[str, int] = {}
        rows = 0
        for value in values:
            rows += 1
            counts[value] = counts.get(value, 0) + 1
        top = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        return cls(rows=rows, distinct=len(counts),
                   mcvs=dict(top[:MCV_K]), sampled=sampled)


@dataclass
class ShardStatistics:
    """Everything the cost model knows about one shard."""

    name: str
    generation: int = 0
    collected_at: float = 0.0
    tables: dict[str, int] = field(default_factory=dict)
    documents: dict[str, int] = field(default_factory=dict)
    #: source → tag → element count (per source, so two sources on one
    #: shard that share a tag name don't inflate each other's estimates)
    tags: dict[str, dict[str, int]] = field(default_factory=dict)
    token_docs: dict[str, int] = field(default_factory=dict)
    tokens_complete: bool = False
    values: dict[str, ValueHistogram] = field(default_factory=dict)
    attributes: dict[str, ValueHistogram] = field(default_factory=dict)
    #: runtime EWMAs, fed from executor observations (not collection)
    ewma_seconds: float | None = None
    ewma_rows: float | None = None
    observations: int = 0
    #: True for records deserialized from disk: their generation came
    #: from another process (generations are per-process counters), so
    #: the first staleness check validates by document count and then
    #: rebases the generation onto the live warehouse
    loaded: bool = False

    @property
    def total_documents(self) -> int:
        return sum(self.documents.values())

    def source_documents(self, source: str) -> int:
        return self.documents.get(source, 0)

    def tag_count(self, source: str, tag: str) -> int | None:
        """Elements named ``tag`` inside ``source``'s documents, or
        None when the tag never occurs there."""
        return self.tags.get(source, {}).get(tag)

    def token_selectivity(self, token: str) -> float:
        """Fraction of the shard's documents containing ``token``."""
        docs = self.total_documents
        if docs <= 0:
            return 0.0
        if token in self.token_docs:
            return min(1.0, self.token_docs[token] / docs)
        if self.tokens_complete:
            return 0.0
        return 1.0 / docs    # unknown under a capped map: assume rare

    def proves_token_absent(self, token: str) -> bool:
        """True only when the complete token map proves no document on
        this shard contains ``token`` — the pruner's bar is proof, not
        an estimate."""
        return self.tokens_complete and token not in self.token_docs

    def record_observation(self, seconds: float, rows: int) -> None:
        """Fold one subquery observation into the latency/row EWMAs."""
        if self.ewma_seconds is None:
            self.ewma_seconds = seconds
            self.ewma_rows = float(rows)
        else:
            self.ewma_seconds += EWMA_ALPHA * (seconds - self.ewma_seconds)
            self.ewma_rows += EWMA_ALPHA * (rows - self.ewma_rows)
        self.observations += 1

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "generation": self.generation,
            "collected_at": self.collected_at,
            "tables": dict(self.tables),
            "documents": dict(self.documents),
            "tags": {source: dict(tags)
                     for source, tags in self.tags.items()},
            "tokens": {"map": dict(self.token_docs),
                       "complete": self.tokens_complete},
            "values": {tag: h.to_dict() for tag, h in self.values.items()},
            "attributes": {name: h.to_dict()
                           for name, h in self.attributes.items()},
            "ewma": {"seconds": self.ewma_seconds,
                     "rows": self.ewma_rows,
                     "observations": self.observations},
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "ShardStatistics":
        tokens = raw.get("tokens", {})
        ewma = raw.get("ewma", {})
        return cls(
            name=str(raw["name"]),
            generation=int(raw.get("generation", 0)),
            collected_at=float(raw.get("collected_at", 0.0)),
            tables={str(k): int(v)
                    for k, v in raw.get("tables", {}).items()},
            documents={str(k): int(v)
                       for k, v in raw.get("documents", {}).items()},
            tags={str(source): {str(tag): int(count)
                                for tag, count in tags.items()}
                  for source, tags in raw.get("tags", {}).items()},
            token_docs={str(k): int(v)
                        for k, v in tokens.get("map", {}).items()},
            tokens_complete=bool(tokens.get("complete", False)),
            values={str(tag): ValueHistogram.from_dict(h)
                    for tag, h in raw.get("values", {}).items()},
            attributes={str(name): ValueHistogram.from_dict(h)
                        for name, h in raw.get("attributes", {}).items()},
            ewma_seconds=ewma.get("seconds"),
            ewma_rows=ewma.get("rows"),
            observations=int(ewma.get("observations", 0)),
            loaded=True,
        )


def collect_shard_statistics(name: str, warehouse) -> ShardStatistics:
    """ANALYZE one shard: portable scans over the generic schema."""
    backend = warehouse.backend
    stats = ShardStatistics(name=name,
                            generation=warehouse.loader.generation,
                            collected_at=time.time())

    from repro.relational.schema import TABLE_NAMES
    for table in TABLE_NAMES:
        stats.tables[table] = backend.execute(
            f"SELECT COUNT(*) FROM {table}")[0][0]
    for source, count in backend.execute(
            "SELECT source, COUNT(*) FROM documents GROUP BY source"):
        stats.documents[source] = count
    for source in stats.documents:
        stats.tags[source] = {
            tag: count for tag, count in backend.execute(
                "SELECT e.tag, COUNT(*) FROM documents d, elements e "
                "WHERE e.doc_id = d.doc_id AND d.source = ? "
                "GROUP BY e.tag", (source,))}

    # token document frequency: distinct (token, doc) pairs, counted
    # here (COUNT(DISTINCT) is not portable to minidb)
    token_docs: dict[str, int] = {}
    for token, __ in backend.execute(
            "SELECT DISTINCT token, doc_id FROM keywords"):
        token_docs[token] = token_docs.get(token, 0) + 1
    if len(token_docs) > TOKEN_CAP:
        top = sorted(token_docs.items(),
                     key=lambda item: (-item[1], item[0]))[:TOKEN_CAP]
        stats.token_docs = dict(top)
        stats.tokens_complete = False
    else:
        stats.token_docs = token_docs
        stats.tokens_complete = True

    # per-tag text-value histograms (capped scan)
    rows = backend.execute(
        "SELECT e.tag, t.value FROM elements e, text_values t "
        "WHERE t.doc_id = e.doc_id AND t.node_id = e.node_id "
        f"LIMIT {VALUE_SAMPLE_CAP}")
    sampled = len(rows) >= VALUE_SAMPLE_CAP
    by_tag: dict[str, list[str]] = {}
    for tag, value in rows:
        by_tag.setdefault(tag, []).append(value)
    stats.values = {tag: ValueHistogram.from_values(values, sampled)
                    for tag, values in by_tag.items()}

    rows = backend.execute(
        f"SELECT name, value FROM attributes LIMIT {VALUE_SAMPLE_CAP}")
    sampled = len(rows) >= VALUE_SAMPLE_CAP
    by_name: dict[str, list[str]] = {}
    for attr_name, value in rows:
        by_name.setdefault(attr_name, []).append(value)
    stats.attributes = {name_: ValueHistogram.from_values(values, sampled)
                        for name_, values in by_name.items()}
    return stats


@dataclass
class StatisticsCatalog:
    """The federation's statistics: one record per analyzed shard."""

    shards: dict[str, ShardStatistics] = field(default_factory=dict)
    collected_at: float = 0.0

    def __bool__(self) -> bool:
        return bool(self.shards)

    def shard(self, name: str) -> ShardStatistics | None:
        return self.shards.get(name)

    # -- collection ----------------------------------------------------------

    def collect(self, catalog, shard_names=None) -> list[str]:
        """(Re-)analyze shards of a :class:`ShardCatalog`; unreachable
        shards are skipped (their stale records dropped so the planner
        never prunes on dead numbers). Returns the skipped names."""
        from repro.errors import ShardUnreachableError, StorageError
        names = list(shard_names) if shard_names is not None \
            else list(catalog.shard_names())
        skipped: list[str] = []
        for name in names:
            previous = self.shards.get(name)
            try:
                warehouse = catalog.warehouse(name)
                record = collect_shard_statistics(name, warehouse)
            except (ShardUnreachableError, StorageError):
                # gone at open time or dying mid-statement: either way
                # the shard is not analyzable right now
                self.shards.pop(name, None)
                skipped.append(name)
                continue
            if previous is not None:
                # runtime EWMAs survive re-analysis
                record.ewma_seconds = previous.ewma_seconds
                record.ewma_rows = previous.ewma_rows
                record.observations = previous.observations
            self.shards[name] = record
        self.collected_at = time.time()
        return skipped

    def stale_shards(self, catalog) -> list[str]:
        """Live shards whose statistics no longer describe them:
        never analyzed, loader generation moved on (in-process loads),
        or the document row count changed (loads from *another*
        process — generations are per-process, so the count probe is
        what catches a shard modified behind our back). Unreachable
        shards are not reported — staleness is only decidable against
        a warehouse we can open."""
        from repro.errors import ShardUnreachableError, StorageError
        stale: list[str] = []
        for name in catalog.shard_names():
            record = self.shards.get(name)
            try:
                warehouse = catalog.warehouse(name)
                if record is None:
                    stale.append(name)
                    continue
                documents = warehouse.backend.execute(
                    "SELECT COUNT(*) FROM documents")[0][0]
            except (ShardUnreachableError, StorageError):
                continue
            if record.loaded:
                # disk record from another process: validate by count,
                # then adopt the live generation for in-process checks
                if documents == record.tables.get("documents"):
                    record.generation = warehouse.loader.generation
                    record.loaded = False
                else:
                    stale.append(name)
                continue
            if warehouse.loader.generation != record.generation or \
                    documents != record.tables.get("documents", documents):
                stale.append(name)
        return stale

    def record_observation(self, shard: str, seconds: float,
                           rows: int) -> None:
        """Feed one runtime subquery observation into a shard's EWMAs
        (no-op for unanalyzed shards)."""
        record = self.shards.get(shard)
        if record is not None:
            record.record_observation(seconds, rows)

    # -- persistence ---------------------------------------------------------

    def to_dict(self) -> dict:
        return {"version": STATS_VERSION,
                "collected_at": self.collected_at,
                "shards": {name: record.to_dict()
                           for name, record in self.shards.items()}}

    @classmethod
    def from_dict(cls, raw: dict) -> "StatisticsCatalog":
        version = raw.get("version")
        if version != STATS_VERSION:
            raise ValueError(
                f"unsupported statistics catalog version {version!r}")
        return cls(
            shards={str(name): ShardStatistics.from_dict(record)
                    for name, record in raw.get("shards", {}).items()},
            collected_at=float(raw.get("collected_at", 0.0)))

    def save(self, path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2,
                                         sort_keys=True))

    @classmethod
    def load(cls, path) -> "StatisticsCatalog":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def summary(self) -> dict:
        """JSON-ready operator view (`xomatiq analyze`, `/stats`)."""
        return {
            "shards_analyzed": len(self.shards),
            "collected_at": self.collected_at,
            "shards": {
                name: {
                    "generation": record.generation,
                    "documents": record.total_documents,
                    "elements": record.tables.get("elements", 0),
                    "tokens": len(record.token_docs),
                    "tokens_complete": record.tokens_complete,
                    "ewma_seconds": record.ewma_seconds,
                    "observations": record.observations,
                }
                for name, record in sorted(self.shards.items())
            },
        }
