"""Chaos harness for the federated query path.

PR 4's :class:`~repro.datahounds.faults.FaultInjectingRepository` made
the *harvest* plane's failure modes reproducible; this module does the
same for the *query* plane, one layer lower: a
:class:`FaultInjectingBackend` wraps any relational
:class:`~repro.relational.backend.Backend` and injects faults per
**statement**, which is exactly where a real shard dies mid-query —
after the connection opened, inside the SELECT.

Fault kinds:

* ``error`` — the statement raises :class:`StorageError` (a crashed or
  restarting shard process),
* ``stall`` — the statement blackholes: it blocks (on an interruptible
  event, not a bare sleep) until it is cancelled through
  :meth:`FaultInjectingBackend.interrupt` — the executor's straggler
  cancellation — or the ``stall_s`` safety valve elapses; either way
  it raises :class:`StorageError`, never returning rows,
* ``slow`` — the statement sleeps ``slow_s`` first and then succeeds
  (a brown-out: slow enough to trip timeouts and hedges, not dead).

Every decision comes from per-backend seeded RNGs or explicit scripts
(:class:`ChaosPlan`, the FaultPlan discipline), so a given plan replays
the same fault sequence every run — chaos you can put in a regression
test. On top of the plan, :meth:`FaultInjectingBackend.force` pins an
outcome at runtime (``force("error")`` is the E16 bench's mid-run
shard kill; :meth:`restore` revives it).

Wiring one into a live warehouse::

    backend = inject_faults(shard_warehouse, plan, name="s0")
    ...
    backend.force("error")      # kill the shard mid-run
    backend.restore()           # and bring it back
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass

from repro.errors import StorageError

#: every fault kind a plan can inject (``ok`` = no fault)
CHAOS_KINDS = ("error", "stall", "slow")


@dataclass
class ChaosSpec:
    """Per-backend fault configuration.

    ``script`` is consumed first — an explicit outcome per statement;
    once exhausted, outcomes are drawn from the rates using the
    backend's seeded RNG. Rates are cumulative-checked in the order
    error, stall, slow and must sum to <= 1.
    """

    error_rate: float = 0.0
    stall_rate: float = 0.0
    slow_rate: float = 0.0
    #: safety valve for ``stall`` outcomes: how long the blackhole
    #: blocks before erroring on its own (interrupts cut it short)
    stall_s: float = 30.0
    #: injected latency for ``slow`` outcomes, seconds
    slow_s: float = 0.05
    script: tuple[str, ...] = ()

    def __post_init__(self):
        total = self.error_rate + self.stall_rate + self.slow_rate
        if total > 1.0 + 1e-9:
            raise ValueError(f"fault rates sum to {total}, must be <= 1")
        for kind in self.script:
            if kind not in CHAOS_KINDS and kind != "ok":
                raise ValueError(f"unknown scripted fault {kind!r}")


class ChaosPlan:
    """Seedable, per-backend fault schedule.

    One RNG per backend (seeded from ``(seed, backend)``) keeps each
    backend's fault sequence independent of how statements interleave
    across backends — scatter order never changes what a backend
    injects. :meth:`reset` re-arms scripts and RNGs so the same plan
    drives a byte-identical second run.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._specs: dict[str, ChaosSpec] = {}
        self._cursors: dict[str, int] = {}
        self._rngs: dict[str, random.Random] = {}
        #: injected fault counts: (backend, kind) -> count
        self.injected: dict[tuple[str, str], int] = {}

    def add_backend(self, backend: str = "*", **spec_kwargs) -> "ChaosPlan":
        """Configure faults for one backend (``"*"`` = any backend
        without its own spec); returns self for chaining."""
        self._specs[backend] = ChaosSpec(**spec_kwargs)
        return self

    def fail_then_succeed(self, backend: str, failures: int,
                          kind: str = "error") -> "ChaosPlan":
        """Script ``failures`` consecutive faults, then clean
        statements."""
        self._specs[backend] = ChaosSpec(script=(kind,) * failures)
        return self

    def spec_for(self, backend: str) -> ChaosSpec | None:
        """The spec governing one backend (wildcard fallback)."""
        spec = self._specs.get(backend)
        return spec if spec is not None else self._specs.get("*")

    def next_outcome(self, backend: str) -> str:
        """The fault (or ``"ok"``) for this backend's next statement."""
        spec = self.spec_for(backend)
        if spec is None:
            return "ok"
        cursor = self._cursors.get(backend, 0)
        if cursor < len(spec.script):
            self._cursors[backend] = cursor + 1
            outcome = spec.script[cursor]
        else:
            roll = self._rng(backend).random()
            outcome = "ok"
            threshold = 0.0
            for kind, rate in (("error", spec.error_rate),
                               ("stall", spec.stall_rate),
                               ("slow", spec.slow_rate)):
                threshold += rate
                if roll < threshold:
                    outcome = kind
                    break
        if outcome != "ok":
            key = (backend, outcome)
            self.injected[key] = self.injected.get(key, 0) + 1
        return outcome

    def reset(self) -> None:
        """Re-arm scripts, RNGs and counts for a replay run."""
        self._cursors.clear()
        self._rngs.clear()
        self.injected.clear()

    def _rng(self, backend: str) -> random.Random:
        rng = self._rngs.get(backend)
        if rng is None:
            rng = self._rngs[backend] = random.Random(
                f"{self.seed}:{backend}")
        return rng


class FaultInjectingBackend:
    """A :class:`~repro.relational.backend.Backend` wrapper that
    injects :class:`ChaosPlan` faults per executed statement.

    ``interrupt()`` mirrors the SQLite contract the executor's
    straggler cancellation relies on: it breaks into an in-flight
    stalled statement (which then raises :class:`StorageError`) and is
    forwarded to the wrapped backend so a real running statement
    aborts too. Everything else delegates verbatim — the wrapper can
    sit above or below :class:`~repro.obs.backend.InstrumentedBackend`.
    """

    def __init__(self, inner, plan: ChaosPlan | None = None,
                 name: str | None = None, sleep=time.sleep):
        self.inner = inner
        self.plan = plan
        self.backend = name if name is not None \
            else getattr(inner, "name", "backend")
        self.sleep = sleep
        self._forced: str | None = None
        self._interrupted = threading.Event()
        #: injected fault counts by kind (plan- and force-driven)
        self.injected: dict[str, int] = {}

    @property
    def name(self) -> str:
        """The wrapped engine's identifier."""
        return self.inner.name

    # -- runtime fault control ----------------------------------------------

    def force(self, kind: str) -> None:
        """Pin every statement to one outcome until :meth:`restore`
        (``force("error")`` = kill the shard; ``force("stall")`` =
        blackhole it)."""
        if kind not in CHAOS_KINDS:
            raise ValueError(f"unknown forced fault {kind!r}")
        self._forced = kind

    def restore(self) -> None:
        """Lift a forced outcome; the plan (if any) resumes."""
        self._forced = None

    # -- Backend protocol ----------------------------------------------------

    def execute(self, sql, params=()):
        """Forward one statement through the fault schedule."""
        self._interrupted.clear()
        outcome = self._outcome()
        if outcome == "error":
            raise StorageError(
                f"chaos: backend {self.backend!r} injected error")
        if outcome == "stall":
            spec = self.plan.spec_for(self.backend) if self.plan else None
            budget = spec.stall_s if spec is not None else 30.0
            if self._interrupted.wait(timeout=budget):
                raise StorageError(
                    f"chaos: backend {self.backend!r} stalled "
                    f"statement interrupted")
            raise StorageError(
                f"chaos: backend {self.backend!r} stalled past its "
                f"{budget}s safety valve")
        if outcome == "slow":
            spec = self.plan.spec_for(self.backend) if self.plan else None
            self.sleep(spec.slow_s if spec is not None else 0.05)
        return self.inner.execute(sql, params)

    def executemany(self, sql, params_seq):
        """Loads stay clean: chaos targets the query path, and a
        corrupted load would break the byte-identity oracle the chaos
        experiments assert against."""
        return self.inner.executemany(sql, params_seq)

    def commit(self) -> None:
        """Delegate."""
        self.inner.commit()

    def interrupt(self) -> None:
        """Cancel an in-flight stalled statement, then forward to the
        wrapped backend (lock-free, like the SQLite original)."""
        self._interrupted.set()
        forward = getattr(self.inner, "interrupt", None)
        if forward is not None:
            forward()

    def close(self) -> None:
        """Delegate."""
        self.inner.close()

    def __getattr__(self, name: str):
        """Backend-specific extras pass straight through."""
        return getattr(self.inner, name)

    # -- internals -----------------------------------------------------------

    def _outcome(self) -> str:
        outcome = self._forced
        if outcome is None and self.plan is not None:
            outcome = self.plan.next_outcome(self.backend)
        if outcome is None:
            outcome = "ok"
        if outcome != "ok":
            self.injected[outcome] = self.injected.get(outcome, 0) + 1
        return outcome


def inject_faults(warehouse, plan: ChaosPlan | None = None,
                  name: str | None = None,
                  sleep=time.sleep) -> FaultInjectingBackend:
    """Swap a live warehouse's backend for a fault-injecting wrapper
    (loader included, so generations stay consistent); returns the
    wrapper for runtime ``force``/``restore`` control."""
    wrapper = FaultInjectingBackend(
        warehouse.backend, plan=plan,
        name=name or getattr(warehouse, "shard_name", None), sleep=sleep)
    warehouse.backend = wrapper
    warehouse.loader.backend = wrapper
    return wrapper
