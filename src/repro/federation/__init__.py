"""Federated query layer: sharded warehouses, scatter-gather joins.

The paper runs every source inside one Oracle instance; the related
mediator systems (YeastMed, HepToX in PAPERS.md) argue the realistic
deployment is the opposite — each source in its own store, queried
through one facade. This package is that deployment:

* :class:`~repro.federation.catalog.ShardCatalog` — shard registry +
  source→shard routing (JSON shard-map file, ``xomatiq shard`` verbs),
* :class:`~repro.federation.planner.FederationPlanner` — splits one
  XomatiQ query into per-shard single-source subplans (predicates,
  ``contains()``/``seqcontains()`` probes and projections pushed down)
  plus coordinator-side join atoms,
* :class:`~repro.federation.executor.ScatterGatherExecutor` — runs
  shard subqueries concurrently, hash-joins the shipped bindings and
  reproduces monolithic result order (and byte-identical XML),
* :class:`~repro.federation.facade.FederatedXomatiQ` — the
  warehouse-shaped facade over all of it,
* :class:`~repro.federation.stats.StatisticsCatalog` +
  :class:`~repro.federation.costs.CostModel` — the cost-based
  optimizer: per-shard statistics (``xomatiq analyze``), shard
  pruning, join ordering and semi-join/Bloom pushdown.

See docs/federation.md for architecture, pushdown rules and failure
semantics.
"""

from repro.federation.catalog import ShardCatalog, ShardSpec, shard_of
from repro.federation.chaos import (
    ChaosPlan,
    ChaosSpec,
    FaultInjectingBackend,
    inject_faults,
)
from repro.federation.costs import BloomFilter, CostModel
from repro.federation.executor import (
    FaultPolicy,
    ScatterGatherExecutor,
    ShardBoundNode,
)
from repro.federation.facade import FederatedXomatiQ
from repro.federation.planner import (
    FederatedPlan,
    FederationPlanner,
    SemiJoinPushdown,
    ShardSubPlan,
)
from repro.federation.stats import (
    ShardStatistics,
    StatisticsCatalog,
    default_stats_path,
)

__all__ = [
    "BloomFilter",
    "ChaosPlan",
    "ChaosSpec",
    "CostModel",
    "FaultInjectingBackend",
    "inject_faults",
    "FaultPolicy",
    "FederatedPlan",
    "FederatedXomatiQ",
    "FederationPlanner",
    "ScatterGatherExecutor",
    "SemiJoinPushdown",
    "ShardBoundNode",
    "ShardCatalog",
    "ShardSpec",
    "ShardStatistics",
    "ShardSubPlan",
    "StatisticsCatalog",
    "default_stats_path",
    "shard_of",
]
