"""Federated query layer: sharded warehouses, scatter-gather joins.

The paper runs every source inside one Oracle instance; the related
mediator systems (YeastMed, HepToX in PAPERS.md) argue the realistic
deployment is the opposite — each source in its own store, queried
through one facade. This package is that deployment:

* :class:`~repro.federation.catalog.ShardCatalog` — shard registry +
  source→shard routing (JSON shard-map file, ``xomatiq shard`` verbs),
* :class:`~repro.federation.planner.FederationPlanner` — splits one
  XomatiQ query into per-shard single-source subplans (predicates,
  ``contains()``/``seqcontains()`` probes and projections pushed down)
  plus coordinator-side join atoms,
* :class:`~repro.federation.executor.ScatterGatherExecutor` — runs
  shard subqueries concurrently, hash-joins the shipped bindings and
  reproduces monolithic result order (and byte-identical XML),
* :class:`~repro.federation.facade.FederatedXomatiQ` — the
  warehouse-shaped facade over all of it.

See docs/federation.md for architecture, pushdown rules and failure
semantics.
"""

from repro.federation.catalog import ShardCatalog, ShardSpec
from repro.federation.executor import ScatterGatherExecutor, ShardBoundNode
from repro.federation.facade import FederatedXomatiQ
from repro.federation.planner import (
    FederatedPlan,
    FederationPlanner,
    ShardSubPlan,
)

__all__ = [
    "FederatedPlan",
    "FederatedXomatiQ",
    "FederationPlanner",
    "ScatterGatherExecutor",
    "ShardBoundNode",
    "ShardCatalog",
    "ShardSpec",
    "ShardSubPlan",
]
