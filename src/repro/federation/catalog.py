"""Shard catalog: which warehouse shard holds which source.

The paper's "join across databases" mode is simulated in the seed by
loading every source into one warehouse. The federation layer keeps
each source in its own store — the shape HepToX (peer-to-peer
heterogeneous XML stores) and YeastMed (a mediator over distributed
biological sources) both argue for — and this catalog is the routing
table: shard name → backend spec, source name → ordered shard list.

A source mapped to **one** shard lives there whole; a source mapped to
several shards is horizontally partitioned — contiguous entry slices
in catalog order (see :meth:`repro.federation.facade.FederatedXomatiQ.
load_text`), which is what lets the coordinator reproduce monolithic
document order when merging.

The catalog round-trips through a small JSON registry file
(``xomatiq shard`` verbs manage it)::

    {
      "version": 1,
      "shards":  {"s0": {"path": "s0.sqlite", "backend": "sqlite"},
                  "s1": {"path": "s1.sqlite", "backend": "sqlite"}},
      "sources": {"hlx_enzyme": ["s0"],
                  "hlx_embl":   ["s1"],
                  "hlx_sprot":  ["s0", "s1"]}
    }

Warehouses open lazily on first use; a shard whose database file has
gone missing raises :class:`ShardUnreachableError` *at open time*, and
the scatter-gather executor turns that into a partial-results warning
rather than a hard failure.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ShardConfigError, ShardUnreachableError

CATALOG_VERSION = 1

#: in-memory sqlite marker (tests and benchmarks shard without files)
MEMORY_PATH = ":memory:"


@dataclass(frozen=True)
class ShardSpec:
    """One shard's backend coordinates.

    ``latency_s`` models the shard's access round-trip (a remote
    shard's network hop), in the same injected-delay style as the
    harvest fault plan's ``stall`` outcome: the scatter-gather
    executor sleeps it once per shard subquery. Local file/memory
    shards default to 0.0; benchmarks (E13) and latency experiments
    set it to measure what concurrent scatter buys over sequential
    shard visits.
    """

    name: str
    path: str = MEMORY_PATH
    backend: str = "sqlite"
    latency_s: float = 0.0

    def to_dict(self) -> dict:
        """JSON-ready form for the registry file."""
        data = {"path": self.path, "backend": self.backend}
        if self.latency_s:
            data["latency_s"] = self.latency_s
        return data


#: separates a shard name from a replica ordinal in backend names
#: (``s0#r1`` = second replica of shard ``s0``); reserved in shard names
REPLICA_SEP = "#"


def shard_of(backend_name: str) -> str:
    """The shard a backend name belongs to (``s0#r1`` → ``s0``)."""
    return backend_name.split(REPLICA_SEP, 1)[0]


class ShardCatalog:
    """Shard registry + source→shard routing + lazy warehouse pool.

    The catalog owns the warehouses it opens (:meth:`close` releases
    them); warehouses attached ready-made via :meth:`attach` are left
    to their creators.
    """

    def __init__(self, metrics=None):
        #: metrics sink handed to every warehouse this catalog opens
        #: (None = the process-wide default registry); the federated
        #: facade aligns this with its own registry so shard-level and
        #: coordinator-level metrics land in one place
        self.metrics = metrics
        #: shared tracer handed to every shard warehouse (set via
        #: :meth:`set_tracer`), so shard-side query spans and SQL
        #: statement records land in the *coordinator's* span tree
        #: instead of per-shard orphan tracers
        self.tracer = None
        self._specs: dict[str, ShardSpec] = {}
        #: shard name → ordered replica specs (replica backend names
        #: are derived: ``<shard>#r<ordinal>``)
        self._replicas: dict[str, list[ShardSpec]] = {}
        self._sources: dict[str, list[str]] = {}
        self._warehouses: dict[str, object] = {}
        self._owned: set[str] = set()

    # -- registration --------------------------------------------------------

    def add_shard(self, name: str, path: str = MEMORY_PATH,
                  backend: str = "sqlite",
                  latency_s: float = 0.0) -> ShardSpec:
        """Register a shard; returns its spec."""
        if not name:
            raise ShardConfigError("shard name must be non-empty")
        if REPLICA_SEP in name:
            raise ShardConfigError(
                f"shard name {name!r} may not contain {REPLICA_SEP!r} "
                f"(reserved for replica backend names)")
        if name in self._specs:
            raise ShardConfigError(f"shard {name!r} already registered")
        if backend not in ("sqlite", "minidb"):
            raise ShardConfigError(
                f"shard {name!r}: unknown backend {backend!r} "
                f"(expected sqlite or minidb)")
        if latency_s < 0:
            raise ShardConfigError(
                f"shard {name!r}: latency_s must be >= 0")
        spec = ShardSpec(name=name, path=str(path), backend=backend,
                         latency_s=latency_s)
        self._specs[name] = spec
        return spec

    def attach(self, name: str, warehouse) -> None:
        """Register a shard backed by an already-open warehouse (tests
        and benchmarks build in-memory shards up front)."""
        if name in self._specs:
            raise ShardConfigError(f"shard {name!r} already registered")
        self._specs[name] = ShardSpec(name=name, path=MEMORY_PATH)
        self._warehouses[name] = warehouse
        if not getattr(warehouse, "shard_name", ""):
            warehouse.shard_name = name
        if self.tracer is not None:
            warehouse.enable_tracing(self.tracer)

    def add_replica(self, shard: str, path: str = MEMORY_PATH,
                    backend: str = "sqlite",
                    latency_s: float = 0.0) -> ShardSpec:
        """Register a replica backend for an existing shard.

        The replica gets a derived backend name (``<shard>#r<n>``) and
        holds the *same* data as its primary (the facade's loader
        writes every entry slice to the primary and all its replicas),
        so the executor can fail a subquery over to it — or hedge onto
        it — without changing the answer.
        """
        if shard not in self._specs:
            raise ShardConfigError(
                f"replica for unknown shard {shard!r}")
        if backend not in ("sqlite", "minidb"):
            raise ShardConfigError(
                f"replica of {shard!r}: unknown backend {backend!r} "
                f"(expected sqlite or minidb)")
        if latency_s < 0:
            raise ShardConfigError(
                f"replica of {shard!r}: latency_s must be >= 0")
        ordinal = len(self._replicas.get(shard, []))
        spec = ShardSpec(name=f"{shard}{REPLICA_SEP}r{ordinal}",
                         path=str(path), backend=backend,
                         latency_s=latency_s)
        self._replicas.setdefault(shard, []).append(spec)
        return spec

    def attach_replica(self, shard: str, warehouse) -> ShardSpec:
        """Register a replica backed by an already-open warehouse
        (tests and benchmarks build in-memory replicas up front)."""
        spec = self.add_replica(shard)
        self._warehouses[spec.name] = warehouse
        if not getattr(warehouse, "shard_name", ""):
            warehouse.shard_name = spec.name
        if self.tracer is not None:
            warehouse.enable_tracing(self.tracer)
        return spec

    def replicas(self, shard: str) -> list[ShardSpec]:
        """Ordered replica specs of one shard ([] when none)."""
        return list(self._replicas.get(shard, []))

    def backends_for(self, shard: str) -> list[str]:
        """All backend names able to answer for a shard: the primary
        first (it is the write target and the fast path), then its
        replicas in registration order."""
        if shard not in self._specs:
            raise ShardConfigError(f"unknown shard {shard!r}")
        return [shard] + [spec.name
                          for spec in self._replicas.get(shard, [])]

    def assign(self, source: str, *shards: str) -> None:
        """Route a source to one shard (whole) or several (horizontally
        partitioned in the given order); replaces any prior route."""
        if not shards:
            raise ShardConfigError(
                f"source {source!r} needs at least one shard")
        for shard in shards:
            if shard not in self._specs:
                raise ShardConfigError(
                    f"source {source!r} routed to unknown shard {shard!r}")
        if len(set(shards)) != len(shards):
            raise ShardConfigError(
                f"source {source!r} routed to the same shard twice")
        self._sources[source] = list(shards)

    # -- lookup --------------------------------------------------------------

    def shard_names(self) -> list[str]:
        """Registered shard names, registration order."""
        return list(self._specs)

    def spec(self, name: str) -> ShardSpec:
        """Spec of one shard or replica backend (``s0`` or ``s0#r1``)."""
        spec = self._specs.get(name)
        if spec is not None:
            return spec
        if REPLICA_SEP in name:
            for candidate in self._replicas.get(shard_of(name), []):
                if candidate.name == name:
                    return candidate
        raise ShardConfigError(f"unknown shard {name!r}")

    def sources(self) -> dict[str, list[str]]:
        """source → ordered shard names (a copy)."""
        return {source: list(shards)
                for source, shards in self._sources.items()}

    def shards_for(self, source: str) -> list[str]:
        """Ordered shards hosting a source; [] when unrouted."""
        return list(self._sources.get(source, []))

    def shard_position(self, source: str, shard: str) -> int:
        """Position of ``shard`` in a source's partition order — the
        coordinator's primary sort component for partitioned sources
        (contiguous loading makes it the monolithic load order)."""
        try:
            return self._sources[source].index(shard)
        except (KeyError, ValueError):
            return 0

    # -- warehouses ----------------------------------------------------------

    def warehouse(self, name: str):
        """The shard's warehouse, opened on first use.

        Raises :class:`ShardUnreachableError` when the shard's
        database cannot be opened (missing file, broken backend) —
        callers on the query path degrade, administrative callers
        surface it.
        """
        warehouse = self._warehouses.get(name)
        if warehouse is not None:
            return warehouse
        spec = self.spec(name)
        try:
            warehouse = self._open(spec)
        except ShardUnreachableError:
            raise
        except Exception as exc:
            raise ShardUnreachableError(
                f"shard {name!r} ({spec.path}): {exc}") from exc
        self._warehouses[name] = warehouse
        self._owned.add(name)
        return warehouse

    def peek(self, name: str):
        """The backend's warehouse if it is already open, else None —
        never opens one. (The executor's straggler cancellation uses
        this: there is nothing to interrupt on a backend that was
        never opened.)"""
        return self._warehouses.get(name)

    def set_tracer(self, tracer) -> None:
        """Adopt one shared tracer for every shard warehouse — the
        ones already open (including attached ones) and every one
        opened later. This is the cross-shard half of the distributed
        trace: without it each shard's query spans start their own
        disconnected tree."""
        self.tracer = tracer
        for warehouse in self._warehouses.values():
            warehouse.enable_tracing(tracer)

    def _open(self, spec: ShardSpec):
        from repro.engine import Warehouse

        def branded(warehouse):
            warehouse.shard_name = spec.name
            return warehouse

        if spec.backend == "minidb":
            from repro.relational import MiniDbBackend
            return branded(Warehouse(backend=MiniDbBackend(),
                                     metrics=self.metrics,
                                     trace=self.tracer))
        if spec.path == MEMORY_PATH:
            return branded(Warehouse(metrics=self.metrics,
                                     trace=self.tracer))
        path = Path(spec.path)
        if not path.exists():
            raise ShardUnreachableError(
                f"shard {spec.name!r}: database {spec.path} does not "
                f"exist (create it with `xomatiq shard init`)")
        from repro.relational import SqliteBackend
        return branded(Warehouse(backend=SqliteBackend(path),
                                 create=False, metrics=self.metrics,
                                 trace=self.tracer))

    def create_shards(self) -> None:
        """Eagerly create/open every shard database (``shard init``)."""
        from repro.engine import Warehouse
        from repro.relational import SqliteBackend
        specs = list(self._specs.values())
        for replicas in self._replicas.values():
            specs.extend(replicas)
        for spec in specs:
            if spec.name in self._warehouses or spec.backend != "sqlite" \
                    or spec.path == MEMORY_PATH:
                continue
            if not Path(spec.path).exists():
                Warehouse(backend=SqliteBackend(spec.path)).close()

    def close(self) -> None:
        """Close every warehouse this catalog opened itself."""
        for name in list(self._owned):
            warehouse = self._warehouses.pop(name, None)
            self._owned.discard(name)
            if warehouse is not None:
                warehouse.close()
        # attached warehouses stay open — their creators own them
        self._warehouses = {name: wh for name, wh in
                            self._warehouses.items()}

    # -- registry file -------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready registry form."""
        shards = {}
        for name, spec in self._specs.items():
            entry = spec.to_dict()
            if self._replicas.get(name):
                entry["replicas"] = [replica.to_dict()
                                     for replica in self._replicas[name]]
            shards[name] = entry
        return {
            "version": CATALOG_VERSION,
            "shards": shards,
            "sources": {source: list(shards)
                        for source, shards in self._sources.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardCatalog":
        """Rebuild a catalog from its registry form."""
        if not isinstance(data, dict) or "shards" not in data:
            raise ShardConfigError("shard map must be an object with "
                                   "'shards' and 'sources' keys")
        version = data.get("version", CATALOG_VERSION)
        if version != CATALOG_VERSION:
            raise ShardConfigError(
                f"unsupported shard-map version {version!r}")
        catalog = cls()
        for name, spec in data["shards"].items():
            if not isinstance(spec, dict):
                raise ShardConfigError(
                    f"shard {name!r}: spec must be an object")
            catalog.add_shard(name, path=spec.get("path", MEMORY_PATH),
                              backend=spec.get("backend", "sqlite"),
                              latency_s=spec.get("latency_s", 0.0))
            for replica in spec.get("replicas", []):
                if not isinstance(replica, dict):
                    raise ShardConfigError(
                        f"shard {name!r}: replica spec must be an object")
                catalog.add_replica(
                    name, path=replica.get("path", MEMORY_PATH),
                    backend=replica.get("backend", "sqlite"),
                    latency_s=replica.get("latency_s", 0.0))
        for source, shards in data.get("sources", {}).items():
            if isinstance(shards, str):
                shards = [shards]
            catalog.assign(source, *shards)
        return catalog

    def save(self, path: str | Path) -> None:
        """Write the registry file."""
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "ShardCatalog":
        """Read a registry file; shard paths stay relative to the
        process working directory (the file records what was given)."""
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise ShardConfigError(f"cannot read shard map {path}: "
                                   f"{exc}") from exc
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ShardConfigError(
                f"shard map {path} is not valid JSON: {exc}") from exc
        return cls.from_dict(data)
