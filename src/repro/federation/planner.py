"""Split one XomatiQ query into per-shard subplans + a coordinator plan.

The mediator strategy (YeastMed, HepToX): every FOR variable is rooted
in exactly one source, and the shard catalog says which shard(s) hold
that source. The planner

1. groups variables into **units** — a root variable plus every
   variable context-rooted on it; units joined by a cross-unit atom are
   merged when all their sources live whole on one common shard (the
   join then runs inside that shard's RDBMS, the paper's division of
   labour),
2. **pushes down** every atom whose variables fall inside one unit —
   predicates, ``contains()`` keyword probes, ``seqcontains()`` motif
   scans, literal comparisons — into that unit's subquery, per DNF
   disjunct (so ``OR`` across shards still works),
3. **projects** only what the coordinator needs out of each shard:
   the original RETURN values that mention the unit's variables, plus
   the join-key paths of the remaining cross-unit atoms,
4. leaves cross-unit ``Compare`` atoms (equi-joins and their ordered
   cousins) to the coordinator, which hash-joins shard bindings on the
   shipped key values.

Each unit compiles to an ordinary single-source (or single-shard)
XomatiQ subquery AST that the shard's own translator/cache pipeline
handles — the planner builds no SQL itself.

Unsupported shapes fail loudly with :class:`FederationError` instead
of silently changing semantics: a ``BEFORE``/``AFTER`` comparison
across units can only run where both documents live, so it requires
the sources to be co-located on one shard.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.errors import FederationError, TranslationError
from repro.translator.compile import to_dnf
from repro.xquery.ast import (
    Binding,
    BoolAnd,
    BoolNot,
    Compare,
    Condition,
    Contains,
    OrderCompare,
    Query,
    ReturnItem,
    SeqContains,
    ValueIn,
    VarPath,
)


@dataclass(frozen=True)
class ShardSubPlan:
    """One unit's subquery, targeted at one or more shards.

    A single-shard source runs the subquery once; a horizontally
    partitioned source fans the same subquery out to every shard in
    ``shards`` and the coordinator unions the bindings (each document
    lives on exactly one shard, so the union is exact).
    """

    index: int
    vars: tuple[str, ...]            # original binding order
    sources: tuple[str, ...]         # distinct root sources of the unit
    shards: tuple[str, ...]          # execution targets, catalog order
    subquery: Query
    text: str                        # deterministic cache/display key
    item_keys: tuple[str, ...]       # str(varpath) per subquery RETURN item


@dataclass(frozen=True)
class CoordinatorAtom:
    """A cross-unit comparison the coordinator evaluates on shipped
    values — existential over the value pairs, exactly the semantics
    the monolithic translator gets from its SQL join."""

    op: str                          # = != < <= > >=
    left: VarPath
    right: VarPath
    negated: bool

    @property
    def left_key(self) -> str:
        """Shipped-value column key of the left operand."""
        return str(self.left)

    @property
    def right_key(self) -> str:
        """Shipped-value column key of the right operand."""
        return str(self.right)


@dataclass(frozen=True)
class SemiJoinPushdown:
    """A planned two-phase filter for one coordinator equality.

    The executor runs the cheap *build* subplan first, collects the
    distinct values of its join key, and ships them into the *probe*
    subplan's shard subqueries — as a :class:`~repro.xquery.ast.ValueIn`
    conjunct (real SQL ``IN (?,...)``) below the IN-list cutoff, as a
    Bloom-filter post-check above it. Shards then return only bindings
    that can possibly join; Bloom false positives are removed by the
    coordinator hash-join, so answers stay byte-identical.
    """

    disjunct: int                    # index into plan.disjuncts
    build: int                       # cheap-side subplan id
    probe: int                       # expensive-side subplan id
    build_key: str                   # shipped-value key on the build side
    probe_path: VarPath              # join path on the probe side
    probe_key: str                   # shipped-value key on the probe side
    estimated_build_rows: float
    estimated_probe_rows: float


@dataclass(frozen=True)
class PrunedShard:
    """One (subplan, shard) pair the optimizer proved empty."""

    subplan: int
    shard: str
    reason: str


@dataclass(frozen=True)
class PlannedDisjunct:
    """One DNF disjunct: which subplans it draws bindings from and the
    cross-unit atoms the coordinator applies while joining them."""

    subplan_ids: tuple[int, ...]     # join order (first-variable order)
    var_unit: dict[str, int]         # variable → subplan id
    atoms: tuple[CoordinatorAtom, ...]


@dataclass
class FederatedPlan:
    """The full federation plan of one query."""

    text: str
    query: Query
    variables: list[str]
    var_source: dict[str, str]       # variable → root source
    #: fast path — every source lives whole on this one shard, so the
    #: original query routes there unchanged; subplans/disjuncts empty
    route_shard: str | None = None
    subplans: list[ShardSubPlan] = field(default_factory=list)
    disjuncts: list[PlannedDisjunct] = field(default_factory=list)
    #: True when a statistics catalog shaped this plan
    cost_based: bool = False
    #: subplan id → estimated result rows across its (surviving) shards
    estimated_rows: dict[int, float] = field(default_factory=dict)
    #: shards the optimizer proved empty and removed from subplans
    pruned: list[PrunedShard] = field(default_factory=list)
    #: two-phase semi-join filters the executor applies
    semijoins: list[SemiJoinPushdown] = field(default_factory=list)

    @property
    def fanout(self) -> int:
        """Number of shard subqueries this plan issues."""
        if self.route_shard is not None:
            return 1
        return sum(len(plan.shards) for plan in self.subplans)


class FederationPlanner:
    """Plans queries against a :class:`~repro.federation.catalog.
    ShardCatalog` routing table.

    With a :class:`~repro.federation.costs.CostModel` attached (the
    facade passes one once statistics are collected and fresh), the
    rule-based plan gets a cost-based pass: provably-empty shards are
    pruned, each disjunct's units are reordered most-selective-first,
    and profitable coordinator equalities become semi-join pushdowns.
    An empty or absent statistics catalog leaves the rule-based plan
    untouched — same subplans, same answers.
    """

    def __init__(self, catalog, cost_model=None):
        self.catalog = catalog
        self.cost_model = cost_model

    def plan(self, text: str, query: Query) -> FederatedPlan:
        """Build the federation plan for a checked query."""
        plan = _Planning(self.catalog, text, query).run()
        if self.cost_model is not None and plan.route_shard is None:
            optimize_plan(plan, self.cost_model)
        return plan


def optimize_plan(plan: FederatedPlan, model) -> None:
    """The cost-based pass, in place. Pruning acts only on *proofs*
    (zero documents, token absent from a complete map); estimates only
    rank — a bad estimate can cost speed, never rows. An empty
    statistics catalog leaves the rule-based plan entirely untouched."""
    if not model.stats:
        return
    plan.cost_based = True

    # 1. shard pruning
    subplans: list[ShardSubPlan] = []
    for subplan in plan.subplans:
        kept = []
        for shard in subplan.shards:
            proof = model.shard_provably_empty(subplan.subquery, shard)
            if proof is not None:
                plan.pruned.append(PrunedShard(
                    subplan=subplan.index, shard=shard, reason=proof))
            else:
                kept.append(shard)
        if len(kept) != len(subplan.shards):
            subplan = dataclasses.replace(subplan, shards=tuple(kept))
        subplans.append(subplan)
    plan.subplans = subplans

    # 2. cardinality estimates (None = shard without statistics; such
    # subplans keep their rule-based position and never join semijoins)
    for subplan in plan.subplans:
        rows = model.plan_rows(subplan.subquery, subplan.shards)
        if rows is not None:
            plan.estimated_rows[subplan.index] = rows

    # 3. join ordering: most selective unit first per disjunct
    for index, disjunct in enumerate(plan.disjuncts):
        if all(sid in plan.estimated_rows
               for sid in disjunct.subplan_ids):
            ordered = tuple(sorted(
                disjunct.subplan_ids,
                key=lambda sid: plan.estimated_rows[sid]))
            if ordered != disjunct.subplan_ids:
                plan.disjuncts[index] = dataclasses.replace(
                    disjunct, subplan_ids=ordered)

    # 4. semi-join pushdown selection. A probe subplan must belong to
    # exactly one disjunct (its subquery gets rewritten; a subplan
    # shared across disjuncts would filter the others' rows too), and
    # build/probe roles must not chain (builds run unfiltered in phase
    # one, probes in phase two).
    owners: dict[int, int] = {}
    for disjunct in plan.disjuncts:
        for sid in disjunct.subplan_ids:
            owners[sid] = owners.get(sid, 0) + 1
    builds: set[int] = set()
    probes: set[int] = set()
    for d_index, disjunct in enumerate(plan.disjuncts):
        for atom in disjunct.atoms:
            if atom.op != "=" or atom.negated:
                continue
            left = disjunct.var_unit[atom.left.var]
            right = disjunct.var_unit[atom.right.var]
            if left == right:
                continue
            if left not in plan.estimated_rows or \
                    right not in plan.estimated_rows:
                continue
            pairs = sorted(
                ((plan.estimated_rows[left], left, atom.left),
                 (plan.estimated_rows[right], right, atom.right)))
            (build_rows, build, build_path), \
                (probe_rows, probe, probe_path) = pairs
            if owners.get(probe, 0) != 1:
                continue
            if probe in probes or probe in builds or build in probes:
                continue
            if not model.semijoin_worthwhile(build_rows, probe_rows):
                continue
            plan.semijoins.append(SemiJoinPushdown(
                disjunct=d_index, build=build, probe=probe,
                build_key=str(build_path), probe_path=probe_path,
                probe_key=str(probe_path),
                estimated_build_rows=build_rows,
                estimated_probe_rows=probe_rows))
            builds.add(build)
            probes.add(probe)


def _atom_vars(atom: Condition) -> list[str]:
    """Variables an atom constrains (deduplicated, stable order)."""
    out: list[str] = []

    def add(var: str) -> None:
        if var not in out:
            out.append(var)

    if isinstance(atom, (Contains, SeqContains, ValueIn)):
        add(atom.target.var)
    elif isinstance(atom, OrderCompare):
        add(atom.left.var)
        add(atom.right.var)
    elif isinstance(atom, Compare):
        for operand in (atom.left, atom.right):
            if isinstance(operand, VarPath):
                add(operand.var)
    else:
        raise FederationError(
            f"cannot federate condition {type(atom).__name__}")
    return out


class _Planning:
    def __init__(self, catalog, text: str, query: Query):
        self.catalog = catalog
        self.text = text
        self.query = query
        self.bindings: dict[str, Binding] = {
            binding.var: binding for binding in query.bindings}
        self.variables = query.variables()
        self.var_source = {var: self._root_source(var)
                           for var in self.variables}
        #: deduplicated subplans across disjuncts, keyed by subquery text
        self._subplans: dict[str, ShardSubPlan] = {}

    def run(self) -> FederatedPlan:
        shards_by_source = {}
        for source in self.var_source.values():
            shards = self.catalog.shards_for(source)
            if not shards:
                raise FederationError(
                    f"source {source!r} is not routed to any shard "
                    f"(assign it with `xomatiq shard assign`)")
            shards_by_source[source] = shards

        plan = FederatedPlan(text=self.text, query=self.query,
                             variables=self.variables,
                             var_source=dict(self.var_source))

        all_shards = {tuple(shards)
                      for shards in shards_by_source.values()}
        if len(all_shards) == 1 and len(next(iter(all_shards))) == 1:
            # every source whole on one common shard: route untouched
            plan.route_shard = next(iter(all_shards))[0]
            return plan

        if self.query.where is None:
            disjunct_atoms = [[]]
        else:
            disjunct_atoms = to_dnf(self.query.where)
        for atoms in disjunct_atoms:
            plan.disjuncts.append(self._plan_disjunct(atoms))
        plan.subplans = sorted(self._subplans.values(),
                               key=lambda sp: sp.index)
        return plan

    # -- per-disjunct planning ------------------------------------------------

    def _plan_disjunct(self, atoms) -> PlannedDisjunct:
        # fragments: root var representative per variable (context
        # chains collapse onto their root)
        parent = {var: self._root_var(var) for var in self.variables}

        def find(var: str) -> str:
            while parent[var] != var:
                parent[var] = parent[parent[var]]
                var = parent[var]
            return var

        def union(left: str, right: str) -> None:
            parent[find(left)] = find(right)

        def colocated_shard(vars_: list[str]) -> str | None:
            """The single shard every involved source lives whole on,
            or None when there is no such shard."""
            shards: set[tuple[str, ...]] = set()
            for var in vars_:
                members = [v for v in self.variables
                           if find(v) == find(var)]
                for member in members:
                    shards.add(tuple(self.catalog.shards_for(
                        self.var_source[member])))
            if len(shards) == 1 and len(next(iter(shards))) == 1:
                return next(iter(shards))[0]
            return None

        # merge pass: co-locate joinable units on their common shard so
        # the join runs inside that shard's engine; ordered comparisons
        # *must* co-locate (they compare document order, which only
        # exists where both documents live)
        for atom, _negated in atoms:
            vars_ = _atom_vars(atom)
            if len({find(var) for var in vars_}) <= 1:
                continue
            if colocated_shard(vars_) is not None:
                for var in vars_[1:]:
                    union(vars_[0], var)
            elif isinstance(atom, OrderCompare):
                raise FederationError(
                    f"cannot federate {atom}: BEFORE/AFTER compares "
                    f"document order, which requires "
                    f"{' and '.join(sorted({self.var_source[v] for v in vars_}))} "
                    f"to be co-located on one shard")

        # unit membership (first-variable order)
        unit_vars: dict[str, list[str]] = {}
        for var in self.variables:
            unit_vars.setdefault(find(var), []).append(var)
        units = list(unit_vars.values())

        # classify atoms now that units are final
        pushdown: dict[int, list] = {index: [] for index in
                                     range(len(units))}
        unit_of = {var: index for index, members in enumerate(units)
                   for var in members}
        coordinator: list[CoordinatorAtom] = []
        for atom, negated in atoms:
            vars_ = _atom_vars(atom)
            if not vars_:
                raise TranslationError(
                    "comparison between two literals is constant; "
                    "remove it")
            spanned = {unit_of[var] for var in vars_}
            if len(spanned) == 1:
                pushdown[spanned.pop()].append((atom, negated))
                continue
            if not isinstance(atom, Compare):
                raise FederationError(
                    f"cannot federate {atom} across shards")
            coordinator.append(CoordinatorAtom(
                op=atom.op, left=atom.left, right=atom.right,
                negated=negated))

        # per-unit shipped projections: original RETURN values first
        # (stable output assembly), then the join keys
        needed: dict[int, dict[str, VarPath]] = {
            index: {} for index in range(len(units))}
        for varpath in self._output_varpaths():
            needed[unit_of[varpath.var]].setdefault(str(varpath), varpath)
        for atom in coordinator:
            for operand in (atom.left, atom.right):
                needed[unit_of[operand.var]].setdefault(
                    str(operand), operand)

        subplan_ids = []
        var_unit: dict[str, int] = {}
        for index, members in enumerate(units):
            subplan = self._unit_subplan(members, pushdown[index],
                                         needed[index])
            subplan_ids.append(subplan.index)
            for var in members:
                var_unit[var] = subplan.index
        return PlannedDisjunct(subplan_ids=tuple(subplan_ids),
                               var_unit=var_unit,
                               atoms=tuple(coordinator))

    def _unit_subplan(self, members: list[str], atoms,
                      needed: dict[str, VarPath]) -> ShardSubPlan:
        """Build (or reuse) the subplan of one unit."""
        sources = []
        for var in members:
            source = self.var_source[var]
            if source not in sources:
                sources.append(source)
        shard_lists = [tuple(self.catalog.shards_for(source))
                       for source in sources]
        if len(sources) == 1:
            shards = shard_lists[0]
        else:
            # merged unit: the merge pass guaranteed one common shard
            shards = shard_lists[0]

        conjuncts = []
        for atom, negated in atoms:
            conjuncts.append(BoolNot(item=atom) if negated else atom)
        if not conjuncts:
            where = None
        elif len(conjuncts) == 1:
            where = conjuncts[0]
        else:
            where = BoolAnd(items=tuple(conjuncts))

        if needed:
            item_keys = tuple(needed)
            returns = tuple(
                ReturnItem(value=varpath, alias=f"f{i}")
                for i, varpath in enumerate(needed.values()))
        else:
            # nothing shipped (pure existence filter): ship the first
            # variable itself so the subquery stays well-formed
            fallback = VarPath(var=members[0])
            item_keys = (str(fallback),)
            returns = (ReturnItem(value=fallback, alias="f0"),)

        subquery = Query(
            bindings=tuple(self.bindings[var] for var in members),
            where=where, returns=returns)
        text = str(subquery)
        existing = self._subplans.get(text)
        if existing is not None:
            return existing
        subplan = ShardSubPlan(index=len(self._subplans),
                               vars=tuple(members),
                               sources=tuple(sources),
                               shards=shards, subquery=subquery,
                               text=text, item_keys=item_keys)
        self._subplans[text] = subplan
        return subplan

    # -- helpers -------------------------------------------------------------

    def _root_var(self, var: str) -> str:
        binding = self.bindings[var]
        while binding.context_var is not None:
            binding = self.bindings[binding.context_var]
        return binding.var

    def _root_source(self, var: str) -> str:
        return self.bindings[self._root_var(var)].document.source

    def _output_varpaths(self) -> list[VarPath]:
        out: list[VarPath] = []
        for item in self.query.returns:
            if item.constructor is not None:
                out.extend(item.constructor.varpaths())
            else:
                out.append(item.value)
        return out
