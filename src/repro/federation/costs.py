"""Cost model and Bloom filter for the federation optimizer.

:class:`CostModel` prices a shard subquery against one shard's
:class:`~repro.federation.stats.ShardStatistics`:

* **cardinality** — base binding count (per-tag element counts from
  the statistics catalog) scaled by per-atom selectivities: keyword
  document frequencies for ``contains()``, value histograms for
  equality literals, fixed fractions for ranges/motifs (the classic
  System-R defaults),
* **proof of emptiness** — a shard is *provably* empty for a subquery
  when a bound source has zero documents there, or a conjoined
  non-negated ``contains()`` token is absent from the shard's
  *complete* token map. Estimates never prune; proofs do.
* **transfer cost** — estimated rows × serialized row width, the
  quantity the semi-join pushdown exists to cut.

:class:`BloomFilter` is the shipped-filter representation above the
IN-list cutoff: deterministic double hashing over blake2b digests, so
a filter built on the coordinator tests identically anywhere. False
positives are harmless — the coordinator hash-join re-checks every
shipped binding — they only cost transfer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from hashlib import blake2b

from repro.shredding.keywords import query_tokens
from repro.xquery.ast import (
    BoolAnd,
    BoolNot,
    BoolOr,
    Compare,
    Condition,
    Contains,
    LiteralOperand,
    OrderCompare,
    Query,
    SeqContains,
    ValueIn,
    VarPath,
)

from repro.federation.stats import ShardStatistics, StatisticsCatalog

#: ship join keys as a SQL IN-list at or below this many distinct
#: values; above it, ship a Bloom filter instead (an IN-list of tens of
#: thousands of parameters stops being a win for the shard's planner)
INLIST_CUTOFF = 500

#: target false-positive rate for shipped Bloom filters
BLOOM_FP_RATE = 0.01

#: a semi-join pushdown must expect to scan a probe side at least this
#: many times larger than its build side (two-phase execution
#: serializes the sides; a filter that saves nothing costs a phase)
SEMIJOIN_MIN_RATIO = 2.0

#: and the probe side must be non-trivial to begin with
SEMIJOIN_MIN_PROBE_ROWS = 16.0

#: serialized-binding size model (matches the executor's
#: ``federation.bytes_shipped`` estimate): fixed per-row framing plus
#: the value strings themselves
ROW_OVERHEAD_BYTES = 48
AVG_VALUE_BYTES = 16

#: selectivity defaults where statistics are silent
EQUALITY_DEFAULT = 0.1
RANGE_DEFAULT = 1.0 / 3.0
SEQCONTAINS_DEFAULT = 0.25
ORDER_DEFAULT = 0.5


class BloomFilter:
    """A fixed-size Bloom filter over string join keys.

    Uses the Kirsch-Mitzenmacher double-hashing scheme over one
    blake2b digest per value — deterministic across processes, no
    dependence on Python's randomized ``hash()``.
    """

    __slots__ = ("bits", "size", "hashes", "count")

    def __init__(self, values, fp_rate: float = BLOOM_FP_RATE):
        values = list(values)
        self.count = len(values)
        n = max(1, self.count)
        size = int(math.ceil(-n * math.log(fp_rate) / (math.log(2) ** 2)))
        self.size = max(8, size)
        self.hashes = max(1, round(self.size / n * math.log(2)))
        self.bits = bytearray((self.size + 7) // 8)
        for value in values:
            for position in self._positions(value):
                self.bits[position >> 3] |= 1 << (position & 7)

    def _positions(self, value: str):
        digest = blake2b(value.encode("utf-8"), digest_size=16).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:], "big") | 1
        for i in range(self.hashes):
            yield (h1 + i * h2) % self.size

    def __contains__(self, value: str) -> bool:
        return all(self.bits[p >> 3] & (1 << (p & 7))
                   for p in self._positions(value))

    def __len__(self) -> int:
        return self.count

    @property
    def byte_size(self) -> int:
        """Shipped size of the filter itself."""
        return len(self.bits)


def estimate_bytes(rows: float, item_count: int) -> float:
    """Transfer-cost model: serialized size of ``rows`` bindings each
    shipping ``item_count`` values."""
    return rows * (ROW_OVERHEAD_BYTES + AVG_VALUE_BYTES * item_count)


@dataclass
class CostModel:
    """Prices shard subqueries against a statistics catalog."""

    stats: StatisticsCatalog

    # -- cardinality ---------------------------------------------------------

    def shard_rows(self, subquery: Query, shard: str) -> float | None:
        """Estimated result rows of ``subquery`` on ``shard``; None
        when the shard was never analyzed (no pricing on fiction)."""
        record = self.stats.shard(shard)
        if record is None:
            return None
        base = self._base_rows(subquery, record)
        if base <= 0:
            return 0.0
        if subquery.where is None:
            return base
        return base * self._selectivity(subquery.where, record)

    def plan_rows(self, subquery: Query, shards) -> float | None:
        """Estimated rows summed over ``shards``; None when any shard
        lacks statistics (a partial estimate would mis-rank plans)."""
        total = 0.0
        for shard in shards:
            rows = self.shard_rows(subquery, shard)
            if rows is None:
                return None
            total += rows
        return total

    def _base_rows(self, subquery: Query, record: ShardStatistics) -> float:
        """Candidate binding count before predicates: the largest
        binding-path element count (bindings are correlated through
        structure and join predicates; a product would square-count)."""
        by_var = {binding.var: binding for binding in subquery.bindings}
        cards = []
        for binding in subquery.bindings:
            source = self._binding_source(binding, by_var)
            tag = None
            if binding.path is not None and binding.path.steps:
                last = binding.path.steps[-1]
                if last.name != "*":
                    tag = last.name
            count = (record.tag_count(source, tag)
                     if source is not None and tag is not None else None)
            if count is not None:
                cards.append(float(count))
            elif binding.document is not None:
                cards.append(float(
                    record.source_documents(binding.document.source)))
        return max(cards) if cards else 0.0

    @staticmethod
    def _binding_source(binding, by_var) -> str | None:
        """Source a binding's elements live in: follow context-var
        chains back to the document binding (chains are acyclic;
        unresolvable outside the subquery → None)."""
        seen = set()
        while binding is not None and binding.var not in seen:
            if binding.document is not None:
                return binding.document.source
            seen.add(binding.var)
            binding = by_var.get(binding.context_var)
        return None

    # -- selectivity ---------------------------------------------------------

    def _selectivity(self, condition: Condition,
                     record: ShardStatistics) -> float:
        if isinstance(condition, BoolAnd):
            product = 1.0
            for item in condition.items:
                product *= self._selectivity(item, record)
            return product
        if isinstance(condition, BoolOr):
            miss = 1.0
            for item in condition.items:
                miss *= 1.0 - self._selectivity(item, record)
            return 1.0 - miss
        if isinstance(condition, BoolNot):
            return 1.0 - self._selectivity(condition.item, record)
        return self._atom_selectivity(condition, record)

    def _atom_selectivity(self, atom: Condition,
                          record: ShardStatistics) -> float:
        if isinstance(atom, Contains):
            product = 1.0
            for token in query_tokens(atom.phrase):
                product *= record.token_selectivity(token)
            return product
        if isinstance(atom, Compare):
            return self._compare_selectivity(atom, record)
        if isinstance(atom, ValueIn):
            histogram = self._histogram_for(atom.target, record)
            if histogram is not None and histogram.distinct > 0:
                return min(1.0, len(atom.values) / histogram.distinct)
            return min(1.0, EQUALITY_DEFAULT * max(1, len(atom.values)))
        if isinstance(atom, SeqContains):
            return SEQCONTAINS_DEFAULT
        if isinstance(atom, OrderCompare):
            return ORDER_DEFAULT
        return 1.0

    def _compare_selectivity(self, atom: Compare,
                             record: ShardStatistics) -> float:
        literal = None
        varpath = None
        for operand in (atom.left, atom.right):
            if isinstance(operand, LiteralOperand):
                literal = operand
            elif isinstance(operand, VarPath):
                varpath = operand
        if literal is None or varpath is None:
            # var-var comparison inside one unit
            return EQUALITY_DEFAULT if atom.op == "=" else ORDER_DEFAULT
        if atom.op == "=":
            histogram = self._histogram_for(varpath, record)
            if histogram is not None and not literal.is_numeric:
                return histogram.equality_selectivity(str(literal.value))
            return EQUALITY_DEFAULT
        if atom.op == "!=":
            return 1.0 - EQUALITY_DEFAULT
        return RANGE_DEFAULT

    def _histogram_for(self, varpath: VarPath, record: ShardStatistics):
        path = varpath.path
        if path is None or not path.steps:
            return None
        last = path.steps[-1]
        if last.name == "*":
            return None
        if path.is_attribute_path:
            return record.attributes.get(last.name)
        return record.values.get(last.name)

    # -- proofs --------------------------------------------------------------

    def shard_provably_empty(self, subquery: Query,
                             shard: str) -> str | None:
        """The proof that the subquery returns no rows on ``shard``
        (a human-readable reason string), or None when no proof
        exists — zero documents for a bound source, or a required
        keyword token absent from a complete token map. The record
        must also be fresh for the live shard (checked by the planner
        via generation); estimates never reach this method."""
        record = self.stats.shard(shard)
        if record is None:
            return None
        for binding in subquery.bindings:
            if binding.document is not None and \
                    record.source_documents(binding.document.source) == 0:
                return (f"no {binding.document.source!r} documents "
                        f"on shard")
        for atom in self._conjoined_atoms(subquery.where):
            if isinstance(atom, Contains):
                for token in query_tokens(atom.phrase):
                    if record.proves_token_absent(token):
                        return (f"token {token!r} absent from the "
                                f"shard's complete keyword index")
        return None

    def _conjoined_atoms(self, condition: Condition | None):
        """Non-negated atoms required by the top-level conjunction."""
        if condition is None:
            return
        if isinstance(condition, BoolAnd):
            for item in condition.items:
                yield from self._conjoined_atoms(item)
        elif not isinstance(condition, (BoolNot, BoolOr)):
            yield condition

    # -- semi-join policy ----------------------------------------------------

    def semijoin_worthwhile(self, build_rows: float,
                            probe_rows: float) -> bool:
        """Should the probe side wait for the build side's filter?"""
        return (probe_rows >= SEMIJOIN_MIN_PROBE_ROWS
                and probe_rows >= SEMIJOIN_MIN_RATIO * build_rows)
