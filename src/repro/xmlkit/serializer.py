"""Serialize the XML infoset back to text.

Two styles:

* :func:`serialize` — pretty-printed with two-space indentation, the form
  XomatiQ shows in its result panel (Figure 6 of the paper),
* :func:`serialize_compact` — no insignificant whitespace, the form the
  transport layer stores.

Both escape ``& < >`` in character data and additionally quotes in
attribute values, so ``parse(serialize(doc)) == doc`` for any document the
parser accepts (property-tested).
"""

from __future__ import annotations

from repro.xmlkit.doc import Document, Element, Text


def escape_text(value: str) -> str:
    """Escape character data."""
    return (value.replace("&", "&amp;")
                 .replace("<", "&lt;")
                 .replace(">", "&gt;"))


def escape_attribute(value: str) -> str:
    """Escape an attribute value for double-quoted serialization."""
    return (escape_text(value)
            .replace('"', "&quot;")
            .replace("\n", "&#10;")
            .replace("\t", "&#9;"))


def serialize(doc: Document | Element, declaration: bool = True,
              indent: str = "  ") -> str:
    """Pretty-print a document or element.

    Mixed content (an element with both text and element children) is
    emitted inline without added whitespace, so round-tripping never
    injects characters into content.
    """
    element = doc.root if isinstance(doc, Document) else doc
    lines: list[str] = []
    if declaration:
        lines.append('<?xml version="1.0" encoding="UTF-8"?>')
    _write_pretty(element, lines, 0, indent)
    return "\n".join(lines) + "\n"


def serialize_compact(doc: Document | Element, declaration: bool = False) -> str:
    """Serialize with no whitespace between tags."""
    element = doc.root if isinstance(doc, Document) else doc
    parts: list[str] = []
    if declaration:
        parts.append('<?xml version="1.0" encoding="UTF-8"?>')
    _write_compact(element, parts)
    return "".join(parts)


def _start_tag(element: Element) -> str:
    attrs = "".join(
        f' {name}="{escape_attribute(value)}"'
        for name, value in element.attributes.items())
    return f"<{element.tag}{attrs}>"


def _empty_tag(element: Element) -> str:
    attrs = "".join(
        f' {name}="{escape_attribute(value)}"'
        for name, value in element.attributes.items())
    return f"<{element.tag}{attrs}/>"


def _write_compact(element: Element, parts: list[str]) -> None:
    if not element.children:
        parts.append(_empty_tag(element))
        return
    parts.append(_start_tag(element))
    for child in element.children:
        if isinstance(child, Text):
            parts.append(escape_text(child.value))
        else:
            _write_compact(child, parts)
    parts.append(f"</{element.tag}>")


def _write_pretty(element: Element, lines: list[str], depth: int,
                  indent: str) -> None:
    pad = indent * depth
    if not element.children:
        lines.append(pad + _empty_tag(element))
        return
    has_element_child = any(isinstance(c, Element) for c in element.children)
    if not has_element_child:
        # leaf with text only: keep on one line
        text = "".join(escape_text(c.value) for c in element.children
                       if isinstance(c, Text))
        lines.append(f"{pad}{_start_tag(element)}{text}</{element.tag}>")
        return
    has_text_child = any(
        isinstance(c, Text) and c.value.strip() for c in element.children)
    if has_text_child:
        # mixed content: emit compactly on one line to preserve spacing
        parts: list[str] = []
        _write_compact(element, parts)
        lines.append(pad + "".join(parts))
        return
    lines.append(pad + _start_tag(element))
    for child in element.children:
        if isinstance(child, Element):
            _write_pretty(child, lines, depth + 1, indent)
    lines.append(f"{pad}</{element.tag}>")
