"""Path expressions over the XML infoset.

XomatiQ queries navigate documents with abbreviated XPath steps —
``document(...)/hlx_enzyme/db_entry``, ``$a//catalytic_activity``,
``$a//qualifier[@qualifier_type = "EC_number"]``, ``$b//@mim_id``. This
module gives those paths a first-class representation shared by

* the XQuery parser (paths appear in FOR bindings, WHERE clauses and
  RETURN expressions),
* the XQ2SQL translator (steps become joins / index lookups over the
  generic schema),
* the native-XML baseline evaluator (steps are evaluated directly on the
  tree).

Grammar (after an optional leading ``/`` or ``//``)::

    path      := step (("/" | "//") step)*
    step      := "@" name | name | "*"
    step      := step predicate*
    predicate := "[" "@" name "=" string "]" | "[" name "=" string "]"

Attribute steps (``@name``) are only valid in the final position.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PathError
from repro.xmlkit.doc import Element, is_valid_name


@dataclass(frozen=True)
class Predicate:
    """An equality predicate filtering a step: ``[@attr = "v"]`` or
    ``[child = "v"]``."""

    name: str
    value: str
    on_attribute: bool

    def __str__(self) -> str:
        target = ("@" if self.on_attribute else "") + self.name
        return f'[{target} = "{self.value}"]'

    def matches(self, element: Element) -> bool:
        """Tree-side evaluation of the predicate."""
        if self.on_attribute:
            return element.get(self.name) == self.value
        child = element.first(self.name)
        return child is not None and child.full_text().strip() == self.value


@dataclass(frozen=True)
class PositionPredicate:
    """A positional predicate ``[n]`` (1-based): the element must be
    the n-th of its same-tag siblings. This is the list-item access the
    paper's order preservation enables (``alternate_name[2]``); note it
    ranks within the *parent's* same-tag children, which coincides with
    XPath positional semantics for the child axis over homogeneous
    lists (the shape of all our DTD list containers)."""

    position: int

    def __str__(self) -> str:
        return f"[{self.position}]"

    def matches(self, element: Element) -> bool:
        """Tree-side evaluation: is this the n-th same-tag sibling?"""
        parent = element.parent
        if parent is None:
            return self.position == 1
        # identity comparison: structurally-equal siblings (repeated
        # list items with the same content) must rank separately
        rank = 0
        for sibling in parent.child_elements(element.tag):
            if sibling is element:
                return rank == self.position - 1
            rank += 1
        return False


@dataclass(frozen=True)
class Step:
    """One navigation step."""

    name: str                    # tag name, "*" wildcard, or attribute name
    descendant: bool = False     # reached via // rather than /
    is_attribute: bool = False
    predicates: tuple["Predicate | PositionPredicate", ...] = ()

    def __str__(self) -> str:
        axis = "//" if self.descendant else "/"
        label = ("@" if self.is_attribute else "") + self.name
        return axis + label + "".join(str(p) for p in self.predicates)


@dataclass(frozen=True)
class Path:
    """A sequence of steps, possibly rooted (leading slash)."""

    steps: tuple[Step, ...] = ()

    def __str__(self) -> str:
        return "".join(str(s) for s in self.steps)

    @property
    def is_attribute_path(self) -> bool:
        """True when the final step addresses an attribute."""
        return bool(self.steps) and self.steps[-1].is_attribute

    @property
    def last_name(self) -> str:
        """Name of the final step (tag or attribute name)."""
        if not self.steps:
            raise PathError("empty path has no final step")
        return self.steps[-1].name

    def concat(self, other: "Path") -> "Path":
        """Append another (relative) path to this one."""
        return Path(self.steps + other.steps)


def parse_path(text: str) -> Path:
    """Parse a path expression string into a :class:`Path`."""
    parser = _PathParser(text)
    return parser.parse()


class _PathParser:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def parse(self) -> Path:
        steps: list[Step] = []
        text = self.text.strip()
        self.text = text
        if not text:
            raise PathError("empty path expression")
        descendant = False
        if text.startswith("//"):
            descendant = True
            self.pos = 2
        elif text.startswith("/"):
            self.pos = 1
        while self.pos < len(text):
            steps.append(self._parse_step(descendant))
            if self.pos >= len(text):
                break
            if text.startswith("//", self.pos):
                descendant = True
                self.pos += 2
            elif text[self.pos] == "/":
                descendant = False
                self.pos += 1
            else:
                raise PathError(
                    f"unexpected character {text[self.pos]!r} in path "
                    f"{text!r} at offset {self.pos}")
        if not steps:
            raise PathError(f"path {text!r} has no steps")
        for step in steps[:-1]:
            if step.is_attribute:
                raise PathError(
                    f"attribute step @{step.name} must be final in {text!r}")
        return Path(tuple(steps))

    def _parse_step(self, descendant: bool) -> Step:
        text = self.text
        is_attribute = False
        if text.startswith("@", self.pos):
            is_attribute = True
            self.pos += 1
        start = self.pos
        if text.startswith("*", self.pos):
            self.pos += 1
            name = "*"
        else:
            while self.pos < len(text) and text[self.pos] not in "/[@":
                self.pos += 1
            name = text[start:self.pos].strip()
            if not is_valid_name(name):
                raise PathError(f"invalid step name {name!r} in {text!r}")
        predicates: list[Predicate] = []
        while self.pos < len(text) and text[self.pos] == "[":
            predicates.append(self._parse_predicate())
        if is_attribute and predicates:
            raise PathError("attribute steps cannot carry predicates")
        return Step(name=name, descendant=descendant,
                    is_attribute=is_attribute,
                    predicates=tuple(predicates))

    def _parse_predicate(self) -> "Predicate | PositionPredicate":
        text = self.text
        assert text[self.pos] == "["
        end = text.find("]", self.pos)
        if end < 0:
            raise PathError(f"unterminated predicate in {text!r}")
        body = text[self.pos + 1:end].strip()
        self.pos = end + 1
        if body.isdigit():
            position = int(body)
            if position < 1:
                raise PathError("positional predicates are 1-based")
            return PositionPredicate(position)
        if "=" not in body:
            raise PathError(
                f"only equality and positional predicates supported: "
                f"[{body}]")
        left, __, right = body.partition("=")
        left = left.strip()
        right = right.strip()
        on_attribute = left.startswith("@")
        if on_attribute:
            left = left[1:]
        if not is_valid_name(left):
            raise PathError(f"invalid predicate target {left!r}")
        if len(right) < 2 or right[0] not in "\"'" or right[-1] != right[0]:
            raise PathError(
                f"predicate value must be a quoted string: [{body}]")
        return Predicate(name=left, value=right[1:-1], on_attribute=on_attribute)


# --------------------------------------------------------------------------
# Tree evaluation (used by the native-XML baseline and the tagger)
# --------------------------------------------------------------------------


def evaluate_elements(path: Path, context: Element) -> list[Element]:
    """Elements reached by ``path`` from ``context`` (document order).

    The final step must not be an attribute step.
    """
    if path.is_attribute_path:
        raise PathError("evaluate_elements() cannot target an attribute")
    return _walk_steps(list(path.steps), [context])


def evaluate_strings(path: Path, context: Element) -> list[str]:
    """String values reached by ``path`` from ``context``.

    For element targets this is the element's full text; for attribute
    targets the attribute value. Missing attributes yield nothing.
    """
    steps = list(path.steps)
    if path.is_attribute_path:
        attr_step = steps.pop()
        holders = _walk_steps(steps, [context]) if steps else [context]
        values: list[str] = []
        for holder in holders:
            if attr_step.descendant:
                for descendant in holder.iter():
                    value = descendant.get(attr_step.name)
                    if value is not None:
                        values.append(value)
            else:
                value = holder.get(attr_step.name)
                if value is not None:
                    values.append(value)
        return values
    return [e.full_text() for e in _walk_steps(steps, [context])]


def _walk_steps(steps: list[Step], contexts: list[Element]) -> list[Element]:
    current = contexts
    for step in steps:
        nxt: list[Element] = []
        for element in current:
            nxt.extend(_apply_step(step, element))
        current = _dedupe(nxt)
    return current


def _apply_step(step: Step, context: Element) -> list[Element]:
    if step.is_attribute:
        raise PathError("attribute step in element position")
    if step.descendant:
        candidates = [e for e in context.iter()
                      if e is not context and (step.name == "*" or e.tag == step.name)]
        # descendant-or-self semantics for the root-level tag: //x from the
        # document root includes the root itself when it matches.
        if step.name == "*" or context.tag == step.name:
            candidates = [context] + candidates
    else:
        candidates = (context.child_elements()
                      if step.name == "*"
                      else context.child_elements(step.name))
    if step.predicates:
        candidates = [e for e in candidates
                      if all(p.matches(e) for p in step.predicates)]
    return candidates


def _dedupe(elements: list[Element]) -> list[Element]:
    seen: set[int] = set()
    unique: list[Element] = []
    for element in elements:
        if id(element) not in seen:
            seen.add(id(element))
            unique.append(element)
    return unique
