"""XML substrate: infoset, parser, serializer, DTDs and path expressions.

This package is self-contained (no stdlib ``xml`` involvement) so that the
whole reproduction owns its XML behaviour — document order, whitespace
policy and DTD validation are all specified here and relied on by the
shredder and the query engine.
"""

from repro.xmlkit.doc import (
    Document,
    Element,
    Node,
    Text,
    is_valid_name,
    merge_adjacent_text,
)
from repro.xmlkit.dtd import (
    AttrDecl,
    Dtd,
    DtdTreeNode,
    ElementDecl,
    parse_dtd,
)
from repro.xmlkit.parser import parse_document, parse_fragment
from repro.xmlkit.path import (
    Path,
    Predicate,
    Step,
    evaluate_elements,
    evaluate_strings,
    parse_path,
)
from repro.xmlkit.serializer import serialize, serialize_compact

__all__ = [
    "AttrDecl",
    "Document",
    "Dtd",
    "DtdTreeNode",
    "Element",
    "ElementDecl",
    "Node",
    "Path",
    "Predicate",
    "Step",
    "Text",
    "evaluate_elements",
    "evaluate_strings",
    "is_valid_name",
    "merge_adjacent_text",
    "parse_document",
    "parse_dtd",
    "parse_fragment",
    "parse_path",
    "serialize",
    "serialize_compact",
]
