"""A from-scratch XML 1.0 subset parser.

Covers what the Data Hounds pipeline produces and consumes:

* elements, attributes (single- or double-quoted), text,
* self-closing tags,
* XML declaration (``<?xml ... ?>``) — parsed and discarded,
* ``<!DOCTYPE name ...>`` — the doctype name is kept on the Document,
* comments and CDATA sections,
* the five predefined entities plus decimal/hex character references.

Out of scope (raises :class:`XmlParseError` where detectable): namespaces
beyond colon-in-name, external entities, parameter entities. The parser is
strict about well-formedness — mismatched tags, duplicate attributes and
stray content outside the root are errors, because shredded garbage is far
harder to debug than a parse failure.
"""

from __future__ import annotations

from repro.errors import XmlParseError
from repro.xmlkit.doc import Document, Element, Text, merge_adjacent_text

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_WHITESPACE = " \t\r\n"


class _Cursor:
    """Input cursor with line/column tracking for error messages."""

    __slots__ = ("text", "pos")

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, n: int = 1) -> str:
        return self.text[self.pos:self.pos + n]

    def advance(self, n: int = 1) -> str:
        chunk = self.text[self.pos:self.pos + n]
        self.pos += n
        return chunk

    def startswith(self, prefix: str) -> bool:
        return self.text.startswith(prefix, self.pos)

    def skip_whitespace(self) -> None:
        while not self.eof() and self.text[self.pos] in _WHITESPACE:
            self.pos += 1

    def location(self) -> tuple[int, int]:
        """(line, column), both 1-based, of the current position."""
        consumed = self.text[:self.pos]
        line = consumed.count("\n") + 1
        last_newline = consumed.rfind("\n")
        column = self.pos - last_newline
        return line, column

    def error(self, message: str) -> XmlParseError:
        line, column = self.location()
        return XmlParseError(message, line, column)


def parse_document(text: str, name: str = "") -> Document:
    """Parse an XML document string into a :class:`Document`.

    ``name`` is the warehouse document identity to record on the result.
    Whitespace-only text between elements is dropped (the paper's data
    documents are data-centric, not mixed-content prose).
    """
    cursor = _Cursor(text)
    doctype = _skip_prolog(cursor)
    cursor.skip_whitespace()
    if cursor.eof() or cursor.peek() != "<":
        raise cursor.error("expected root element")
    root = _parse_element(cursor)
    _skip_misc(cursor)
    if not cursor.eof():
        raise cursor.error("content after document root")
    merge_adjacent_text(root)
    _strip_whitespace_text(root)
    return Document(root, name=name, doctype=doctype)


def parse_fragment(text: str) -> Element:
    """Parse a single element (no prolog allowed)."""
    cursor = _Cursor(text)
    cursor.skip_whitespace()
    element = _parse_element(cursor)
    cursor.skip_whitespace()
    if not cursor.eof():
        raise cursor.error("content after fragment element")
    merge_adjacent_text(element)
    _strip_whitespace_text(element)
    return element


def _skip_prolog(cursor: _Cursor) -> str | None:
    """Consume XML declaration, comments, PIs and DOCTYPE before the root."""
    doctype: str | None = None
    while True:
        cursor.skip_whitespace()
        if cursor.startswith("<?"):
            end = cursor.text.find("?>", cursor.pos)
            if end < 0:
                raise cursor.error("unterminated processing instruction")
            cursor.pos = end + 2
        elif cursor.startswith("<!--"):
            _skip_comment(cursor)
        elif cursor.startswith("<!DOCTYPE"):
            doctype = _parse_doctype(cursor)
        else:
            return doctype


def _skip_misc(cursor: _Cursor) -> None:
    """Consume trailing whitespace, comments and PIs after the root."""
    while True:
        cursor.skip_whitespace()
        if cursor.startswith("<!--"):
            _skip_comment(cursor)
        elif cursor.startswith("<?"):
            end = cursor.text.find("?>", cursor.pos)
            if end < 0:
                raise cursor.error("unterminated processing instruction")
            cursor.pos = end + 2
        else:
            return


def _skip_comment(cursor: _Cursor) -> None:
    end = cursor.text.find("-->", cursor.pos + 4)
    if end < 0:
        raise cursor.error("unterminated comment")
    cursor.pos = end + 3


def _parse_doctype(cursor: _Cursor) -> str:
    """Consume ``<!DOCTYPE name [internal subset]>`` and return the name.

    The internal subset, if present, is skipped (DTDs are handled by
    :mod:`repro.xmlkit.dtd` from their own text, not inline)."""
    cursor.advance(len("<!DOCTYPE"))
    cursor.skip_whitespace()
    name = _read_name(cursor)
    depth = 0
    while not cursor.eof():
        ch = cursor.advance()
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        elif ch == ">" and depth == 0:
            return name
    raise cursor.error("unterminated DOCTYPE")


def _read_name(cursor: _Cursor) -> str:
    start = cursor.pos
    text = cursor.text
    while (cursor.pos < len(text)
           and text[cursor.pos] not in _WHITESPACE
           and text[cursor.pos] not in "<>=/[]'\""):
        cursor.pos += 1
    if cursor.pos == start:
        raise cursor.error("expected a name")
    return text[start:cursor.pos]


def _parse_element(cursor: _Cursor) -> Element:
    if cursor.advance() != "<":
        raise cursor.error("expected '<'")
    tag = _read_name(cursor)
    try:
        element = Element(tag)
    except ValueError as exc:
        raise cursor.error(str(exc)) from exc
    # attributes
    while True:
        cursor.skip_whitespace()
        if cursor.eof():
            raise cursor.error(f"unterminated start tag <{tag}>")
        if cursor.startswith("/>"):
            cursor.advance(2)
            return element
        if cursor.peek() == ">":
            cursor.advance()
            break
        attr_name = _read_name(cursor)
        cursor.skip_whitespace()
        if cursor.peek() != "=":
            raise cursor.error(f"attribute {attr_name!r} missing '='")
        cursor.advance()
        cursor.skip_whitespace()
        quote = cursor.peek()
        if quote not in "'\"":
            raise cursor.error(f"attribute {attr_name!r} value must be quoted")
        cursor.advance()
        end = cursor.text.find(quote, cursor.pos)
        if end < 0:
            raise cursor.error(f"unterminated value for attribute {attr_name!r}")
        raw_value = cursor.text[cursor.pos:end]
        cursor.pos = end + 1
        if attr_name in element.attributes:
            raise cursor.error(f"duplicate attribute {attr_name!r} on <{tag}>")
        try:
            element.set(attr_name, _expand_references(raw_value, cursor))
        except ValueError as exc:
            raise cursor.error(str(exc)) from exc
    # content
    while True:
        if cursor.eof():
            raise cursor.error(f"unexpected end of input inside <{tag}>")
        if cursor.startswith("</"):
            cursor.advance(2)
            close = _read_name(cursor)
            cursor.skip_whitespace()
            if cursor.peek() != ">":
                raise cursor.error(f"malformed end tag </{close}")
            cursor.advance()
            if close != tag:
                raise cursor.error(
                    f"mismatched end tag: expected </{tag}>, got </{close}>")
            return element
        if cursor.startswith("<!--"):
            _skip_comment(cursor)
        elif cursor.startswith("<![CDATA["):
            end = cursor.text.find("]]>", cursor.pos + 9)
            if end < 0:
                raise cursor.error("unterminated CDATA section")
            element.append(Text(cursor.text[cursor.pos + 9:end]))
            cursor.pos = end + 3
        elif cursor.startswith("<?"):
            end = cursor.text.find("?>", cursor.pos)
            if end < 0:
                raise cursor.error("unterminated processing instruction")
            cursor.pos = end + 2
        elif cursor.peek() == "<":
            element.append(_parse_element(cursor))
        else:
            element.append(Text(_parse_text(cursor)))


def _parse_text(cursor: _Cursor) -> str:
    start = cursor.pos
    next_tag = cursor.text.find("<", start)
    if next_tag < 0:
        raise cursor.error("text outside of any element")
    raw = cursor.text[start:next_tag]
    cursor.pos = next_tag
    return _expand_references(raw, cursor)


def _expand_references(raw: str, cursor: _Cursor) -> str:
    """Expand entity and character references in text or attribute values."""
    if "&" not in raw:
        if "<" in raw:
            raise cursor.error("raw '<' in character data")
        return raw
    parts: list[str] = []
    index = 0
    while index < len(raw):
        amp = raw.find("&", index)
        if amp < 0:
            parts.append(raw[index:])
            break
        parts.append(raw[index:amp])
        semi = raw.find(";", amp)
        if semi < 0:
            raise cursor.error("unterminated entity reference")
        entity = raw[amp + 1:semi]
        parts.append(_decode_entity(entity, cursor))
        index = semi + 1
    return "".join(parts)


def _decode_entity(entity: str, cursor: _Cursor) -> str:
    if entity.startswith("#x") or entity.startswith("#X"):
        try:
            return chr(int(entity[2:], 16))
        except (ValueError, OverflowError) as exc:
            raise cursor.error(f"bad character reference &{entity};") from exc
    if entity.startswith("#"):
        try:
            return chr(int(entity[1:]))
        except (ValueError, OverflowError) as exc:
            raise cursor.error(f"bad character reference &{entity};") from exc
    try:
        return _PREDEFINED_ENTITIES[entity]
    except KeyError:
        raise cursor.error(f"unknown entity &{entity};") from None


def _strip_whitespace_text(element: Element) -> None:
    """Drop whitespace-only text nodes that sit between elements.

    Text nodes in an element that has element children are presumed to be
    indentation; text in a leaf element is content and kept verbatim.
    """
    has_element_child = any(isinstance(c, Element) for c in element.children)
    if has_element_child:
        kept: list[Element | Text] = []
        for child in element.children:
            if isinstance(child, Text) and not child.value.strip():
                child.parent = None
                continue
            kept.append(child)
        element.children = kept
    for child in element.children:
        if isinstance(child, Element):
            _strip_whitespace_text(child)
