"""A small XML infoset: documents, elements, attributes and text.

This is the data model every other subsystem works against. It is written
from scratch (the paper's gRNA treats XML as its universal interchange
format, so we own the representation end to end) and deliberately covers
the subset of XML 1.0 that biological data conversions need:

* elements with ordered children,
* attributes (unordered, unique per element),
* text content,
* document order.

Namespaces, processing instructions and entity definitions beyond the
five predefined ones are out of scope — none of the paper's DTDs use
them.

Element and text nodes know their parent, their index among their
siblings, and expose a stable *document order* via :meth:`Document.walk`.
Document order is load-bearing: the paper stores order as a data value in
the relational schema so documents can be reconstructed and order-based
XQuery predicates evaluated.
"""

from __future__ import annotations

from typing import Iterable, Iterator


_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_NAME_CHARS = _NAME_START | set("0123456789.-")


def is_valid_name(name: str) -> bool:
    """Return True if ``name`` is a valid XML element/attribute name."""
    if not name:
        return False
    if name[0] not in _NAME_START:
        return False
    return all(ch in _NAME_CHARS for ch in name[1:])


class Node:
    """Base class for tree nodes (elements and text)."""

    __slots__ = ("parent",)

    def __init__(self):
        self.parent: Element | None = None

    def root(self) -> "Node":
        """Return the topmost ancestor (self if detached)."""
        node: Node = self
        while node.parent is not None:
            node = node.parent
        return node


class Text(Node):
    """A text node. Consecutive text children are allowed but the parser
    and builders normally merge them."""

    __slots__ = ("value",)

    def __init__(self, value: str):
        super().__init__()
        if not isinstance(value, str):
            raise TypeError(f"text value must be str, got {type(value).__name__}")
        self.value = value

    def __repr__(self) -> str:
        preview = self.value if len(self.value) <= 30 else self.value[:27] + "..."
        return f"Text({preview!r})"

    def __eq__(self, other) -> bool:
        return isinstance(other, Text) and self.value == other.value

    def __hash__(self):
        return hash(("Text", self.value))


class Element(Node):
    """An XML element: a tag, attributes, and ordered children."""

    __slots__ = ("tag", "attributes", "children")

    def __init__(self, tag: str, attributes: dict[str, str] | None = None,
                 children: Iterable["Element | Text | str"] | None = None):
        super().__init__()
        if not is_valid_name(tag):
            raise ValueError(f"invalid element name: {tag!r}")
        self.tag = tag
        self.attributes: dict[str, str] = {}
        if attributes:
            for key, value in attributes.items():
                self.set(key, value)
        self.children: list[Element | Text] = []
        if children:
            for child in children:
                self.append(child)

    # -- attribute handling -------------------------------------------------

    def set(self, name: str, value: str) -> None:
        """Set attribute ``name`` to ``value`` (stringified)."""
        if not is_valid_name(name):
            raise ValueError(f"invalid attribute name: {name!r}")
        self.attributes[name] = str(value)

    def get(self, name: str, default: str | None = None) -> str | None:
        """Return attribute ``name`` or ``default``."""
        return self.attributes.get(name, default)

    # -- child handling ------------------------------------------------------

    def append(self, child: "Element | Text | str") -> "Element | Text":
        """Append a child node; bare strings become :class:`Text` nodes."""
        if isinstance(child, str):
            child = Text(child)
        if not isinstance(child, (Element, Text)):
            raise TypeError(
                f"child must be Element, Text or str, got {type(child).__name__}")
        if child.parent is not None:
            raise ValueError("node already has a parent; detach it first")
        child.parent = self
        self.children.append(child)
        return child

    def subelement(self, tag: str, attributes: dict[str, str] | None = None,
                   text: str | None = None) -> "Element":
        """Create, append and return a child element (builder helper)."""
        child = Element(tag, attributes)
        if text is not None:
            child.append(Text(text))
        self.append(child)
        return child

    def remove(self, child: "Element | Text") -> None:
        """Remove a direct child (by identity — structurally-equal
        siblings are distinct nodes)."""
        for index, existing in enumerate(self.children):
            if existing is child:
                del self.children[index]
                child.parent = None
                return
        raise ValueError("node is not a child of this element")

    # -- navigation -----------------------------------------------------------

    def child_elements(self, tag: str | None = None) -> list["Element"]:
        """Direct element children, optionally filtered by tag."""
        return [c for c in self.children
                if isinstance(c, Element) and (tag is None or c.tag == tag)]

    def first(self, tag: str) -> "Element | None":
        """First direct child element with the given tag, or None."""
        for child in self.children:
            if isinstance(child, Element) and child.tag == tag:
                return child
        return None

    def iter(self, tag: str | None = None) -> Iterator["Element"]:
        """Depth-first pre-order iteration over self and descendants."""
        if tag is None or self.tag == tag:
            yield self
        for child in self.children:
            if isinstance(child, Element):
                yield from child.iter(tag)

    def text(self) -> str:
        """Concatenated text of direct text children."""
        return "".join(c.value for c in self.children if isinstance(c, Text))

    def full_text(self) -> str:
        """Concatenated text of all descendant text nodes, document order."""
        parts: list[str] = []
        for child in self.children:
            if isinstance(child, Text):
                parts.append(child.value)
            else:
                parts.append(child.full_text())
        return "".join(parts)

    def sibling_index(self) -> int:
        """0-based position among the parent's children (0 if detached;
        identity-based — equal siblings are distinct positions)."""
        if self.parent is None:
            return 0
        for index, child in enumerate(self.parent.children):
            if child is self:
                return index
        raise ValueError("element has a parent it is not a child of")

    def path_from_root(self) -> str:
        """Slash path of tags from the root element to this element."""
        parts: list[str] = []
        node: Element | None = self
        while node is not None:
            parts.append(node.tag)
            node = node.parent
        return "/" + "/".join(reversed(parts))

    # -- comparison -------------------------------------------------------------

    def __eq__(self, other) -> bool:
        """Deep structural equality: tag, attributes and children."""
        if not isinstance(other, Element):
            return NotImplemented
        return (self.tag == other.tag
                and self.attributes == other.attributes
                and self.children == other.children)

    def __hash__(self):
        return hash((self.tag, tuple(sorted(self.attributes.items())),
                     tuple(self.children)))

    def __repr__(self) -> str:
        bits = [self.tag]
        if self.attributes:
            bits.append(f"{len(self.attributes)} attrs")
        if self.children:
            bits.append(f"{len(self.children)} children")
        return f"Element({', '.join(bits)})"


class Document:
    """An XML document: one root element plus an optional name.

    The ``name`` is the warehouse document identity used by XomatiQ's
    ``document("hlx_enzyme.DEFAULT")`` function; it is not part of XML
    proper.
    """

    __slots__ = ("root", "name", "doctype")

    def __init__(self, root: Element, name: str = "", doctype: str | None = None):
        if not isinstance(root, Element):
            raise TypeError("document root must be an Element")
        self.root = root
        self.name = name
        self.doctype = doctype

    def walk(self) -> Iterator[tuple[int, "Element | Text"]]:
        """Yield ``(document_order, node)`` in depth-first pre-order.

        Document order starts at 0 at the root and includes text nodes;
        this is exactly the order value the shredder persists.
        """
        counter = 0

        def _walk(node: Element | Text) -> Iterator[tuple[int, Element | Text]]:
            nonlocal counter
            yield counter, node
            counter += 1
            if isinstance(node, Element):
                for child in node.children:
                    yield from _walk(child)

        yield from _walk(self.root)

    def element_count(self) -> int:
        """Number of element nodes in the document."""
        return sum(1 for _, n in self.walk() if isinstance(n, Element))

    def __eq__(self, other) -> bool:
        if not isinstance(other, Document):
            return NotImplemented
        return self.root == other.root

    def __repr__(self) -> str:
        label = self.name or self.root.tag
        return f"Document({label}, {self.element_count()} elements)"


def merge_adjacent_text(element: Element) -> None:
    """Merge consecutive Text children in-place, recursively.

    Parsers and builders can produce fragmented text runs; the shredder
    assumes at most one text node between any two element siblings.
    """
    merged: list[Element | Text] = []
    for child in element.children:
        if (isinstance(child, Text) and merged
                and isinstance(merged[-1], Text)):
            merged[-1] = Text(merged[-1].value + child.value)
            merged[-1].parent = element
        else:
            merged.append(child)
            if isinstance(child, Element):
                merge_adjacent_text(child)
    element.children = merged
