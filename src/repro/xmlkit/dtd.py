"""DTD model, parser and validator.

The paper's XML-Transformers are driven by per-source DTDs (Figure 5 shows
the ENZYME DTD). This module implements:

* a content-model algebra — ``Name``, ``Seq``, ``Choice``, ``PCData``,
  ``Empty`` and ``Any``, each with an occurrence indicator (`1`, ``?``,
  ``*``, ``+``),
* a parser for ``<!ELEMENT ...>`` and ``<!ATTLIST ...>`` declarations,
* a validator that checks a :class:`~repro.xmlkit.doc.Document` against a
  DTD (content-model matching is done with an NFA built by Thompson-style
  construction over child tag sequences),
* a structural summary (:meth:`Dtd.tree`) used by the visual query
  builder's left panel.

Mixed-content declarations of the form ``(#PCDATA | a | b)*`` are
supported; general external entities are not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import DtdError, DtdValidationError
from repro.xmlkit.doc import Document, Element, Text, is_valid_name

# --------------------------------------------------------------------------
# Content model AST
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Particle:
    """Base class for content-model particles. ``occurs`` is one of
    ``"1"``, ``"?"``, ``"*"``, ``"+"``."""

    occurs: str = "1"

    def with_occurs(self, occurs: str) -> "Particle":
        """A copy of this particle with another occurrence flag."""
        if occurs not in ("1", "?", "*", "+"):
            raise DtdError(f"bad occurrence indicator {occurs!r}")
        return type(self)(**{**self.__dict__, "occurs": occurs})


@dataclass(frozen=True)
class Name(Particle):
    """A reference to a child element by tag."""

    tag: str = ""

    def __str__(self) -> str:
        return self.tag + ("" if self.occurs == "1" else self.occurs)


@dataclass(frozen=True)
class Seq(Particle):
    """An ordered sequence ``(a, b, c)``."""

    items: tuple[Particle, ...] = ()

    def __str__(self) -> str:
        inner = ", ".join(str(i) for i in self.items)
        return f"({inner})" + ("" if self.occurs == "1" else self.occurs)


@dataclass(frozen=True)
class Choice(Particle):
    """An alternation ``(a | b | c)``."""

    items: tuple[Particle, ...] = ()

    def __str__(self) -> str:
        inner = " | ".join(str(i) for i in self.items)
        return f"({inner})" + ("" if self.occurs == "1" else self.occurs)


@dataclass(frozen=True)
class PCData(Particle):
    """Text-only content: ``(#PCDATA)``."""

    def __str__(self) -> str:
        return "(#PCDATA)"


@dataclass(frozen=True)
class Mixed(Particle):
    """Mixed content ``(#PCDATA | a | b)*``."""

    tags: tuple[str, ...] = ()

    def __str__(self) -> str:
        inner = " | ".join(("#PCDATA",) + self.tags)
        return f"({inner})*"


@dataclass(frozen=True)
class Empty(Particle):
    """``EMPTY`` content."""

    def __str__(self) -> str:
        return "EMPTY"


@dataclass(frozen=True)
class AnyContent(Particle):
    """``ANY`` content."""

    def __str__(self) -> str:
        return "ANY"


# --------------------------------------------------------------------------
# Attribute declarations
# --------------------------------------------------------------------------

_ATTR_TYPES = ("CDATA", "NMTOKEN", "NMTOKENS", "ID", "IDREF", "ENTITY")
_NMTOKEN_EXTRA = set(".-_:")


def _is_nmtoken(value: str) -> bool:
    return bool(value) and all(
        ch.isalnum() or ch in _NMTOKEN_EXTRA for ch in value)


@dataclass(frozen=True)
class AttrDecl:
    """One attribute declaration from an ATTLIST."""

    name: str
    attr_type: str = "CDATA"           # or NMTOKEN, or ("a"|"b") enumeration
    enumeration: tuple[str, ...] = ()  # non-empty when enumerated type
    required: bool = False
    default: str | None = None

    def validate_value(self, value: str, element_tag: str) -> None:
        """Check one attribute value against this declaration."""
        if self.enumeration and value not in self.enumeration:
            raise DtdValidationError(
                f"<{element_tag}> attribute {self.name}={value!r} not in "
                f"enumeration {self.enumeration}")
        if self.attr_type == "NMTOKEN" and not _is_nmtoken(value):
            raise DtdValidationError(
                f"<{element_tag}> attribute {self.name}={value!r} "
                f"is not a valid NMTOKEN")


@dataclass
class ElementDecl:
    """One ``<!ELEMENT>`` declaration plus its attributes."""

    tag: str
    content: Particle
    attributes: dict[str, AttrDecl] = field(default_factory=dict)

    def allows_text(self) -> bool:
        """True when text content is legal for this element."""
        return isinstance(self.content, (PCData, Mixed, AnyContent))


# --------------------------------------------------------------------------
# DTD container
# --------------------------------------------------------------------------


class Dtd:
    """A parsed DTD: element declarations keyed by tag.

    The first declared element is taken as the root (the paper's DTDs are
    written root-first, e.g. ``hlx_enzyme``).
    """

    def __init__(self, elements: Iterable[ElementDecl] | None = None,
                 root: str | None = None):
        self.elements: dict[str, ElementDecl] = {}
        for decl in elements or ():
            self.add(decl)
        self._root = root

    def add(self, decl: ElementDecl) -> None:
        """Add a declaration; the first one becomes the root."""
        if decl.tag in self.elements:
            raise DtdError(f"duplicate <!ELEMENT {decl.tag}> declaration")
        self.elements[decl.tag] = decl
        if self._root is None:
            self._root = decl.tag

    @property
    def root(self) -> str:
        """The DTD's root element tag."""
        if self._root is None:
            raise DtdError("empty DTD has no root element")
        return self._root

    def declaration(self, tag: str) -> ElementDecl:
        """The declaration of one element, or :class:`DtdError`."""
        try:
            return self.elements[tag]
        except KeyError:
            raise DtdError(f"element <{tag}> is not declared") from None

    # -- validation -----------------------------------------------------------

    def validate(self, doc: Document) -> None:
        """Raise :class:`DtdValidationError` if ``doc`` violates this DTD."""
        if doc.root.tag != self.root:
            raise DtdValidationError(
                f"root element is <{doc.root.tag}>, DTD expects <{self.root}>")
        self._validate_element(doc.root)

    def is_valid(self, doc: Document) -> bool:
        """True if the document validates."""
        try:
            self.validate(doc)
        except DtdValidationError:
            return False
        return True

    def _validate_element(self, element: Element) -> None:
        decl = self.elements.get(element.tag)
        if decl is None:
            raise DtdValidationError(f"undeclared element <{element.tag}>")
        self._validate_attributes(element, decl)
        self._validate_content(element, decl)
        for child in element.children:
            if isinstance(child, Element):
                self._validate_element(child)

    def _validate_attributes(self, element: Element, decl: ElementDecl) -> None:
        for name, value in element.attributes.items():
            attr = decl.attributes.get(name)
            if attr is None:
                raise DtdValidationError(
                    f"<{element.tag}> has undeclared attribute {name!r}")
            attr.validate_value(value, element.tag)
        for attr in decl.attributes.values():
            if attr.required and attr.name not in element.attributes:
                raise DtdValidationError(
                    f"<{element.tag}> missing required attribute {attr.name!r}")

    def _validate_content(self, element: Element, decl: ElementDecl) -> None:
        content = decl.content
        child_tags = [c.tag for c in element.children if isinstance(c, Element)]
        has_text = any(
            isinstance(c, Text) and c.value.strip() for c in element.children)
        if isinstance(content, Empty):
            if element.children:
                raise DtdValidationError(
                    f"<{element.tag}> is declared EMPTY but has content")
            return
        if isinstance(content, AnyContent):
            return
        if isinstance(content, PCData):
            if child_tags:
                raise DtdValidationError(
                    f"<{element.tag}> is (#PCDATA) but has element children "
                    f"{child_tags}")
            return
        if isinstance(content, Mixed):
            bad = [t for t in child_tags if t not in content.tags]
            if bad:
                raise DtdValidationError(
                    f"<{element.tag}> mixed content disallows {bad}")
            return
        if has_text:
            raise DtdValidationError(
                f"<{element.tag}> has element content but contains text")
        if not _matches(content, child_tags):
            raise DtdValidationError(
                f"<{element.tag}> children {child_tags} do not match "
                f"content model {content}")

    # -- structural summary -----------------------------------------------------

    def tree(self) -> "DtdTreeNode":
        """Structural summary rooted at the DTD root.

        This is what the XomatiQ GUI's left panel renders. Recursion
        guards against cyclic DTDs by truncating repeated tags on a path.
        """
        return self._tree_node(self.root, frozenset())

    def _tree_node(self, tag: str, seen: frozenset[str]) -> "DtdTreeNode":
        decl = self.elements.get(tag)
        node = DtdTreeNode(tag=tag)
        if decl is None or tag in seen:
            return node
        node.attributes = sorted(decl.attributes)
        node.allows_text = decl.allows_text()
        child_seen = seen | {tag}
        for child_tag in _particle_names(decl.content):
            node.children.append(self._tree_node(child_tag, child_seen))
        return node


@dataclass
class DtdTreeNode:
    """One node of the DTD structural summary."""

    tag: str
    attributes: list[str] = field(default_factory=list)
    allows_text: bool = False
    children: list["DtdTreeNode"] = field(default_factory=list)

    def render(self, indent: str = "") -> str:
        """ASCII rendering of the subtree (GUI left-panel substitute)."""
        label = self.tag
        if self.attributes:
            label += " [" + ", ".join("@" + a for a in self.attributes) + "]"
        lines = [indent + label]
        for child in self.children:
            lines.append(child.render(indent + "  "))
        return "\n".join(lines)

    def find(self, tag: str) -> "DtdTreeNode | None":
        """First descendant-or-self node with the given tag."""
        if self.tag == tag:
            return self
        for child in self.children:
            hit = child.find(tag)
            if hit is not None:
                return hit
        return None


def _particle_names(particle: Particle) -> list[str]:
    """Unique child tags mentioned by a content model, declaration order."""
    names: list[str] = []

    def visit(p: Particle) -> None:
        if isinstance(p, Name):
            if p.tag not in names:
                names.append(p.tag)
        elif isinstance(p, (Seq, Choice)):
            for item in p.items:
                visit(item)
        elif isinstance(p, Mixed):
            for tag in p.tags:
                if tag not in names:
                    names.append(tag)

    visit(particle)
    return names


# --------------------------------------------------------------------------
# Content-model matching (NFA over child-tag sequences)
# --------------------------------------------------------------------------


def _matches(particle: Particle, tags: list[str]) -> bool:
    """True if the tag sequence is generated by the content model."""
    # NFA states are integers; transitions: dict state -> list of
    # (tag, next_state); epsilon moves handled via closure sets.
    builder = _NfaBuilder()
    start, end = builder.build(particle)
    current = builder.closure({start})
    for tag in tags:
        nxt: set[int] = set()
        for state in current:
            for move_tag, target in builder.transitions.get(state, ()):
                if move_tag == tag:
                    nxt.add(target)
        if not nxt:
            return False
        current = builder.closure(nxt)
    return end in current


class _NfaBuilder:
    """Thompson construction for content-model particles."""

    def __init__(self):
        self.transitions: dict[int, list[tuple[str, int]]] = {}
        self.epsilon: dict[int, list[int]] = {}
        self._next_state = 0

    def new_state(self) -> int:
        state = self._next_state
        self._next_state += 1
        return state

    def add_move(self, src: int, tag: str, dst: int) -> None:
        self.transitions.setdefault(src, []).append((tag, dst))

    def add_epsilon(self, src: int, dst: int) -> None:
        self.epsilon.setdefault(src, []).append(dst)

    def closure(self, states: set[int]) -> set[int]:
        stack = list(states)
        seen = set(states)
        while stack:
            state = stack.pop()
            for target in self.epsilon.get(state, ()):
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        return seen

    def build(self, particle: Particle) -> tuple[int, int]:
        start, end = self._build_base(particle)
        return self._apply_occurs(start, end, particle.occurs)

    def _build_base(self, particle: Particle) -> tuple[int, int]:
        if isinstance(particle, Name):
            start, end = self.new_state(), self.new_state()
            self.add_move(start, particle.tag, end)
            return start, end
        if isinstance(particle, Seq):
            start = self.new_state()
            current = start
            for item in particle.items:
                i_start, i_end = self.build(item)
                self.add_epsilon(current, i_start)
                current = i_end
            end = self.new_state()
            self.add_epsilon(current, end)
            return start, end
        if isinstance(particle, Choice):
            start, end = self.new_state(), self.new_state()
            for item in particle.items:
                i_start, i_end = self.build(item)
                self.add_epsilon(start, i_start)
                self.add_epsilon(i_end, end)
            return start, end
        raise DtdError(
            f"content particle {type(particle).__name__} cannot be matched")

    def _apply_occurs(self, start: int, end: int, occurs: str) -> tuple[int, int]:
        if occurs == "1":
            return start, end
        outer_start, outer_end = self.new_state(), self.new_state()
        self.add_epsilon(outer_start, start)
        self.add_epsilon(end, outer_end)
        if occurs in ("?", "*"):
            self.add_epsilon(outer_start, outer_end)
        if occurs in ("+", "*"):
            self.add_epsilon(end, start)
        return outer_start, outer_end


# --------------------------------------------------------------------------
# DTD text parser
# --------------------------------------------------------------------------


def parse_dtd(text: str) -> Dtd:
    """Parse DTD text (``<!ELEMENT>`` / ``<!ATTLIST>`` declarations).

    Comments and an optional leading XML declaration are skipped.
    """
    dtd = Dtd()
    pos = 0
    length = len(text)
    pending_attlists: list[tuple[str, list[AttrDecl]]] = []
    while pos < length:
        if text[pos] in " \t\r\n":
            pos += 1
            continue
        if text.startswith("<!--", pos):
            end = text.find("-->", pos + 4)
            if end < 0:
                raise DtdError("unterminated comment in DTD")
            pos = end + 3
            continue
        if text.startswith("<?", pos):
            end = text.find("?>", pos)
            if end < 0:
                raise DtdError("unterminated processing instruction in DTD")
            pos = end + 2
            continue
        if text.startswith("<!ELEMENT", pos):
            end = text.find(">", pos)
            if end < 0:
                raise DtdError("unterminated <!ELEMENT declaration")
            _parse_element_decl(text[pos + len("<!ELEMENT"):end], dtd)
            pos = end + 1
            continue
        if text.startswith("<!ATTLIST", pos):
            end = text.find(">", pos)
            if end < 0:
                raise DtdError("unterminated <!ATTLIST declaration")
            tag, decls = _parse_attlist(text[pos + len("<!ATTLIST"):end])
            pending_attlists.append((tag, decls))
            pos = end + 1
            continue
        raise DtdError(f"unexpected DTD content near {text[pos:pos + 30]!r}")
    for tag, decls in pending_attlists:
        element = dtd.elements.get(tag)
        if element is None:
            raise DtdError(f"ATTLIST for undeclared element <{tag}>")
        for decl in decls:
            element.attributes[decl.name] = decl
    return dtd


def _parse_element_decl(body: str, dtd: Dtd) -> None:
    body = body.strip()
    parts = body.split(None, 1)
    if len(parts) != 2:
        raise DtdError(f"malformed <!ELEMENT {body!r}>")
    tag, model_text = parts
    if not is_valid_name(tag):
        raise DtdError(f"invalid element name {tag!r}")
    dtd.add(ElementDecl(tag=tag, content=_parse_content_model(model_text.strip())))


def _parse_content_model(text: str) -> Particle:
    if text == "EMPTY":
        return Empty()
    if text == "ANY":
        return AnyContent()
    particle, rest = _parse_particle(text)
    if rest.strip():
        raise DtdError(f"trailing content-model text {rest!r}")
    if isinstance(particle, Choice) and any(
            isinstance(i, PCData) for i in particle.items):
        # (#PCDATA | a | b)* form
        tags = tuple(i.tag for i in particle.items if isinstance(i, Name))
        if particle.occurs not in ("*", "1"):
            raise DtdError("mixed content must use the (...)* form")
        return Mixed(tags=tags)
    return particle


def _parse_particle(text: str) -> tuple[Particle, str]:
    text = text.lstrip()
    if not text:
        raise DtdError("empty content particle")
    if text.startswith("("):
        return _parse_group(text)
    if text.startswith("#PCDATA"):
        return PCData(), text[len("#PCDATA"):]
    # a bare name
    index = 0
    while index < len(text) and text[index] not in " \t\r\n,|)?*+":
        index += 1
    name = text[:index]
    if not is_valid_name(name):
        raise DtdError(f"invalid name in content model: {name!r}")
    rest = text[index:]
    occurs, rest = _read_occurs(rest)
    return Name(occurs=occurs, tag=name), rest


def _parse_group(text: str) -> tuple[Particle, str]:
    assert text.startswith("(")
    rest = text[1:]
    items: list[Particle] = []
    separator: str | None = None
    while True:
        particle, rest = _parse_particle(rest)
        items.append(particle)
        rest = rest.lstrip()
        if not rest:
            raise DtdError("unterminated group in content model")
        if rest.startswith(")"):
            rest = rest[1:]
            break
        if rest[0] in ",|":
            if separator is None:
                separator = rest[0]
            elif rest[0] != separator:
                raise DtdError("cannot mix ',' and '|' in one group")
            rest = rest[1:]
            continue
        raise DtdError(f"unexpected character {rest[0]!r} in content model")
    occurs, rest = _read_occurs(rest)
    if len(items) == 1 and separator is None:
        single = items[0]
        if occurs == "1":
            return single, rest
        if single.occurs != "1":
            # ((a*))+ etc: wrap in a sequence to compose occurrences
            return Seq(occurs=occurs, items=(single,)), rest
        return single.with_occurs(occurs), rest
    if separator == "|":
        return Choice(occurs=occurs, items=tuple(items)), rest
    return Seq(occurs=occurs, items=tuple(items)), rest


def _read_occurs(text: str) -> tuple[str, str]:
    if text[:1] in ("?", "*", "+"):
        return text[0], text[1:]
    return "1", text


def _parse_attlist(body: str) -> tuple[str, list[AttrDecl]]:
    tokens = _tokenize_attlist(body)
    if not tokens:
        raise DtdError("empty <!ATTLIST declaration")
    tag = tokens[0]
    decls: list[AttrDecl] = []
    index = 1
    while index < len(tokens):
        if index + 1 >= len(tokens):
            raise DtdError(f"truncated ATTLIST for <{tag}>")
        name = tokens[index]
        type_token = tokens[index + 1]
        index += 2
        enumeration: tuple[str, ...] = ()
        if type_token.startswith("("):
            enumeration = tuple(
                part.strip() for part in type_token.strip("()").split("|"))
            attr_type = "ENUM"
        else:
            attr_type = type_token
            if attr_type not in _ATTR_TYPES:
                raise DtdError(
                    f"unsupported attribute type {attr_type!r} on <{tag}>")
        required = False
        default: str | None = None
        if index < len(tokens) and tokens[index] == "#REQUIRED":
            required = True
            index += 1
        elif index < len(tokens) and tokens[index] == "#IMPLIED":
            index += 1
        elif index < len(tokens) and tokens[index] == "#FIXED":
            index += 1
            if index >= len(tokens):
                raise DtdError(f"#FIXED without value on <{tag}>")
            default = tokens[index].strip("\"'")
            index += 1
        elif index < len(tokens) and tokens[index][0] in "\"'":
            default = tokens[index].strip("\"'")
            index += 1
        else:
            raise DtdError(
                f"attribute {name!r} on <{tag}> missing default declaration")
        decls.append(AttrDecl(name=name, attr_type=attr_type,
                              enumeration=enumeration, required=required,
                              default=default))
    return tag, decls


def _tokenize_attlist(body: str) -> list[str]:
    tokens: list[str] = []
    index = 0
    length = len(body)
    while index < length:
        ch = body[index]
        if ch in " \t\r\n":
            index += 1
            continue
        if ch in "\"'":
            end = body.find(ch, index + 1)
            if end < 0:
                raise DtdError("unterminated default value in ATTLIST")
            tokens.append(body[index:end + 1])
            index = end + 1
            continue
        if ch == "(":
            end = body.find(")", index)
            if end < 0:
                raise DtdError("unterminated enumeration in ATTLIST")
            tokens.append(body[index:end + 1])
            index = end + 1
            continue
        start = index
        while index < length and body[index] not in " \t\r\n\"'(":
            index += 1
        tokens.append(body[start:index])
    return tokens
