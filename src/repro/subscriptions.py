"""Standing queries over a live warehouse.

The gRNA loop the paper sketches: applications consume XomatiQ results,
and Data Hounds "sends out triggers to related applications, indicating
changes to the warehouse". A :class:`QuerySubscription` closes that
loop — it registers a query with a hound, re-evaluates it whenever a
release load changes one of the *sources the query actually reads*
(derived from its FOR bindings), and hands the subscriber a row-level
delta rather than the raw trigger.

Usage::

    hound = warehouse.connect(repository)
    sub = QuerySubscription(warehouse, hound, QUERY_TEXT,
                            on_change=my_callback)
    hound.load("hlx_enzyme")          # initial load fires the callback
    ...
    hound.load("hlx_enzyme")          # refresh: callback gets the delta
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable

from repro.datahounds.triggers import ChangeEvent
from repro.results.resultset import QueryResult, ResultRow
from repro.xquery.parser import parse_query


def _row_key(row: ResultRow, entry_keys: dict[int, tuple]) -> tuple:
    """Canonical identity of a result row.

    Bindings are identified by the *entry* behind them — the durable
    ``(source, entry_key)`` — not by ``doc_id``, which changes whenever
    a refresh re-shreds the entry. Otherwise every content update
    reports the row as removed-and-re-added even when the watched
    values did not change.
    """
    bindings = tuple(sorted(
        (var,) + entry_keys.get(node.doc_id, (node.doc_id,))
        for var, node in row.bindings.items()))
    values = tuple(sorted(
        (column, tuple(values)) for column, values in row.values.items()))
    return bindings, values


@dataclass
class ResultDelta:
    """What changed in a standing query's result after one warehouse
    commit."""

    event: ChangeEvent | None
    added: list[ResultRow] = field(default_factory=list)
    removed: list[ResultRow] = field(default_factory=list)
    total_rows: int = 0

    @property
    def changed(self) -> bool:
        """True when any row was added or removed."""
        return bool(self.added or self.removed)

    def __str__(self) -> str:
        origin = str(self.event) if self.event else "initial"
        return (f"[{origin}] +{len(self.added)} -{len(self.removed)} "
                f"rows (now {self.total_rows})")


DeltaCallback = Callable[[ResultDelta], None]


class QuerySubscription:
    """A standing XomatiQ query bound to a warehouse and its hound."""

    def __init__(self, warehouse, hound, query_text: str,
                 on_change: DeltaCallback | None = None,
                 fire_on_unchanged: bool = False):
        self.warehouse = warehouse
        self.hound = hound
        self.query_text = query_text
        self.on_change = on_change
        self.fire_on_unchanged = fire_on_unchanged
        self.sources = self._sources_of(query_text)
        self._snapshot: dict[tuple, ResultRow] = {}
        self._primed = False
        self.last_result: QueryResult | None = None
        #: re-evaluations / callback invocations (always tracked)
        self.refreshes = 0
        self.deliveries = 0
        self._metrics = getattr(warehouse, "_metrics_sink", None)
        for source in self.sources:
            hound.subscribe(self._handle_event, source)

    @staticmethod
    def _sources_of(query_text: str) -> list[str]:
        """The warehouse sources the query's bindings read."""
        query = parse_query(query_text)
        sources: list[str] = []
        for binding in query.bindings:
            if binding.document is not None:
                source = binding.document.source
                if source not in sources:
                    sources.append(source)
        return sources

    # -- evaluation ---------------------------------------------------------

    def refresh(self, event: ChangeEvent | None = None) -> ResultDelta:
        """Re-run the query and compute the delta against the previous
        snapshot. Called automatically from triggers; callable manually
        to prime the subscription before the first load (a query over a
        not-yet-loaded document is treated as empty, not an error — the
        subscription exists precisely to wait for that load)."""
        from repro.errors import UnknownDocumentError
        start = perf_counter()
        try:
            result = self.warehouse.query(self.query_text)
        except UnknownDocumentError:
            result = QueryResult(columns=[], variables=[])
        self.last_result = result
        entry_keys = self._entry_keys(result)
        current = {_row_key(row, entry_keys): row for row in result.rows}
        delta = ResultDelta(event=event, total_rows=len(current))
        for key, row in current.items():
            if key not in self._snapshot:
                delta.added.append(row)
        for key, row in self._snapshot.items():
            if key not in current:
                delta.removed.append(row)
        self._snapshot = current
        self._primed = True
        self.refreshes += 1
        if self._metrics is not None:
            self._metrics.inc("subscriptions.refreshes")
            self._metrics.observe("subscriptions.refresh_seconds",
                                  perf_counter() - start)
            self._metrics.inc("subscriptions.rows_added", len(delta.added))
            self._metrics.inc("subscriptions.rows_removed",
                              len(delta.removed))
        return delta

    def _entry_keys(self, result: QueryResult) -> dict[int, tuple]:
        """doc_id → (source, entry_key) for every bound document."""
        doc_ids = sorted({node.doc_id for row in result.rows
                          for node in row.bindings.values()})
        mapping: dict[int, tuple] = {}
        for start in range(0, len(doc_ids), 200):
            chunk = doc_ids[start:start + 200]
            id_list = ", ".join(str(int(d)) for d in chunk)
            for doc_id, source, entry_key in self.warehouse.backend.execute(
                    f"SELECT doc_id, source, entry_key FROM documents "
                    f"WHERE doc_id IN ({id_list})"):
                mapping[doc_id] = (source, entry_key)
        return mapping

    def _handle_event(self, event: ChangeEvent) -> None:
        delta = self.refresh(event)
        if self.on_change is not None and (delta.changed
                                           or self.fire_on_unchanged):
            start = perf_counter()
            self.on_change(delta)
            self.deliveries += 1
            if self._metrics is not None:
                self._metrics.inc("subscriptions.deliveries")
                self._metrics.observe("subscriptions.delivery_seconds",
                                      perf_counter() - start)

    def cancel(self) -> None:
        """Stop receiving triggers."""
        for source in self.sources:
            self.hound.triggers.unsubscribe(self._handle_event, source)
