"""Change triggers to subscribed applications.

"Once the changes have been committed to the local warehouse, the Data
Hounds sends out triggers to related applications, indicating changes to
the warehouse" (paper §2.2). We model a trigger as a callback invoked
with a :class:`ChangeEvent`; subscriptions can be scoped to one source
or to all sources.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable


@dataclass(frozen=True)
class ChangeEvent:
    """What changed in one warehouse commit."""

    source: str
    release: str
    added: tuple[str, ...] = ()      # entry keys newly loaded
    updated: tuple[str, ...] = ()    # entry keys whose content changed
    removed: tuple[str, ...] = ()    # entry keys no longer in the source
    #: trace id of the harvest that committed these changes (empty when
    #: the hound ran untraced) — downstream deliveries open spans under
    #: it so one trace covers fetch → store → subscriber push
    trace_id: str = ""

    @property
    def total_changes(self) -> int:
        """Total entries added + updated + removed."""
        return len(self.added) + len(self.updated) + len(self.removed)

    @property
    def touched(self) -> frozenset[str]:
        """Every entry key this commit touched (added|updated|removed)."""
        return frozenset(self.added) | frozenset(self.updated) \
            | frozenset(self.removed)

    def __str__(self) -> str:
        return (f"{self.source}@{self.release}: +{len(self.added)} "
                f"~{len(self.updated)} -{len(self.removed)}")


TriggerCallback = Callable[[ChangeEvent], None]

_ALL_SOURCES = "*"


@dataclass
class TriggerHub:
    """Subscription registry + dispatch.

    Instance counters (``events_fired`` / ``deliveries`` /
    ``failed_deliveries``) always track dispatch; with a
    :class:`repro.obs.MetricsRegistry` attached, fires also land in the
    always-on ``triggers.*`` metrics (event counts per source,
    deliveries, per-callback delivery latency, failures).

    Callbacks are isolated: one raising subscriber is recorded (a
    ``triggers.delivery_failed`` metric + event) and dispatch continues
    to the remaining subscribers — a broken application must never
    starve its neighbours of change notifications. ``deliveries``
    counts only callbacks that returned, so the counter stays truthful
    when one raises.
    """

    _subscribers: dict[str, list[TriggerCallback]] = field(default_factory=dict)
    metrics: object = None
    #: optional :class:`repro.obs.EventLog` — failed deliveries land
    #: here with the callback's error, severity ``error``
    events: object = None
    #: change events dispatched (zero-change events excluded)
    events_fired: int = 0
    #: successful callback invocations across all fires
    deliveries: int = 0
    #: callbacks that raised (isolated, dispatch continued)
    failed_deliveries: int = 0

    def subscribe(self, callback: TriggerCallback,
                  source: str = _ALL_SOURCES) -> None:
        """Register a callback for one source (or ``"*"`` for all)."""
        self._subscribers.setdefault(source, []).append(callback)

    def unsubscribe(self, callback: TriggerCallback,
                    source: str = _ALL_SOURCES) -> None:
        """Remove a subscription (no-op if absent)."""
        callbacks = self._subscribers.get(source, [])
        if callback in callbacks:
            callbacks.remove(callback)

    def fire(self, event: ChangeEvent) -> int:
        """Dispatch an event; returns the number of callbacks invoked.

        Events with no changes are not dispatched (a refresh that found
        the warehouse already current is not a change).
        """
        if event.total_changes == 0:
            return 0
        callbacks = (self._subscribers.get(event.source, [])
                     + self._subscribers.get(_ALL_SOURCES, []))
        self.events_fired += 1
        if self.metrics is not None:
            self.metrics.inc("triggers.events", source=event.source)
        for callback in list(callbacks):
            start = perf_counter()
            try:
                callback(event)
            except Exception as exc:   # noqa: BLE001 - isolation is the point
                self.failed_deliveries += 1
                if self.metrics is not None:
                    self.metrics.inc("triggers.delivery_failed",
                                     source=event.source)
                if self.events is not None:
                    self.events.emit("triggers.delivery_failed",
                                     severity="error", source=event.source,
                                     release=event.release,
                                     error_type=type(exc).__name__,
                                     error=str(exc))
                continue
            self.deliveries += 1
            if self.metrics is not None:
                self.metrics.inc("triggers.deliveries")
                self.metrics.observe("triggers.delivery_seconds",
                                     perf_counter() - start)
        return len(callbacks)
