"""Change triggers to subscribed applications.

"Once the changes have been committed to the local warehouse, the Data
Hounds sends out triggers to related applications, indicating changes to
the warehouse" (paper §2.2). We model a trigger as a callback invoked
with a :class:`ChangeEvent`; subscriptions can be scoped to one source
or to all sources.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable


@dataclass(frozen=True)
class ChangeEvent:
    """What changed in one warehouse commit."""

    source: str
    release: str
    added: tuple[str, ...] = ()      # entry keys newly loaded
    updated: tuple[str, ...] = ()    # entry keys whose content changed
    removed: tuple[str, ...] = ()    # entry keys no longer in the source

    @property
    def total_changes(self) -> int:
        """Total entries added + updated + removed."""
        return len(self.added) + len(self.updated) + len(self.removed)

    def __str__(self) -> str:
        return (f"{self.source}@{self.release}: +{len(self.added)} "
                f"~{len(self.updated)} -{len(self.removed)}")


TriggerCallback = Callable[[ChangeEvent], None]

_ALL_SOURCES = "*"


@dataclass
class TriggerHub:
    """Subscription registry + dispatch.

    Instance counters (``events_fired`` / ``deliveries``) always track
    dispatch; with a :class:`repro.obs.MetricsRegistry` attached, fires
    also land in the always-on ``triggers.*`` metrics (event counts per
    source, deliveries, per-callback delivery latency).
    """

    _subscribers: dict[str, list[TriggerCallback]] = field(default_factory=dict)
    metrics: object = None
    #: change events dispatched (zero-change events excluded)
    events_fired: int = 0
    #: total callback invocations across all fires
    deliveries: int = 0

    def subscribe(self, callback: TriggerCallback,
                  source: str = _ALL_SOURCES) -> None:
        """Register a callback for one source (or ``"*"`` for all)."""
        self._subscribers.setdefault(source, []).append(callback)

    def unsubscribe(self, callback: TriggerCallback,
                    source: str = _ALL_SOURCES) -> None:
        """Remove a subscription (no-op if absent)."""
        callbacks = self._subscribers.get(source, [])
        if callback in callbacks:
            callbacks.remove(callback)

    def fire(self, event: ChangeEvent) -> int:
        """Dispatch an event; returns the number of callbacks invoked.

        Events with no changes are not dispatched (a refresh that found
        the warehouse already current is not a change).
        """
        if event.total_changes == 0:
            return 0
        callbacks = (self._subscribers.get(event.source, [])
                     + self._subscribers.get(_ALL_SOURCES, []))
        self.events_fired += 1
        self.deliveries += len(callbacks)
        if self.metrics is not None:
            self.metrics.inc("triggers.events", source=event.source)
            self.metrics.inc("triggers.deliveries", len(callbacks))
            for callback in callbacks:
                start = perf_counter()
                callback(event)
                self.metrics.observe("triggers.delivery_seconds",
                                     perf_counter() - start)
        else:
            for callback in callbacks:
                callback(event)
        return len(callbacks)
