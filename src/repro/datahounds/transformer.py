"""XML-Transformer base class (paper §2.1).

Writing an XML-transformer for a source "involves specifying a DTD for
the data in the flat-file and a mapping of attributes from the flat-file
to elements and attributes in the DTD". :class:`SourceTransformer`
captures that contract:

* ``name`` — the warehouse document family (e.g. ``hlx_enzyme``); the
  XomatiQ ``document()`` function addresses it as
  ``document("hlx_enzyme.DEFAULT")``,
* ``dtd`` — the parsed DTD the output must validate against,
* ``line_specs`` — the Figure-4-style line-code table with per-entry
  cardinalities,
* :meth:`entry_to_document` — the mapping itself, implemented by each
  source module.

The paper's DTDs wrap each entry in exactly one ``db_entry``, so the
transformer "produces one XML file per entry in the sample data"; we
follow that and emit one :class:`~repro.xmlkit.doc.Document` per entry.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import DtdValidationError, TransformError
from repro.flatfile import CardinalityChecker, Entry, iter_entries
from repro.xmlkit import Document, Dtd, DtdTreeNode

from repro.flatfile.lines import LineSpec


class SourceTransformer:
    """Base class for per-source flat-file → XML transformers."""

    #: warehouse document family, e.g. "hlx_enzyme"
    name: str = ""
    #: default collection suffix used when loading, e.g. "DEFAULT"
    default_collection: str = "DEFAULT"
    #: parsed DTD of the output documents
    dtd: Dtd
    #: line-code table (Figure 4 analogue)
    line_specs: list[LineSpec] = []

    def __init__(self, validate: bool = True):
        if not self.name:
            raise TransformError(
                f"{type(self).__name__} does not define a source name")
        self.validate = validate
        self._checker = CardinalityChecker(self.line_specs)

    # -- the per-source mapping ------------------------------------------------

    def entry_to_document(self, entry: Entry) -> Document:
        """Map one flat-file entry to an XML document. Subclasses
        implement this; they may assume cardinalities already checked."""
        raise NotImplementedError

    def collection_of(self, entry: Entry) -> str:
        """Collection suffix an entry loads into. Most sources use one
        collection; EMBL routes by division (``hlx_embl.inv`` etc.)."""
        return self.default_collection

    def entry_key(self, entry: Entry) -> str:
        """Stable identity of an entry (used by update diffing). Default:
        the data of the first ID line."""
        value = entry.value("ID")
        if value is None:
            raise TransformError(f"{self.name}: entry has no ID line")
        return value.split()[0]

    # -- driver ------------------------------------------------------------------

    def transform_entry(self, entry: Entry) -> Document:
        """Check cardinalities, map, validate; returns the document."""
        label = f"{self.name} entry"
        identity = entry.value("ID")
        if identity:
            label = f"{self.name} entry {identity.split()[0]}"
        self._checker.check(entry.lines, label)
        doc = self.entry_to_document(entry)
        doc.name = self.name
        if self.validate:
            try:
                self.dtd.validate(doc)
            except DtdValidationError as exc:
                raise TransformError(f"{label}: invalid output: {exc}") from exc
        return doc

    def transform(self, source: Iterable[str]) -> Iterator[Document]:
        """Transform a whole flat file (iterable of raw lines) lazily."""
        for entry in iter_entries(source):
            yield self.transform_entry(entry)

    def transform_text(self, text: str) -> list[Document]:
        """Transform a flat-file string eagerly."""
        return list(self.transform(text.splitlines()))

    # -- introspection --------------------------------------------------------------

    def dtd_tree(self) -> DtdTreeNode:
        """Structural summary for the query builder's left panel."""
        return self.dtd.tree()

    def document_name(self, collection: str | None = None) -> str:
        """Full document address, e.g. ``hlx_enzyme.DEFAULT``."""
        return f"{self.name}.{collection or self.default_collection}"
