"""Fault-tolerant transport: retries, integrity checks, circuit breakers.

The Data Hounds' remote mirrors fail in three distinct ways, and each
gets its own counter-measure here:

* **transient failures** (connection resets, temporary 5xx) —
  :class:`RetryPolicy`: bounded attempts with exponential backoff and
  *deterministic* jitter (hashed from source + attempt, so test runs
  replay identical delays), under an optional per-fetch deadline;
* **corrupted/truncated transfers** — payload integrity verification:
  the fetched text's checksum is compared against the checksum the
  repository *advertises* for the release (an FTP mirror's ``.sha``
  sidecar); a mismatch raises :class:`PayloadIntegrityError`, which is
  retryable like any other transport fault;
* **persistently down sources** — a per-source :class:`CircuitBreaker`
  (closed → open after K consecutive failures → half-open probe after
  a cooldown), so a dead mirror costs one short-circuited exception
  per harvest instead of a full retry ladder every time.

:class:`ResilientRepository` composes all three around any repository
(including a :class:`~repro.datahounds.faults.FaultInjectingRepository`
— that pairing is the chaos test-bed). Everything observable flows
through the always-on planes: ``transport.retries`` /
``transport.fetch_errors`` counters, ``transport.breaker_state``
gauges, and ``transport.retry`` / ``transport.breaker_*`` events.

Sleep and clock are injectable, so the full retry/breaker state space
is testable in microseconds.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass

from repro.datahounds.transport import FetchResult, _record_fetch_error
from repro.errors import CircuitOpenError, PayloadIntegrityError, TransportError

#: breaker states, and their numeric codes on the
#: ``transport.breaker_state`` gauge
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

BREAKER_STATE_CODES = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}
BREAKER_STATE_NAMES = {code: name
                       for name, code in BREAKER_STATE_CODES.items()}


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    ``max_attempts`` counts the first try: ``max_attempts=1`` disables
    retrying. Delays grow ``base_delay_s * multiplier**(attempt-1)``
    capped at ``max_delay_s``, then jittered by up to ±``jitter``
    (fractional) using a hash of ``(source, attempt)`` — spread like
    random jitter, reproducible like none. ``deadline_s`` bounds the
    whole fetch (attempts + sleeps): once past it, no further attempt
    is made. (A stalled in-flight call cannot be interrupted; the
    deadline is checked between attempts.)
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 5.0
    jitter: float = 0.1
    deadline_s: float | None = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def delay_for(self, attempt: int, source: str = "") -> float:
        """Backoff delay after the ``attempt``-th failure (1-based)."""
        raw = min(self.base_delay_s * self.multiplier ** (attempt - 1),
                  self.max_delay_s)
        if self.jitter:
            digest = hashlib.sha256(
                f"{source}:{attempt}".encode("utf-8")).hexdigest()[:8]
            unit = int(digest, 16) / 0xFFFFFFFF          # [0, 1]
            raw *= 1.0 + self.jitter * (2.0 * unit - 1.0)
        return max(0.0, raw)


class CircuitBreaker:
    """Per-source breaker: closed → open → half-open → closed.

    ``failure_threshold`` consecutive failures open the breaker; while
    open, :meth:`allow` returns False (callers short-circuit without
    touching the source) until ``cooldown_s`` has elapsed, at which
    point the breaker half-opens and admits one probe. A successful
    probe closes it; a failed probe re-opens it for another cooldown.

    State transitions land on the ``transport.breaker_state`` gauge
    (coded via :data:`BREAKER_STATE_CODES`) and as
    ``transport.breaker_open`` / ``transport.breaker_half_open`` /
    ``transport.breaker_close`` events.
    """

    def __init__(self, source: str, failure_threshold: int = 5,
                 cooldown_s: float = 30.0, clock=time.monotonic,
                 metrics=None, events=None):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.source = source
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.clock = clock
        self.metrics = metrics
        self.events = events
        self.state = CLOSED
        self.consecutive_failures = 0
        self._opened_at: float | None = None
        self._publish_state()

    def allow(self) -> bool:
        """May the caller attempt a fetch right now? (An open breaker
        past its cooldown half-opens and admits the probe.)"""
        if self.state != OPEN:
            return True
        if (self.clock() - self._opened_at) >= self.cooldown_s:
            self._transition(HALF_OPEN)
            return True
        return False

    def record_success(self) -> None:
        """A fetch succeeded: reset the failure streak; a half-open
        probe's success closes the breaker."""
        self.consecutive_failures = 0
        if self.state != CLOSED:
            self._transition(CLOSED)

    def record_failure(self) -> None:
        """A fetch failed: extend the streak; hitting the threshold —
        or failing the half-open probe — opens the breaker."""
        self.consecutive_failures += 1
        if (self.state == HALF_OPEN
                or self.consecutive_failures >= self.failure_threshold):
            if self.state != OPEN:
                self._transition(OPEN)
            self._opened_at = self.clock()

    # -- internals ----------------------------------------------------------

    def _transition(self, state: str) -> None:
        self.state = state
        if state == OPEN and self._opened_at is None:
            self._opened_at = self.clock()
        self._publish_state()
        if self.events is not None:
            severity = "warning" if state == OPEN else "info"
            self.events.emit(f"transport.breaker_{state}",
                             severity=severity, source=self.source,
                             consecutive_failures=self.consecutive_failures)

    def _publish_state(self) -> None:
        if self.metrics is not None:
            self.metrics.set_gauge("transport.breaker_state",
                                   BREAKER_STATE_CODES[self.state],
                                   source=self.source)


class ResilientRepository:
    """Retry + verify + circuit-break around any repository.

    Construction wires the observability planes once; per-source
    breakers are created lazily. The wrapper is transparent on the
    read-only surface, so a :class:`~repro.datahounds.hound.DataHound`
    (or anything speaking the Repository protocol) can use it as a
    drop-in replacement for the raw transport.
    """

    def __init__(self, inner, policy: RetryPolicy | None = None,
                 breaker_threshold: int = 5,
                 breaker_cooldown_s: float = 30.0,
                 verify_integrity: bool = True,
                 sleep=time.sleep, clock=time.monotonic,
                 metrics=None, events=None):
        self.inner = inner
        self.policy = policy if policy is not None else RetryPolicy()
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_s = breaker_cooldown_s
        self.verify_integrity = verify_integrity
        self.sleep = sleep
        self.clock = clock
        self.metrics = metrics
        self.events = events
        self._breakers: dict[str, CircuitBreaker] = {}

    # -- the resilient fetch ------------------------------------------------

    def fetch(self, source: str, release: str | None = None) -> FetchResult:
        """Fetch with retries, integrity verification and breaker
        protection; raises the last :class:`TransportError` when the
        attempt budget (or deadline, or breaker) runs out."""
        breaker = self.breaker(source)
        if not breaker.allow():
            _record_fetch_error(self.metrics, source)
            raise CircuitOpenError(
                f"{source}: circuit breaker open "
                f"({breaker.consecutive_failures} consecutive failures; "
                f"retry after {self.breaker_cooldown_s}s cooldown)")
        policy = self.policy
        deadline = (self.clock() + policy.deadline_s
                    if policy.deadline_s is not None else None)
        attempt = 0
        while True:
            attempt += 1
            try:
                result = self.inner.fetch(source, release)
                self._verify(source, result)
            except TransportError as exc:
                breaker.record_failure()
                if (attempt >= policy.max_attempts
                        or breaker.state == OPEN
                        or (deadline is not None
                            and self.clock() >= deadline)):
                    _record_fetch_error(self.metrics, source)
                    raise TransportError(
                        f"{source}: fetch failed after {attempt} "
                        f"attempt(s): {exc}") from exc
                delay = policy.delay_for(attempt, source)
                if self.metrics is not None:
                    self.metrics.inc("transport.retries", source=source)
                if self.events is not None:
                    self.events.emit(
                        "transport.retry", source=source, attempt=attempt,
                        delay_ms=round(delay * 1000.0, 3), error=str(exc))
                self.sleep(delay)
                continue
            breaker.record_success()
            if attempt > 1 and self.events is not None:
                self.events.emit("transport.recovered", source=source,
                                 attempts=attempt)
            return result

    # -- breaker access -----------------------------------------------------

    def breaker(self, source: str) -> CircuitBreaker:
        """The (lazily created) breaker guarding one source."""
        breaker = self._breakers.get(source)
        if breaker is None:
            breaker = self._breakers[source] = CircuitBreaker(
                source, failure_threshold=self.breaker_threshold,
                cooldown_s=self.breaker_cooldown_s, clock=self.clock,
                metrics=self.metrics, events=self.events)
        return breaker

    def breaker_states(self) -> dict[str, dict]:
        """Per-source breaker status (the health report's view)."""
        return {source: {"state": breaker.state,
                         "consecutive_failures":
                             breaker.consecutive_failures}
                for source, breaker in sorted(self._breakers.items())}

    # -- transparent delegation --------------------------------------------

    def sources(self) -> list[str]:
        """Delegated to the inner repository."""
        return self.inner.sources()

    def releases(self, source: str) -> list[str]:
        """Delegated to the inner repository."""
        return self.inner.releases(source)

    def latest_release(self, source: str) -> str:
        """Delegated to the inner repository."""
        return self.inner.latest_release(source)

    def publish(self, source: str, release: str, text: str):
        """Delegated to the inner repository."""
        return self.inner.publish(source, release, text)

    def checksum(self, source: str, release: str) -> str | None:
        """Delegated to the inner repository (None when it cannot
        advertise checksums)."""
        advertise = getattr(self.inner, "checksum", None)
        return advertise(source, release) if advertise else None

    # -- internals ----------------------------------------------------------

    def _verify(self, source: str, result: FetchResult) -> None:
        if not self.verify_integrity:
            return
        advertise = getattr(self.inner, "checksum", None)
        if advertise is None:
            return
        expected = advertise(source, result.release)
        if expected is None:
            return
        # FetchResult recomputes its checksum from the payload it
        # actually carries, so comparing it against the advertised one
        # catches truncation and corruption alike
        actual = result.checksum
        if actual != expected:
            _record_fetch_error(self.metrics, source)
            if self.metrics is not None:
                self.metrics.inc("transport.integrity_failures",
                                 source=source)
            raise PayloadIntegrityError(
                f"{source}/{result.release}: payload checksum {actual} "
                f"does not match advertised {expected} "
                f"(truncated or corrupted transfer)")
