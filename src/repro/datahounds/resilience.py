"""Fault-tolerant transport: retries, integrity checks, circuit breakers.

The Data Hounds' remote mirrors fail in three distinct ways, and each
gets its own counter-measure here:

* **transient failures** (connection resets, temporary 5xx) —
  :class:`RetryPolicy`: bounded attempts with exponential backoff and
  *deterministic* jitter (hashed from source + attempt, so test runs
  replay identical delays), under an optional per-fetch deadline;
* **corrupted/truncated transfers** — payload integrity verification:
  the fetched text's checksum is compared against the checksum the
  repository *advertises* for the release (an FTP mirror's ``.sha``
  sidecar); a mismatch raises :class:`PayloadIntegrityError`, which is
  retryable like any other transport fault;
* **persistently down sources** — a per-source :class:`CircuitBreaker`
  (closed → open after K consecutive failures → half-open probe after
  a cooldown), so a dead mirror costs one short-circuited exception
  per harvest instead of a full retry ladder every time.

:class:`ResilientRepository` composes all three around any repository
(including a :class:`~repro.datahounds.faults.FaultInjectingRepository`
— that pairing is the chaos test-bed). Everything observable flows
through the always-on planes: ``transport.retries`` /
``transport.fetch_errors`` counters, ``transport.breaker_state``
gauges, and ``transport.retry`` / ``transport.breaker_*`` events.

Sleep and clock are injectable, so the full retry/breaker state space
is testable in microseconds.
"""

from __future__ import annotations

import time

from repro.datahounds.transport import FetchResult, _record_fetch_error
from repro.errors import CircuitOpenError, PayloadIntegrityError, TransportError

# The retry/breaker primitives started life here, guarding the harvest
# transport; they now also guard the federated query path, so they live
# in the shared repro.resilience module. Re-exported for back-compat —
# the defaults still publish under the historical transport.* names.
from repro.resilience import (          # noqa: F401  (re-exports)
    BREAKER_STATE_CODES,
    BREAKER_STATE_NAMES,
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    ManualClock,
    RetryPolicy,
)


class ResilientRepository:
    """Retry + verify + circuit-break around any repository.

    Construction wires the observability planes once; per-source
    breakers are created lazily. The wrapper is transparent on the
    read-only surface, so a :class:`~repro.datahounds.hound.DataHound`
    (or anything speaking the Repository protocol) can use it as a
    drop-in replacement for the raw transport.
    """

    def __init__(self, inner, policy: RetryPolicy | None = None,
                 breaker_threshold: int = 5,
                 breaker_cooldown_s: float = 30.0,
                 verify_integrity: bool = True,
                 sleep=time.sleep, clock=time.monotonic,
                 metrics=None, events=None):
        self.inner = inner
        self.policy = policy if policy is not None else RetryPolicy()
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_s = breaker_cooldown_s
        self.verify_integrity = verify_integrity
        self.sleep = sleep
        self.clock = clock
        self.metrics = metrics
        self.events = events
        self._breakers: dict[str, CircuitBreaker] = {}

    # -- the resilient fetch ------------------------------------------------

    def fetch(self, source: str, release: str | None = None) -> FetchResult:
        """Fetch with retries, integrity verification and breaker
        protection; raises the last :class:`TransportError` when the
        attempt budget (or deadline, or breaker) runs out."""
        breaker = self.breaker(source)
        if not breaker.allow():
            _record_fetch_error(self.metrics, source)
            raise CircuitOpenError(
                f"{source}: circuit breaker open "
                f"({breaker.consecutive_failures} consecutive failures; "
                f"retry after {self.breaker_cooldown_s}s cooldown)")
        policy = self.policy
        deadline = (self.clock() + policy.deadline_s
                    if policy.deadline_s is not None else None)
        attempt = 0
        while True:
            attempt += 1
            try:
                result = self.inner.fetch(source, release)
                self._verify(source, result)
            except TransportError as exc:
                breaker.record_failure()
                if (attempt >= policy.max_attempts
                        or breaker.state == OPEN
                        or (deadline is not None
                            and self.clock() >= deadline)):
                    _record_fetch_error(self.metrics, source)
                    raise TransportError(
                        f"{source}: fetch failed after {attempt} "
                        f"attempt(s): {exc}") from exc
                delay = policy.delay_for(attempt, source)
                if self.metrics is not None:
                    self.metrics.inc("transport.retries", source=source)
                if self.events is not None:
                    self.events.emit(
                        "transport.retry", source=source, attempt=attempt,
                        delay_ms=round(delay * 1000.0, 3), error=str(exc))
                self.sleep(delay)
                continue
            breaker.record_success()
            if attempt > 1 and self.events is not None:
                self.events.emit("transport.recovered", source=source,
                                 attempts=attempt)
            return result

    # -- breaker access -----------------------------------------------------

    def breaker(self, source: str) -> CircuitBreaker:
        """The (lazily created) breaker guarding one source."""
        breaker = self._breakers.get(source)
        if breaker is None:
            breaker = self._breakers[source] = CircuitBreaker(
                source, failure_threshold=self.breaker_threshold,
                cooldown_s=self.breaker_cooldown_s, clock=self.clock,
                metrics=self.metrics, events=self.events)
        return breaker

    def breaker_states(self) -> dict[str, dict]:
        """Per-source breaker status (the health report's view)."""
        return {source: {"state": breaker.state,
                         "consecutive_failures":
                             breaker.consecutive_failures}
                for source, breaker in sorted(self._breakers.items())}

    # -- transparent delegation --------------------------------------------

    def sources(self) -> list[str]:
        """Delegated to the inner repository."""
        return self.inner.sources()

    def releases(self, source: str) -> list[str]:
        """Delegated to the inner repository."""
        return self.inner.releases(source)

    def latest_release(self, source: str) -> str:
        """Delegated to the inner repository."""
        return self.inner.latest_release(source)

    def publish(self, source: str, release: str, text: str):
        """Delegated to the inner repository."""
        return self.inner.publish(source, release, text)

    def checksum(self, source: str, release: str) -> str | None:
        """Delegated to the inner repository (None when it cannot
        advertise checksums)."""
        advertise = getattr(self.inner, "checksum", None)
        return advertise(source, release) if advertise else None

    # -- internals ----------------------------------------------------------

    def _verify(self, source: str, result: FetchResult) -> None:
        if not self.verify_integrity:
            return
        advertise = getattr(self.inner, "checksum", None)
        if advertise is None:
            return
        expected = advertise(source, result.release)
        if expected is None:
            return
        # FetchResult recomputes its checksum from the payload it
        # actually carries, so comparing it against the advertised one
        # catches truncation and corruption alike
        actual = result.checksum
        if actual != expected:
            _record_fetch_error(self.metrics, source)
            if self.metrics is not None:
                self.metrics.inc("transport.integrity_failures",
                                 source=source)
            raise PayloadIntegrityError(
                f"{source}/{result.release}: payload checksum {actual} "
                f"does not match advertised {expected} "
                f"(truncated or corrupted transfer)")
