"""Data Hounds: harvest, transform and load biological sources
(paper §2). See :class:`DataHound` for the orchestrator."""

from repro.datahounds.faults import (
    FaultInjectingRepository,
    FaultPlan,
    FaultSpec,
)
from repro.datahounds.hound import (
    DataHound,
    DocumentStore,
    HarvestReport,
    LoadReport,
    SourceFailure,
)
from repro.datahounds.mapping import strip_trailing_period
from repro.datahounds.registry import SourceRegistry
from repro.datahounds.resilience import (
    CircuitBreaker,
    ResilientRepository,
    RetryPolicy,
)
from repro.datahounds.transformer import SourceTransformer
from repro.datahounds.transport import (
    DirectoryRepository,
    FetchResult,
    InMemoryRepository,
    content_checksum,
)
from repro.datahounds.triggers import ChangeEvent, TriggerHub
from repro.datahounds.updates import (
    ReleaseSnapshot,
    UpdatePlan,
    diff_releases,
    entry_fingerprint,
)

__all__ = [
    "ChangeEvent",
    "CircuitBreaker",
    "DataHound",
    "DirectoryRepository",
    "DocumentStore",
    "FaultInjectingRepository",
    "FaultPlan",
    "FaultSpec",
    "FetchResult",
    "HarvestReport",
    "InMemoryRepository",
    "LoadReport",
    "ReleaseSnapshot",
    "ResilientRepository",
    "RetryPolicy",
    "SourceFailure",
    "SourceRegistry",
    "SourceTransformer",
    "TriggerHub",
    "UpdatePlan",
    "content_checksum",
    "diff_releases",
    "entry_fingerprint",
    "strip_trailing_period",
]
