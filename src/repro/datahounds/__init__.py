"""Data Hounds: harvest, transform and load biological sources
(paper §2). See :class:`DataHound` for the orchestrator."""

from repro.datahounds.hound import DataHound, DocumentStore, LoadReport
from repro.datahounds.mapping import strip_trailing_period
from repro.datahounds.registry import SourceRegistry
from repro.datahounds.transformer import SourceTransformer
from repro.datahounds.transport import (
    DirectoryRepository,
    FetchResult,
    InMemoryRepository,
    content_checksum,
)
from repro.datahounds.triggers import ChangeEvent, TriggerHub
from repro.datahounds.updates import (
    ReleaseSnapshot,
    UpdatePlan,
    diff_releases,
    entry_fingerprint,
)

__all__ = [
    "ChangeEvent",
    "DataHound",
    "DirectoryRepository",
    "DocumentStore",
    "FetchResult",
    "InMemoryRepository",
    "LoadReport",
    "ReleaseSnapshot",
    "SourceRegistry",
    "SourceTransformer",
    "TriggerHub",
    "UpdatePlan",
    "content_checksum",
    "diff_releases",
    "entry_fingerprint",
    "strip_trailing_period",
]
