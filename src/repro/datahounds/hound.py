"""The Data Hound orchestrator (paper Figure 1).

One :class:`DataHound` ties the pipeline together for a set of sources:

1. **transport** — fetch a release from the (simulated) remote
   repository,
2. **XML-Transformer** — flat entries → validated XML documents,
3. **XML2Relational-Transformer** — documents → tuples in the warehouse
   (delegated to a :class:`DocumentStore`, implemented by
   :mod:`repro.shredding.loader`),
4. **updates** — on refresh, only entries whose content changed are
   re-transformed and re-loaded; vanished entries are removed,
5. **triggers** — committed changes are announced to subscribed
   applications.

The hound never interprets documents itself; everything source-specific
lives in the registered transformer.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from time import perf_counter
from typing import Protocol

from repro.datahounds.registry import SourceRegistry
from repro.datahounds.transformer import SourceTransformer
from repro.datahounds.triggers import ChangeEvent, TriggerHub
from repro.datahounds.updates import ReleaseSnapshot, UpdatePlan, diff_releases
from repro.errors import DataHoundsError, ReproError
from repro.flatfile import Entry, parse_entries
from repro.xmlkit import Document


class DocumentStore(Protocol):
    """Where shredded documents land (the relational warehouse).

    Stores may additionally expose ``bulk_session()`` returning a
    context manager with an ``add(source, collection, entry_key,
    document)`` method; the hound then batches release loads through
    it instead of calling :meth:`store_document` per entry."""

    def store_document(self, source: str, collection: str, entry_key: str,
                       document: Document) -> None:
        """Insert or replace one entry's document."""

    def remove_document(self, source: str, collection: str,
                        entry_key: str) -> None:
        """Remove one entry's document (all collections if unknown)."""


class Repository(Protocol):
    """Transport protocol (see :mod:`repro.datahounds.transport`)."""

    def fetch(self, source: str, release: str | None = None):
        """Fetch one release (latest when unspecified)."""

    def latest_release(self, source: str) -> str:
        """Greatest release id of a source."""


@dataclass
class LoadReport:
    """Outcome of one load/refresh."""

    source: str
    release: str
    plan: UpdatePlan
    documents_loaded: int
    triggers_fired: int
    #: entry keys skipped by quarantine mode (malformed content);
    #: empty in strict mode, which aborts the whole release instead
    quarantined: tuple[str, ...] = ()

    def __str__(self) -> str:
        text = (f"{self.source}@{self.release}: loaded "
                f"{self.documents_loaded} documents "
                f"(+{len(self.plan.added)} ~{len(self.plan.updated)} "
                f"-{len(self.plan.removed)}, "
                f"{len(self.plan.unchanged)} unchanged)")
        if self.quarantined:
            text += f", {len(self.quarantined)} quarantined"
        return text


@dataclass(frozen=True)
class SourceFailure:
    """One source's failure inside a multi-source harvest run."""

    source: str
    error: str
    error_type: str

    def __str__(self) -> str:
        return f"{self.source}: {self.error_type}: {self.error}"


@dataclass
class HarvestReport:
    """Outcome of one :meth:`DataHound.harvest_all` run: per-source
    load reports for the sources that made it, per-source failures for
    the ones that did not — one bad mirror never aborts the run."""

    reports: dict[str, LoadReport] = field(default_factory=dict)
    failures: dict[str, SourceFailure] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every source harvested cleanly."""
        return not self.failures

    @property
    def documents_loaded(self) -> int:
        """Total documents loaded across all successful sources."""
        return sum(r.documents_loaded for r in self.reports.values())

    def __str__(self) -> str:
        lines = [f"harvest: {len(self.reports)} ok, "
                 f"{len(self.failures)} failed"]
        for source in sorted(self.reports):
            lines.append(f"  [+] {self.reports[source]}")
        for source in sorted(self.failures):
            lines.append(f"  [!] {self.failures[source]}")
        return "\n".join(lines)


class DataHound:
    """Harvests sources from a repository into a document store."""

    def __init__(self, repository: Repository, store: DocumentStore,
                 registry: SourceRegistry | None = None,
                 validate: bool = True,
                 quarantine: bool = False,
                 tracer=None, metrics=None, events=None,
                 triggers: TriggerHub | None = None):
        self.repository = repository
        self.store = store
        self.registry = registry or SourceRegistry()
        self.validate = validate
        #: quarantine mode skips (and reports) malformed entries
        #: instead of aborting the whole release; the default stays
        #: strict all-or-nothing ("without any information being left
        #: out or added twice")
        self.quarantine = quarantine
        #: optional :class:`repro.obs.Tracer`; loads then run inside
        #: per-phase spans (fetch, diff, transform, store) with
        #: entries/s throughput recorded on the load span
        self.tracer = tracer
        #: optional :class:`repro.obs.MetricsRegistry`; harvests then
        #: feed ``hound.*`` counters/gauges (load counts, entry deltas,
        #: per-source last-harvest timestamp read by the health report)
        self.metrics = metrics
        #: optional :class:`repro.obs.EventLog`; each load emits one
        #: ``hound.load`` event with the release and delta counts
        self.events = events
        #: trigger dispatch; pass a shared :class:`TriggerHub` (the
        #: warehouse owns one) so subscriptions outlive any single
        #: hound — every hound harvesting into the same warehouse then
        #: announces through the same hub
        self.triggers = (triggers if triggers is not None
                         else TriggerHub(metrics=metrics, events=events))
        self._snapshots: dict[str, ReleaseSnapshot] = {}
        self._transformers: dict[str, SourceTransformer] = {}
        # crash recovery: stores that persist release snapshots (the
        # warehouse loader does) hand back every source's last loaded
        # release, so a restarted process resumes incremental diffs
        # instead of re-harvesting from nothing
        restore = getattr(store, "load_snapshots", None)
        if restore is not None:
            for source, (release, fingerprints) in restore().items():
                self._snapshots[source] = ReleaseSnapshot(
                    release, dict(fingerprints))

    # -- public API ---------------------------------------------------------

    def load(self, source: str, release: str | None = None) -> LoadReport:
        """Load (or refresh to) a release of a source.

        The first load of a source fills the warehouse; subsequent loads
        apply only the entry-level diff, so nothing is added twice and
        removals are never left out.
        """
        transformer = self._transformer(source)
        start = perf_counter()
        with self._span("load", source=source) as load_span:
            with self._span("fetch"):
                fetched = self.repository.fetch(source, release)
                entries = parse_entries(fetched.text)
            keyed = [(transformer.entry_key(entry), entry)
                     for entry in entries]
            self._check_duplicate_keys(source, keyed)

            with self._span("diff"):
                new_snapshot = ReleaseSnapshot.build(fetched.release, keyed)
                plan = diff_releases(self._snapshots.get(source),
                                     new_snapshot)

            # two-phase apply: transform every touched entry BEFORE
            # storing anything, so a malformed entry anywhere in the
            # release aborts the refresh with the warehouse untouched
            # ("without any information being left out or added twice").
            # In quarantine mode a malformed entry is skipped and
            # reported instead, and its fingerprint is withheld from
            # the snapshot so the next refresh retries it.
            entry_map = dict(keyed)
            staged: list[tuple[str, str, Document]] = []
            quarantined: list[str] = []
            with self._span("transform"):
                for key in plan.touched:
                    entry = entry_map[key]
                    try:
                        document = transformer.transform_entry(entry)
                    except ReproError as exc:
                        if not self.quarantine:
                            raise
                        quarantined.append(key)
                        self._record_quarantine(source, fetched.release,
                                                key, exc)
                        continue
                    staged.append((key, transformer.collection_of(entry),
                                   document))

            loaded = 0
            with self._span("store") as store_span:
                # stores whose DocumentStore offers a bulk session get
                # the batched pipeline (one transaction per batch of
                # documents); others fall back to per-document upserts
                session_factory = getattr(self.store, "bulk_session", None)
                if session_factory is not None and staged:
                    with session_factory() as session:
                        for key, collection, document in staged:
                            session.add(source, collection, key, document)
                            loaded += 1
                else:
                    for key, collection, document in staged:
                        self.store.store_document(source, collection, key,
                                                  document)
                        loaded += 1
                for key in plan.removed:
                    self.store.remove_document(source, "", key)

            optimize = getattr(self.store, "optimize", None)
            if optimize is not None and not plan.is_noop:
                with self._span("optimize"):
                    optimize()

            if load_span is not None:
                load_span.count("entries", len(keyed))
                load_span.count("loaded", loaded)
                load_span.count("removed", len(plan.removed))
                if store_span is not None and store_span.duration_s > 0:
                    load_span.meta["entries_per_s"] = round(
                        loaded / store_span.duration_s, 2)

        # quarantined keys must not enter the committed snapshot: a new
        # entry that never loaded is withheld entirely, an updated one
        # keeps its previous fingerprint — either way the next refresh
        # sees it as still-pending work instead of already-applied
        if quarantined:
            old_snapshot = self._snapshots.get(source)
            for key in quarantined:
                new_snapshot.fingerprints.pop(key, None)
                if (old_snapshot is not None
                        and key in old_snapshot.fingerprints):
                    new_snapshot.fingerprints[key] = (
                        old_snapshot.fingerprints[key])
        self._snapshots[source] = new_snapshot
        persist = getattr(self.store, "save_snapshot", None)
        if persist is not None:
            persist(source, new_snapshot.release,
                    new_snapshot.fingerprints)
        self._record_load(source, fetched.release, plan, loaded,
                          perf_counter() - start)
        if plan.is_noop:
            # an unchanged re-harvest is not a change: subscribers
            # never see an empty-delta notification
            fired = 0
        else:
            quarantined_set = frozenset(quarantined)
            event = ChangeEvent(
                source=source, release=fetched.release,
                added=tuple(k for k in plan.added
                            if k not in quarantined_set),
                updated=tuple(k for k in plan.updated
                              if k not in quarantined_set),
                removed=plan.removed,
                trace_id=(load_span.trace_id
                          if load_span is not None else ""))
            fired = self.triggers.fire(event)
        return LoadReport(source=source, release=fetched.release, plan=plan,
                          documents_loaded=loaded, triggers_fired=fired,
                          quarantined=tuple(quarantined))

    def refresh(self, source: str) -> LoadReport:
        """Load the latest release of an already-known source."""
        return self.load(source, release=None)

    def harvest_all(self, sources=None,
                    fail_fast: bool = False) -> HarvestReport:
        """Harvest the latest release of every source, isolating
        per-source failures.

        ``sources`` defaults to everything the repository publishes
        that this hound's registry knows how to transform. A source
        whose fetch/transform/load fails lands in
        ``report.failures`` — with its error — while the remaining
        sources still harvest; ``fail_fast=True`` restores the
        abort-on-first-error behaviour.
        """
        if sources is None:
            listed = getattr(self.repository, "sources", None)
            published = listed() if listed is not None else []
            sources = [s for s in published if s in self.registry]
        report = HarvestReport()
        for source in sources:
            try:
                report.reports[source] = self.load(source)
            except ReproError as exc:
                if fail_fast:
                    raise
                report.failures[source] = SourceFailure(
                    source=source, error=str(exc),
                    error_type=type(exc).__name__)
                if self.metrics is not None:
                    self.metrics.inc("hound.harvest_failures",
                                     source=source)
                if self.events is not None:
                    self.events.emit("hound.harvest_error",
                                     severity="error", source=source,
                                     error_type=type(exc).__name__,
                                     error=str(exc))
        if self.events is not None:
            self.events.emit(
                "hound.harvest", ok=len(report.reports),
                failed=len(report.failures),
                documents_loaded=report.documents_loaded)
        return report

    def loaded_release(self, source: str) -> str | None:
        """Release currently reflected in the warehouse, or None."""
        snapshot = self._snapshots.get(source)
        return snapshot.release if snapshot else None

    def subscribe(self, callback, source: str = "*") -> None:
        """Subscribe an application to warehouse change triggers."""
        self.triggers.subscribe(callback, source)

    # -- internals -----------------------------------------------------------

    def _record_load(self, source: str, release: str, plan: UpdatePlan,
                     loaded: int, duration_s: float) -> None:
        """Always-on harvest metrics + one ``hound.load`` event."""
        if self.metrics is not None:
            metrics = self.metrics
            metrics.inc("hound.loads", source=source)
            metrics.observe("hound.load_seconds", duration_s)
            metrics.inc("hound.entries_added", len(plan.added),
                        source=source)
            metrics.inc("hound.entries_updated", len(plan.updated),
                        source=source)
            metrics.inc("hound.entries_removed", len(plan.removed),
                        source=source)
            metrics.inc("hound.entries_unchanged", len(plan.unchanged),
                        source=source)
            metrics.set_gauge("hound.last_harvest_timestamp", time.time(),
                              source=source)
        if self.events is not None:
            self.events.emit(
                "hound.load", source=source, release=release,
                loaded=loaded, added=len(plan.added),
                updated=len(plan.updated), removed=len(plan.removed),
                unchanged=len(plan.unchanged),
                duration_ms=round(duration_s * 1000.0, 3))

    def _record_quarantine(self, source: str, release: str, key: str,
                           exc: Exception) -> None:
        """One malformed entry skipped by quarantine mode."""
        if self.metrics is not None:
            self.metrics.inc("hound.entries_quarantined", source=source)
        if self.events is not None:
            self.events.emit("hound.quarantine", severity="warning",
                             source=source, release=release, entry_key=key,
                             error_type=type(exc).__name__,
                             error=str(exc))

    def _span(self, name: str, **meta):
        """A tracer span, or an inert context when tracing is off."""
        if self.tracer is None:
            return nullcontext(None)
        return self.tracer.span(name, **meta)

    def _transformer(self, source: str) -> SourceTransformer:
        if source not in self._transformers:
            self._transformers[source] = self.registry.create(
                source, validate=self.validate)
        return self._transformers[source]

    @staticmethod
    def _check_duplicate_keys(source: str,
                              keyed: list[tuple[str, Entry]]) -> None:
        seen: set[str] = set()
        for key, __ in keyed:
            if key in seen:
                raise DataHoundsError(
                    f"{source}: duplicate entry key {key!r} in release "
                    f"(would be added twice)")
            seen.add(key)
