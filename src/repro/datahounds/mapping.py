"""Mapping helpers shared by source transformers.

The paper describes each XML-Transformer as "a mapping of the attributes
in this data to elements and attributes in the DTD". Sources differ in
the details (ENZYME packs several cross-references on one ``DR`` line;
EMBL spreads one feature over several ``FT`` lines), but a handful of
shapes recur; this module provides them so each source module stays a
readable description of its format rather than string-plumbing.
"""

from __future__ import annotations

import re

from repro.errors import TransformError
from repro.flatfile import Entry
from repro.xmlkit import Element


def strip_trailing_period(value: str) -> str:
    """Drop one trailing period — flat-file convention ends values with
    '.', the XML versions in the paper's Figure 6 drop it for names."""
    return value[:-1] if value.endswith(".") else value


def add_scalar(parent: Element, tag: str, value: str | None) -> Element | None:
    """Append ``<tag>value</tag>`` unless value is None/empty."""
    if not value:
        return None
    return parent.subelement(tag, text=value)


def add_list(parent: Element, list_tag: str, item_tag: str,
             values: list[str]) -> Element:
    """Append ``<list_tag><item_tag>v</item_tag>...</list_tag>``.

    The list container is always emitted, even when empty — the paper's
    Figure 6 shows ``<disease_list/>`` for an entry with no diseases.
    """
    container = parent.subelement(list_tag)
    for value in values:
        container.subelement(item_tag, text=value)
    return container


def split_semicolon_pairs(data: str, entry_label: str,
                          code: str) -> list[tuple[str, str]]:
    """Parse ``A1, N1 ; A2, N2 ;`` into ``[(A1, N1), (A2, N2)]``.

    This is the ENZYME ``DR`` line shape: pairs of (accession, entry
    name) separated by semicolons, possibly wrapped over several lines.
    """
    pairs: list[tuple[str, str]] = []
    for chunk in data.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "," not in chunk:
            raise TransformError(
                f"{entry_label}: malformed {code} pair {chunk!r}")
        accession, __, name = chunk.partition(",")
        pairs.append((accession.strip(), name.strip()))
    return pairs


def merge_comment_lines(lines: list[str], marker: str = "-!-") -> list[str]:
    """Reassemble comments wrapped over several ``CC`` lines.

    A new comment starts at each ``-!-`` marker; continuation lines are
    appended to the current comment (the shape of the paper's Figure 2,
    reassembled as in Figure 6).
    """
    comments: list[str] = []
    for raw in lines:
        text = raw.strip()
        if not text:
            continue
        if text.startswith(marker):
            comments.append(text[len(marker):].strip())
        else:
            if not comments:
                raise TransformError(
                    f"comment continuation before any {marker} marker: "
                    f"{text!r}")
            comments[-1] += " " + text
    return comments


_DISEASE_RE = re.compile(r"^(?P<name>.*?)\s*;\s*MIM:\s*(?P<mim>\d+)\.?$")


def parse_disease(data: str, entry_label: str) -> tuple[str, str]:
    """Parse an ENZYME ``DI`` line: ``Disease name; MIM:123456.`` →
    ``(name, mim_id)``."""
    match = _DISEASE_RE.match(data.strip())
    if not match:
        raise TransformError(f"{entry_label}: malformed DI line {data!r}")
    return match.group("name"), match.group("mim")


_PROSITE_RE = re.compile(r"^PROSITE\s*;\s*(?P<acc>[A-Z0-9]+)\s*;?\s*$")


def parse_prosite(data: str, entry_label: str) -> str:
    """Parse an ENZYME ``PR`` line: ``PROSITE; PDOC00080;`` → accession."""
    match = _PROSITE_RE.match(data.strip())
    if not match:
        raise TransformError(f"{entry_label}: malformed PR line {data!r}")
    return match.group("acc")


def collect_sequence(entry: Entry, code: str = "  ") -> str:
    """Concatenate sequence continuation lines into one residue string.

    Residue position counters trailing each line (EMBL style) and
    internal whitespace are removed.
    """
    residues: list[str] = []
    for line in entry.all(code):
        for token in line.data.split():
            if token.isdigit():
                continue
            residues.append(token)
    return "".join(residues)
