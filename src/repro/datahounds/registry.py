"""Registry of source transformers.

The hound looks transformers up by source name; the built-in three
(ENZYME, EMBL, Swiss-Prot) are pre-registered, and third parties add
their own — the paper stresses that Data Hounds "contains third-party
programmable mechanisms" for new sources.
"""

from __future__ import annotations

from typing import Type

from repro.datahounds.transformer import SourceTransformer
from repro.errors import UnknownSourceError


class SourceRegistry:
    """Name → transformer class registry."""

    def __init__(self, include_builtin: bool = True):
        self._transformers: dict[str, Type[SourceTransformer]] = {}
        if include_builtin:
            register_builtin_sources(self)

    def register(self, transformer_class: Type[SourceTransformer]) -> None:
        """Register (or replace) a transformer class by its name."""
        name = transformer_class.name
        if not name:
            raise UnknownSourceError(
                f"{transformer_class.__name__} has no source name")
        self._transformers[name] = transformer_class

    def create(self, name: str, validate: bool = True) -> SourceTransformer:
        """Instantiate the transformer registered under ``name``."""
        try:
            transformer_class = self._transformers[name]
        except KeyError:
            known = ", ".join(sorted(self._transformers)) or "(none)"
            raise UnknownSourceError(
                f"no transformer registered for {name!r}; known: {known}"
            ) from None
        return transformer_class(validate=validate)

    def names(self) -> list[str]:
        """Registered source names, sorted."""
        return sorted(self._transformers)

    def __contains__(self, name: str) -> bool:
        return name in self._transformers


def register_builtin_sources(registry: SourceRegistry) -> None:
    """Register the paper's three sources plus the OMIM-style disease
    databank its introduction motivates correlating with."""
    from repro.datahounds.sources.embl import EmblTransformer
    from repro.datahounds.sources.enzyme import EnzymeTransformer
    from repro.datahounds.sources.omim import OmimTransformer
    from repro.datahounds.sources.sprot import SprotTransformer

    registry.register(EnzymeTransformer)
    registry.register(EmblTransformer)
    registry.register(SprotTransformer)
    registry.register(OmimTransformer)
