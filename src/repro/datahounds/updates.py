"""Incremental update detection between source releases.

The paper's second design consideration: "the ability to download and
integrate the latest updates to any database without any information
being left out or added twice." We satisfy it by diffing releases at
the *entry* level: each entry has a stable key (its ID) and a content
fingerprint; comparing the previous release's fingerprint map with the
new one yields exactly the adds, updates and removals to apply.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable

from repro.flatfile import Entry, render_entry


def entry_fingerprint(entry: Entry) -> str:
    """Content fingerprint of an entry (rendered canonical text).

    The full SHA-256 digest, deliberately untruncated: a truncated
    prefix that collides between an entry's old and new content makes
    ``diff_releases`` classify a changed entry as unchanged and
    silently drop it from the update plan — exactly the "information
    left out" failure the hound exists to prevent.
    """
    return hashlib.sha256(
        render_entry(entry).encode("utf-8")).hexdigest()


@dataclass
class ReleaseSnapshot:
    """Fingerprints of every entry in one release: key → fingerprint."""

    release: str
    fingerprints: dict[str, str] = field(default_factory=dict)

    @classmethod
    def build(cls, release: str, keyed_entries: Iterable[tuple[str, Entry]]
              ) -> "ReleaseSnapshot":
        """Fingerprint every entry of one release."""
        snapshot = cls(release)
        for key, entry in keyed_entries:
            snapshot.fingerprints[key] = entry_fingerprint(entry)
        return snapshot

    def __len__(self) -> int:
        return len(self.fingerprints)


@dataclass(frozen=True)
class UpdatePlan:
    """The minimal set of entry-level operations to bring the warehouse
    from one release to another."""

    added: tuple[str, ...]
    updated: tuple[str, ...]
    removed: tuple[str, ...]
    unchanged: tuple[str, ...]

    @property
    def is_noop(self) -> bool:
        """True when the releases are entry-identical."""
        return not (self.added or self.updated or self.removed)

    @property
    def touched(self) -> tuple[str, ...]:
        """Keys whose documents must be (re)loaded."""
        return self.added + self.updated


def diff_releases(old: ReleaseSnapshot | None,
                  new: ReleaseSnapshot) -> UpdatePlan:
    """Compute the update plan from ``old`` (None = empty warehouse) to
    ``new``. Keys are matched exactly; a changed fingerprint is an
    update, so nothing is "added twice" and removals are not "left out".
    """
    old_map = old.fingerprints if old is not None else {}
    new_map = new.fingerprints
    added = tuple(sorted(k for k in new_map if k not in old_map))
    removed = tuple(sorted(k for k in old_map if k not in new_map))
    updated = tuple(sorted(
        k for k in new_map
        if k in old_map and new_map[k] != old_map[k]))
    unchanged = tuple(sorted(
        k for k in new_map
        if k in old_map and new_map[k] == old_map[k]))
    return UpdatePlan(added=added, updated=updated, removed=removed,
                      unchanged=unchanged)
