"""Simulated transport layer for remote biological repositories.

The paper's sources are "accessible through internet protocols such as
FTP and HTTP", with "updates ... provided through pre-designated
locations through the same protocols". This environment has no network,
so we model a remote repository as a set of *releases* per source, each
release a full flat-file dump — the shape of a real FTP mirror
(``enzyme.dat`` re-published monthly). Two implementations:

* :class:`InMemoryRepository` — releases held as strings; used by tests
  and the synthetic-corpus benchmarks,
* :class:`DirectoryRepository` — releases on disk as
  ``<base>/<source>/<release>.dat``; used by the examples.

Both present the same protocol: :meth:`releases`, :meth:`latest_release`
and :meth:`fetch`, with content checksums so the hound can detect that a
release already loaded has not changed.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from time import perf_counter

from repro.errors import TransportError
from repro.obs.metrics import SIZE_BUCKETS, default_registry


def content_checksum(text: str) -> str:
    """Stable checksum of a release's content (first 16 hex chars of
    SHA-256 — plenty for change detection)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def _record_fetch(metrics, source: str, text: str,
                  duration_s: float) -> None:
    """Always-on transport metrics: fetch counts, bytes, latency."""
    if metrics is None:
        metrics = default_registry()
    size = len(text.encode("utf-8"))
    metrics.inc("transport.fetches", source=source)
    metrics.inc("transport.fetch_bytes", size, source=source)
    metrics.observe("transport.fetch_seconds", duration_s)
    metrics.observe("transport.fetch_size_bytes", size,
                    buckets=SIZE_BUCKETS)


def _record_fetch_error(metrics, source: str) -> None:
    """Always-on failure-path counter — a fetch that raises must be as
    visible as one that succeeds, or retry storms look like silence."""
    if metrics is None:
        metrics = default_registry()
    metrics.inc("transport.fetch_errors", source=source)


class FetchResult:
    """One fetched release: content plus provenance."""

    __slots__ = ("source", "release", "text", "checksum")

    def __init__(self, source: str, release: str, text: str):
        self.source = source
        self.release = release
        self.text = text
        self.checksum = content_checksum(text)

    def __repr__(self) -> str:
        return (f"FetchResult({self.source}/{self.release}, "
                f"{len(self.text)} chars, {self.checksum})")


class InMemoryRepository:
    """A fake FTP site whose releases live in a dict.

    Release ids sort lexicographically; the latest release is the
    greatest id (use e.g. ``r2026-01``-style names).

    ``metrics`` defaults to the process-wide registry; fetches record
    count/bytes/latency either way.
    """

    def __init__(self, metrics=None):
        self._releases: dict[str, dict[str, str]] = {}
        self.metrics = metrics

    def publish(self, source: str, release: str, text: str) -> None:
        """Publish (or overwrite) a release of a source."""
        self._releases.setdefault(source, {})[release] = text

    def sources(self) -> list[str]:
        """Published source names."""
        return sorted(self._releases)

    def releases(self, source: str) -> list[str]:
        """Release ids of a source, oldest first."""
        try:
            return sorted(self._releases[source])
        except KeyError:
            raise TransportError(f"unknown source {source!r}") from None

    def latest_release(self, source: str) -> str:
        """Greatest release id of a source."""
        releases = self.releases(source)
        if not releases:
            raise TransportError(f"source {source!r} has no releases")
        return releases[-1]

    def fetch(self, source: str, release: str | None = None) -> FetchResult:
        """Fetch a release (latest when unspecified)."""
        start = perf_counter()
        if release is None:
            release = self.latest_release(source)
        try:
            text = self._releases[source][release]
        except KeyError:
            _record_fetch_error(self.metrics, source)
            raise TransportError(
                f"cannot fetch {source!r} release {release!r}") from None
        _record_fetch(self.metrics, source, text, perf_counter() - start)
        return FetchResult(source, release, text)

    def checksum(self, source: str, release: str) -> str:
        """The advertised content checksum of one release (what a real
        mirror publishes next to the dump); lets transport wrappers
        verify payload integrity independently of the fetch."""
        try:
            return content_checksum(self._releases[source][release])
        except KeyError:
            raise TransportError(
                f"no checksum for {source!r} release {release!r}") from None


class DirectoryRepository:
    """A fake FTP site rooted at a directory.

    Layout: ``<base>/<source>/<release>.dat``. Publishing writes files;
    fetching reads them.
    """

    def __init__(self, base: str | Path, metrics=None):
        self.base = Path(base)
        self.metrics = metrics

    def publish(self, source: str, release: str, text: str) -> Path:
        """Write one release file plus its ``<release>.sha`` checksum
        sidecar (the mirror convention that makes corrupted-transfer
        detection possible); returns the release path."""
        source_dir = self.base / source
        source_dir.mkdir(parents=True, exist_ok=True)
        path = source_dir / f"{release}.dat"
        path.write_text(text, encoding="utf-8")
        (source_dir / f"{release}.sha").write_text(
            content_checksum(text), encoding="utf-8")
        return path

    def sources(self) -> list[str]:
        """Source directories present on disk."""
        if not self.base.is_dir():
            return []
        return sorted(p.name for p in self.base.iterdir() if p.is_dir())

    def releases(self, source: str) -> list[str]:
        """Release ids of a source, oldest first."""
        source_dir = self.base / source
        if not source_dir.is_dir():
            raise TransportError(f"unknown source {source!r}")
        return sorted(p.stem for p in source_dir.glob("*.dat"))

    def latest_release(self, source: str) -> str:
        """Greatest release id of a source."""
        releases = self.releases(source)
        if not releases:
            raise TransportError(f"source {source!r} has no releases")
        return releases[-1]

    def fetch(self, source: str, release: str | None = None) -> FetchResult:
        """Read a release from disk (latest when unspecified).

        When a ``<release>.sha`` sidecar exists (``publish`` always
        writes one) the payload is verified against it, so a truncated
        or bit-rotted file on the mirror raises a retryable
        :class:`TransportError` instead of silently loading garbage."""
        start = perf_counter()
        if release is None:
            release = self.latest_release(source)
        path = self.base / source / f"{release}.dat"
        if not path.is_file():
            _record_fetch_error(self.metrics, source)
            raise TransportError(
                f"cannot fetch {source!r} release {release!r}")
        text = path.read_text(encoding="utf-8")
        expected = self.checksum(source, release)
        if expected is not None and content_checksum(text) != expected:
            _record_fetch_error(self.metrics, source)
            raise TransportError(
                f"{source!r} release {release!r}: on-disk payload does "
                f"not match its .sha sidecar (corrupted mirror copy)")
        _record_fetch(self.metrics, source, text, perf_counter() - start)
        return FetchResult(source, release, text)

    def checksum(self, source: str, release: str) -> str | None:
        """The advertised checksum from the ``<release>.sha`` sidecar,
        or None for releases published without one (pre-sidecar
        mirrors stay fetchable, just unverified)."""
        sidecar = self.base / source / f"{release}.sha"
        if not sidecar.is_file():
            return None
        return sidecar.read_text(encoding="utf-8").strip()
