"""Deterministic fault injection for the transport layer.

The paper's sources live on remote FTP/HTTP mirrors — exactly the kind
of infrastructure that stalls, resets connections, truncates transfers
and occasionally serves a corrupted dump. Reproducing those failure
modes on demand is what makes the resilience layer
(:mod:`repro.datahounds.resilience`) testable: a
:class:`FaultInjectingRepository` wraps any repository and injects
faults according to a :class:`FaultPlan`, and because every decision
comes from per-source seeded RNGs (or explicit scripts), a given plan
replays the *same* fault sequence every run — chaos you can put in a
regression test.

Fault kinds:

* ``transient`` — the fetch raises :class:`TransportError` (connection
  reset / 5xx); succeeds when retried enough times,
* ``stall`` — the fetch sleeps ``stall_s`` before succeeding
  (injectable sleep, so tests pay nothing),
* ``truncate`` — the payload is cut short (a dropped connection
  mid-transfer); detectable only by checksum,
* ``corrupt`` — the payload is altered (a bad mirror); ditto.

Truncated/corrupted payloads are returned *successfully* — like a real
mirror would — so only integrity verification against the release
checksum (``ResilientRepository``) catches them.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.datahounds.transport import FetchResult, _record_fetch_error
from repro.errors import TransportError

#: every fault kind a plan can inject (``ok`` = no fault)
FAULT_KINDS = ("transient", "stall", "truncate", "corrupt")


@dataclass
class FaultSpec:
    """Per-source fault configuration.

    ``script`` is consumed first — an explicit outcome per fetch
    (``"fail-N-then-succeed"`` is a script of N ``"transient"``
    entries); once exhausted, outcomes are drawn from the rates using
    the source's seeded RNG. Rates are cumulative-checked in the order
    transient, truncate, corrupt, stall and must sum to <= 1.
    """

    transient_rate: float = 0.0
    truncate_rate: float = 0.0
    corrupt_rate: float = 0.0
    stall_rate: float = 0.0
    #: injected latency for ``stall`` outcomes, seconds
    stall_s: float = 0.05
    script: tuple[str, ...] = ()

    def __post_init__(self):
        total = (self.transient_rate + self.truncate_rate
                 + self.corrupt_rate + self.stall_rate)
        if total > 1.0 + 1e-9:
            raise ValueError(f"fault rates sum to {total}, must be <= 1")
        for kind in self.script:
            if kind not in FAULT_KINDS and kind != "ok":
                raise ValueError(f"unknown scripted fault {kind!r}")


class FaultPlan:
    """Seedable, per-source fault schedule.

    One RNG per source (seeded from ``(seed, source)``) keeps the fault
    sequence of each source independent of how fetches interleave
    across sources — harvesting sources in a different order replays
    identical per-source faults. :meth:`reset` re-arms scripts and
    RNGs so the same plan object can drive a byte-identical second run.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._specs: dict[str, FaultSpec] = {}
        self._cursors: dict[str, int] = {}
        self._rngs: dict[str, random.Random] = {}
        #: injected fault counts: (source, kind) -> count
        self.injected: dict[tuple[str, str], int] = {}

    def add_source(self, source: str = "*", **spec_kwargs) -> "FaultPlan":
        """Configure faults for one source (``"*"`` = any source
        without its own spec); returns self for chaining."""
        self._specs[source] = FaultSpec(**spec_kwargs)
        return self

    def fail_then_succeed(self, source: str, failures: int,
                          kind: str = "transient") -> "FaultPlan":
        """Script ``failures`` consecutive faults, then clean fetches."""
        self._specs[source] = FaultSpec(script=(kind,) * failures)
        return self

    def spec_for(self, source: str) -> FaultSpec | None:
        """The spec governing one source (wildcard fallback)."""
        spec = self._specs.get(source)
        return spec if spec is not None else self._specs.get("*")

    def next_outcome(self, source: str) -> str:
        """The fault (or ``"ok"``) for this source's next fetch."""
        spec = self.spec_for(source)
        if spec is None:
            return "ok"
        cursor = self._cursors.get(source, 0)
        if cursor < len(spec.script):
            self._cursors[source] = cursor + 1
            outcome = spec.script[cursor]
        else:
            roll = self._rng(source).random()
            outcome = "ok"
            threshold = 0.0
            for kind, rate in (("transient", spec.transient_rate),
                               ("truncate", spec.truncate_rate),
                               ("corrupt", spec.corrupt_rate),
                               ("stall", spec.stall_rate)):
                threshold += rate
                if roll < threshold:
                    outcome = kind
                    break
        if outcome != "ok":
            key = (source, outcome)
            self.injected[key] = self.injected.get(key, 0) + 1
        return outcome

    def reset(self) -> None:
        """Re-arm every script and RNG (identical replay)."""
        self._cursors.clear()
        self._rngs.clear()
        self.injected.clear()

    def injected_total(self) -> int:
        """Total faults injected since construction/reset."""
        return sum(self.injected.values())

    def _rng(self, source: str) -> random.Random:
        rng = self._rngs.get(source)
        if rng is None:
            rng = self._rngs[source] = random.Random(
                f"{self.seed}:{source}")
        return rng


@dataclass
class FaultInjectingRepository:
    """A repository wrapper that injects :class:`FaultPlan` faults.

    Transparent on the read-only surface (``sources``, ``releases``,
    ``latest_release``, ``publish``, ``checksum`` all delegate); only
    ``fetch`` consults the plan. The advertised ``checksum`` always
    comes from the pristine inner repository, so corrupted payloads are
    detectable — exactly the mirror-plus-``.sha``-sidecar situation.
    """

    inner: object
    plan: FaultPlan
    #: injectable sleep for ``stall`` faults (tests pass a recorder)
    sleep: object = time.sleep
    metrics: object = None
    events: object = None

    def fetch(self, source: str, release: str | None = None) -> FetchResult:
        """Fetch through the fault plan."""
        outcome = self.plan.next_outcome(source)
        if outcome != "ok":
            self._note(source, outcome)
        if outcome == "transient":
            _record_fetch_error(self.metrics, source)
            raise TransportError(
                f"{source}: injected transient fetch failure")
        if outcome == "stall":
            spec = self.plan.spec_for(source)
            self.sleep(spec.stall_s if spec is not None else 0.0)
        result = self.inner.fetch(source, release)
        if outcome == "truncate":
            return FetchResult(source, result.release,
                               result.text[:max(1, len(result.text) // 2)])
        if outcome == "corrupt":
            flipped = "#" if not result.text.startswith("#") else "!"
            return FetchResult(source, result.release,
                               flipped + result.text[1:])
        return result

    # -- transparent delegation --------------------------------------------

    def sources(self) -> list[str]:
        """Delegated to the inner repository."""
        return self.inner.sources()

    def releases(self, source: str) -> list[str]:
        """Delegated to the inner repository."""
        return self.inner.releases(source)

    def latest_release(self, source: str) -> str:
        """Delegated to the inner repository."""
        return self.inner.latest_release(source)

    def publish(self, source: str, release: str, text: str):
        """Delegated to the inner repository."""
        return self.inner.publish(source, release, text)

    def checksum(self, source: str, release: str) -> str | None:
        """The pristine release checksum (faults corrupt payloads, not
        the advertised checksum)."""
        advertise = getattr(self.inner, "checksum", None)
        return advertise(source, release) if advertise else None

    def _note(self, source: str, outcome: str) -> None:
        if self.metrics is not None:
            self.metrics.inc("transport.faults_injected",
                             source=source, kind=outcome)
        if self.events is not None:
            self.events.emit("transport.fault_injected", severity="debug",
                             source=source, kind=outcome)
