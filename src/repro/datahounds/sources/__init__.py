"""Built-in source transformers: ENZYME, EMBL, Swiss-Prot, OMIM."""

from repro.datahounds.sources.embl import EmblTransformer
from repro.datahounds.sources.enzyme import EnzymeTransformer
from repro.datahounds.sources.omim import OmimTransformer
from repro.datahounds.sources.sprot import SprotTransformer

__all__ = ["EmblTransformer", "EnzymeTransformer", "OmimTransformer",
           "SprotTransformer"]
