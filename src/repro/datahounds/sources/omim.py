"""An OMIM-style disease-knowledgebase source transformer.

The paper's introduction motivates correlating enzyme/sequence data
with "information on disease" (its reference [26] is OMIM — Online
Mendelian Inheritance in Man), and the ENZYME format already points
into it: ``DI`` lines carry MIM catalogue numbers, which the Figure 5
DTD surfaces as ``disease/@mim_id``. This transformer warehouses a
disease databank keyed by MIM number so that join closes::

    FOR $e IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry,
        $d IN document("hlx_omim.DEFAULT")/hlx_disease/db_entry
    WHERE $e//disease/@mim_id = $d/mim_id
    RETURN $e//enzyme_id, $d//title

Implemented flat-file subset (line-code format per Figure 3):

======  =========================================
``ID``  MIM number
``TI``  title (preferred disease name)
``SY``  synonym(s)
``TX``  free-text description (repeats, wrapped)
``GS``  associated gene symbol(s), ``;``-separated
``IN``  inheritance mode
======  =========================================
"""

from __future__ import annotations

from repro.flatfile import Entry, LineSpec
from repro.datahounds.transformer import SourceTransformer
from repro.errors import TransformError
from repro.xmlkit import Document, Element, parse_dtd

LINE_SPECS = [
    LineSpec("ID", "MIM number", min_count=1, max_count=1),
    LineSpec("TI", "Title", min_count=1, max_count=1),
    LineSpec("SY", "Synonym(s)"),
    LineSpec("TX", "Text description"),
    LineSpec("GS", "Gene symbol(s)"),
    LineSpec("IN", "Inheritance mode", max_count=1),
]

OMIM_DTD_TEXT = """\
<!ELEMENT hlx_disease (db_entry)>
<!ELEMENT db_entry (mim_id, title, synonym_list, description*,
  gene_symbol_list, inheritance?)>
<!ELEMENT mim_id (#PCDATA)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT synonym_list (synonym*)>
<!ELEMENT synonym (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT gene_symbol_list (gene_symbol*)>
<!ELEMENT gene_symbol (#PCDATA)>
<!ELEMENT inheritance (#PCDATA)>
"""

#: A sample entry in the implemented subset, used by tests and docs.
SAMPLE_ENTRY = """\
ID   261600
TI   Phenylketonuria
SY   PKU
SY   Folling disease
TX   An inborn error of amino acid metabolism caused by deficiency
TX   of phenylalanine hydroxylase.
GS   PAH
IN   Autosomal recessive
//
"""


class OmimTransformer(SourceTransformer):
    """Flat OMIM-style entries → ``hlx_disease`` documents."""

    name = "hlx_omim"
    dtd = parse_dtd(OMIM_DTD_TEXT)
    line_specs = LINE_SPECS

    def entry_to_document(self, entry: Entry) -> Document:
        """Map one entry to a <hlx_disease> document (see module docstring
        for the line-code mapping)."""
        mim_id = entry.value("ID")
        if mim_id is None:
            raise TransformError("hlx_omim: entry missing ID line")
        mim_id = mim_id.strip()
        if not mim_id.isdigit():
            raise TransformError(
                f"hlx_omim: MIM number must be numeric, got {mim_id!r}")

        root = Element("hlx_disease")
        db_entry = root.subelement("db_entry")
        db_entry.subelement("mim_id", text=mim_id)
        db_entry.subelement("title", text=entry.value("TI").strip())

        synonyms = db_entry.subelement("synonym_list")
        for line in entry.all("SY"):
            synonyms.subelement("synonym", text=line.data.strip())

        description = entry.joined("TX")
        if description:
            db_entry.subelement("description", text=description)

        genes = db_entry.subelement("gene_symbol_list")
        for line in entry.all("GS"):
            for symbol in line.data.split(";"):
                symbol = symbol.strip()
                if symbol:
                    genes.subelement("gene_symbol", text=symbol)

        inheritance = entry.value("IN")
        if inheritance:
            db_entry.subelement("inheritance", text=inheritance.strip())
        return Document(root, name=self.name)


__all__ = ["LINE_SPECS", "OMIM_DTD_TEXT", "OmimTransformer", "SAMPLE_ENTRY"]
