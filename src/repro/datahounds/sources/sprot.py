"""The Swiss-Prot protein-sequence source transformer.

Figure 8 of the paper searches ``document("hlx_sprot.all")/hlx_n_sequence``
for a keyword and returns ``$b//sprot_accession_number`` — so Swiss-Prot
documents share the normalized ``hlx_n_sequence`` root with EMBL (the
gRNA's uniform sequence shape) while carrying protein-specific children.

Implemented flat-file subset:

======  =========================================================
``ID``  entry name, status, length (``AMD_HUMAN  STANDARD;  PRT;  973 AA.``)
``AC``  accession number(s), ``;``-separated
``DE``  description
``GN``  gene name(s)
``OS``  organism species
``DR``  cross-references (``EMBL; AB012345; -.`` / ``PROSITE; PDOC00080; ...``)
``KW``  keywords
``SQ``  sequence header; residues on blank-code lines
======  =========================================================
"""

from __future__ import annotations

import re

from repro.flatfile import Entry, LineSpec
from repro.datahounds.mapping import collect_sequence, merge_comment_lines
from repro.datahounds.transformer import SourceTransformer
from repro.errors import TransformError
from repro.xmlkit import Document, Element, parse_dtd

LINE_SPECS = [
    LineSpec("ID", "Identification", min_count=1, max_count=1),
    LineSpec("AC", "Accession number(s)", min_count=1),
    LineSpec("DE", "Description", min_count=1),
    LineSpec("GN", "Gene name(s)"),
    LineSpec("OS", "Organism species"),
    LineSpec("DR", "Database cross-references"),
    LineSpec("KW", "Keywords"),
    LineSpec("CC", "Comments"),
    LineSpec("SQ", "Sequence header", max_count=1),
    LineSpec("  ", "Sequence data"),
]

SPROT_DTD_TEXT = """\
<!ELEMENT hlx_n_sequence (db_entry)>
<!ELEMENT db_entry (entry_name, sprot_accession_number+, description,
  gene_name_list, organism?, keyword_list, comment_list,
  db_reference_list, sequence?)>
<!ELEMENT comment_list (comment*)>
<!ELEMENT comment (#PCDATA)>
<!ELEMENT entry_name (#PCDATA)>
<!ELEMENT sprot_accession_number (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT gene_name_list (gene_name*)>
<!ELEMENT gene_name (#PCDATA)>
<!ELEMENT organism (#PCDATA)>
<!ELEMENT keyword_list (keyword*)>
<!ELEMENT keyword (#PCDATA)>
<!ELEMENT db_reference_list (db_reference*)>
<!ELEMENT db_reference (#PCDATA)>
<!ATTLIST db_reference database CDATA #REQUIRED
  primary_id CDATA #REQUIRED>
<!ELEMENT sequence (#PCDATA)>
<!ATTLIST sequence length NMTOKEN #REQUIRED
  molecule_type CDATA #IMPLIED>
"""

#: A small sample in the implemented subset, used by tests and docs.
SAMPLE_ENTRY = """\
ID   CDC6_CAEEL  STANDARD;  PRT;  561 AA.
AC   Q17798;
DE   Cell division control protein 6 homolog (cdc6).
GN   cdc6.
OS   Caenorhabditis elegans.
DR   EMBL; AB012345; -.
DR   PROSITE; PDOC00080; PS00017.
KW   Cell cycle; DNA replication; ATP-binding.
SQ   SEQUENCE   561 AA;  63208 MW;  3FA2B1C9 CRC32;
     MSTRSKRKLV FDDIAEPSTS RRSSRIAAAS SSSTLNNFVT PSKSGRVLRS SSRLAASQSQ
     MLSPFKRDLG QSPAKSIRSD LFANSPLKSP KKRLIFDEDE AESSELLSSS PAKKSTASLL
//
"""

_ID_RE = re.compile(
    r"^(?P<name>[A-Za-z0-9_]+)\s+"
    r"(?P<status>STANDARD|PRELIMINARY|Reviewed|Unreviewed)\s*;\s*"
    r"(?:PRT\s*;)?\s*"
    r"(?P<length>\d+)\s+AA\.?\s*$")


class SprotTransformer(SourceTransformer):
    """Flat Swiss-Prot entries → ``hlx_n_sequence`` documents."""

    name = "hlx_sprot"
    default_collection = "all"
    dtd = parse_dtd(SPROT_DTD_TEXT)
    line_specs = LINE_SPECS

    def entry_to_document(self, entry: Entry) -> Document:
        """Map one entry to a <hlx_n_sequence> document (see module docstring
        for the line-code mapping)."""
        id_line = entry.value("ID")
        if id_line is None:
            raise TransformError("hlx_sprot: entry missing ID line")
        match = _ID_RE.match(id_line.strip())
        if not match:
            raise TransformError(f"hlx_sprot: malformed ID line {id_line!r}")
        entry_name = match.group("name")
        length = match.group("length")
        label = f"hlx_sprot entry {entry_name}"

        root = Element("hlx_n_sequence")
        db_entry = root.subelement("db_entry")
        db_entry.subelement("entry_name", text=entry_name)
        for line in entry.all("AC"):
            for accession in line.data.split(";"):
                accession = accession.strip()
                if accession:
                    db_entry.subelement("sprot_accession_number",
                                        text=accession)
        description = " ".join(line.data.strip() for line in entry.all("DE"))
        db_entry.subelement("description", text=description)

        genes = db_entry.subelement("gene_name_list")
        for line in entry.all("GN"):
            for gene in re.split(r"[;,]| OR | AND ", line.data):
                gene = gene.strip().rstrip(".")
                if gene:
                    genes.subelement("gene_name", text=gene)

        organism = " ".join(line.data.strip() for line in entry.all("OS"))
        if organism:
            db_entry.subelement("organism", text=organism.rstrip("."))

        keywords = db_entry.subelement("keyword_list")
        for line in entry.all("KW"):
            for keyword in line.data.rstrip(".").split(";"):
                keyword = keyword.strip()
                if keyword:
                    keywords.subelement("keyword", text=keyword)

        comments = db_entry.subelement("comment_list")
        for comment in merge_comment_lines(
                [line.data for line in entry.all("CC")]):
            comments.subelement("comment", text=comment)

        references = db_entry.subelement("db_reference_list")
        for line in entry.all("DR"):
            database, primary_id, remainder = _parse_dr(line.data, label)
            reference = references.subelement(
                "db_reference", text=remainder if remainder else None)
            reference.set("database", database)
            reference.set("primary_id", primary_id)

        residues = collect_sequence(entry)
        if residues or entry.first("SQ") is not None:
            sequence = db_entry.subelement("sequence", text=residues)
            sequence.set("length", length)
            sequence.set("molecule_type", "protein")

        return Document(root, name=self.name)

    def entry_key(self, entry: Entry) -> str:
        """Primary accession number — stable across entry renames."""
        ac_line = entry.value("AC")
        if ac_line is None:
            raise TransformError("hlx_sprot: entry missing AC line")
        return ac_line.split(";")[0].strip()


def _parse_dr(data: str, label: str) -> tuple[str, str, str]:
    """Parse ``DATABASE; PRIMARY_ID; rest.`` into its three parts."""
    parts = [part.strip() for part in data.rstrip(".").split(";")]
    if len(parts) < 2 or not parts[0] or not parts[1]:
        raise TransformError(f"{label}: malformed DR line {data!r}")
    remainder = "; ".join(part for part in parts[2:] if part and part != "-")
    return parts[0], parts[1], remainder


__all__ = ["SPROT_DTD_TEXT", "SprotTransformer", "LINE_SPECS", "SAMPLE_ENTRY"]
