"""The ENZYME source transformer — the paper's worked example.

ENZYME (ExPASy/SIB) describes each characterized enzyme with an EC
number. The paper walks this source end to end:

* Figure 2 — a sample flat-file entry (EC 1.14.17.3), reproduced
  verbatim below as :data:`SAMPLE_ENTRY`,
* Figure 3 — the line structure (handled by :mod:`repro.flatfile`),
* Figure 4 — the line-code table, :data:`LINE_SPECS`,
* Figure 5 — the DTD, :data:`ENZYME_DTD_TEXT`,
* Figure 6 — the XML output for the sample entry; the golden test
  ``tests/datahounds/test_enzyme.py`` checks our transformer emits it.

Mapping notes (following Figure 6 exactly):

* one ``catalytic_activity`` element per ``CA`` line (wrapped reactions
  stay split, as in Figure 6),
* ``CC`` lines are merged into comments at ``-!-`` markers,
* ``AN`` and ``CF`` values drop their trailing period (Figure 6 shows
  "Peptidyl alpha-amidating enzyme" for "Peptidyl alpha-amidating
  enzyme."), ``DE`` keeps it ("Peptidylglycine monooxygenase."),
* ``DR`` pairs become ``<reference name=... swissprot_accession_number=...>``,
* list containers are emitted even when empty (``<disease_list/>``).
"""

from __future__ import annotations

from repro.flatfile import Entry, LineSpec
from repro.datahounds.mapping import (
    add_list,
    merge_comment_lines,
    parse_disease,
    parse_prosite,
    split_semicolon_pairs,
    strip_trailing_period,
)
from repro.datahounds.transformer import SourceTransformer
from repro.errors import TransformError
from repro.xmlkit import Document, Element, parse_dtd

#: Figure 4 — line types, codes and per-entry cardinalities.
LINE_SPECS = [
    LineSpec("ID", "Identification", min_count=1, max_count=1),
    LineSpec("DE", "Description", min_count=1),
    LineSpec("AN", "Alternate name(s)"),
    LineSpec("CA", "Catalytic activity"),
    LineSpec("CF", "Cofactor(s)"),
    LineSpec("CC", "Comments"),
    LineSpec("DI", "Diseases"),
    LineSpec("PR", "Cross-references to PROSITE"),
    LineSpec("DR", "Cross-references to SWISS-PROT"),
]

#: Figure 5 — the ENZYME DTD (names use underscores; the paper's PDF
#: renders them with spaces).
ENZYME_DTD_TEXT = """\
<!ELEMENT hlx_enzyme (db_entry)>
<!ELEMENT db_entry (enzyme_id, enzyme_description+, alternate_name_list,
  catalytic_activity*, cofactor_list, comment_list, prosite_reference*,
  swissprot_reference_list, disease_list)>
<!ELEMENT enzyme_id (#PCDATA)>
<!ELEMENT enzyme_description (#PCDATA)>
<!ELEMENT alternate_name_list (alternate_name*)>
<!ELEMENT alternate_name (#PCDATA)>
<!ELEMENT catalytic_activity (#PCDATA)>
<!ELEMENT cofactor_list (cofactor*)>
<!ELEMENT cofactor (#PCDATA)>
<!ELEMENT comment_list (comment*)>
<!ELEMENT comment (#PCDATA)>
<!ELEMENT prosite_reference (#PCDATA)>
<!ATTLIST prosite_reference
  prosite_accession_number NMTOKEN #REQUIRED>
<!ELEMENT swissprot_reference_list (reference*)>
<!ELEMENT reference (#PCDATA)>
<!ATTLIST reference name CDATA #REQUIRED
  swissprot_accession_number NMTOKEN #REQUIRED>
<!ELEMENT disease_list (disease*)>
<!ELEMENT disease (#PCDATA)>
<!ATTLIST disease mim_id CDATA #REQUIRED>
"""

#: Figure 2 — the sample entry, verbatim.
SAMPLE_ENTRY = """\
ID   1.14.17.3
DE   Peptidylglycine monooxygenase.
AN   Peptidyl alpha-amidating enzyme.
AN   Peptidylglycine 2-hydroxylase.
CA   Peptidylglycine + ascorbate + O(2) = peptidyl(2-hydroxyglycine) +
CA   dehydroascorbate + H(2)O.
CF   Copper.
CC   -!- Peptidylglycines with a neutral amino acid residue in the
CC       penultimate position are the best substrates for the enzyme.
CC   -!- The enzyme also catalyzes the dismutatation of the product to
CC       glyoxylate and the corresponding desglycine peptide amide.
PR   PROSITE; PDOC00080;
DR   P10731, AMD_BOVIN ; P19021, AMD_HUMAN ; P14925, AMD_RAT ;
DR   P08478, AMD1_XENLA; P12890, AMD2_XENLA;
//
"""


class EnzymeTransformer(SourceTransformer):
    """Flat ENZYME entries → ``hlx_enzyme`` documents (Figure 5 DTD)."""

    name = "hlx_enzyme"
    dtd = parse_dtd(ENZYME_DTD_TEXT)
    line_specs = LINE_SPECS

    def entry_to_document(self, entry: Entry) -> Document:
        """Map one entry to a <hlx_enzyme> document (see module docstring
        for the line-code mapping)."""
        ec_number = entry.value("ID")
        if ec_number is None:
            raise TransformError("hlx_enzyme: entry missing ID line")
        label = f"hlx_enzyme entry {ec_number}"

        root = Element("hlx_enzyme")
        db_entry = root.subelement("db_entry")
        db_entry.subelement("enzyme_id", text=ec_number.strip())
        for line in entry.all("DE"):
            db_entry.subelement("enzyme_description", text=line.data.strip())

        add_list(db_entry, "alternate_name_list", "alternate_name",
                 [strip_trailing_period(line.data.strip())
                  for line in entry.all("AN")])

        for line in entry.all("CA"):
            db_entry.subelement("catalytic_activity",
                                text=strip_trailing_period(line.data.strip()))

        add_list(db_entry, "cofactor_list", "cofactor",
                 [strip_trailing_period(line.data.strip())
                  for line in entry.all("CF")])

        add_list(db_entry, "comment_list", "comment",
                 merge_comment_lines([line.data for line in entry.all("CC")]))

        for line in entry.all("PR"):
            accession = parse_prosite(line.data, label)
            reference = db_entry.subelement("prosite_reference")
            reference.set("prosite_accession_number", accession)

        references = db_entry.subelement("swissprot_reference_list")
        for line in entry.all("DR"):
            for accession, name in split_semicolon_pairs(line.data, label, "DR"):
                reference = references.subelement("reference")
                reference.set("name", name)
                reference.set("swissprot_accession_number", accession)

        diseases = db_entry.subelement("disease_list")
        for line in entry.all("DI"):
            disease_name, mim_id = parse_disease(line.data, label)
            disease = diseases.subelement("disease", text=disease_name)
            disease.set("mim_id", mim_id)

        return Document(root, name=self.name)


__all__ = [
    "ENZYME_DTD_TEXT",
    "EnzymeTransformer",
    "LINE_SPECS",
    "SAMPLE_ENTRY",
]
