"""The EMBL nucleotide-sequence source transformer.

The paper's Figure 8 queries ``document("hlx_embl.inv")/hlx_n_sequence``
and Figure 11 joins ``$a//qualifier[@qualifier_type = "EC_number"]``
against ENZYME ids and returns ``$a//embl_accession_number`` and
``$a//description`` — so the EMBL warehouse documents must be rooted at
``hlx_n_sequence`` (the gRNA's normalized nucleotide-sequence shape) and
carry feature qualifiers, the accession number and a description.

We implement the EMBL flat-file subset that feeds those elements:

======  ======================================================
``ID``  entry name, division (e.g. ``INV``), length
``AC``  accession number(s), ``;``-separated
``DE``  description (may span lines, joined)
``KW``  keywords, ``;``-separated, ``.``-terminated
``OS``  organism species
``FT``  feature table: key + location, then ``/name="value"``
        qualifier continuations
``SQ``  sequence header; residues follow on blank-code lines
======  ======================================================

Division is the collection suffix: an entry in division ``INV`` loads
into ``hlx_embl.inv`` — exactly the address Figure 8 uses.
"""

from __future__ import annotations

import re

from repro.flatfile import Entry, LineSpec
from repro.datahounds.mapping import collect_sequence, merge_comment_lines
from repro.datahounds.transformer import SourceTransformer
from repro.errors import TransformError
from repro.xmlkit import Document, Element, parse_dtd

LINE_SPECS = [
    LineSpec("ID", "Identification", min_count=1, max_count=1),
    LineSpec("AC", "Accession number(s)", min_count=1),
    LineSpec("DE", "Description", min_count=1),
    LineSpec("KW", "Keywords"),
    LineSpec("OS", "Organism species"),
    LineSpec("CC", "Comments"),
    LineSpec("FT", "Feature table"),
    LineSpec("SQ", "Sequence header", max_count=1),
    LineSpec("  ", "Sequence data"),
]

EMBL_DTD_TEXT = """\
<!ELEMENT hlx_n_sequence (db_entry)>
<!ELEMENT db_entry (entry_name, embl_accession_number+, description,
  division, keyword_list, organism?, comment_list, feature_list,
  sequence?)>
<!ELEMENT comment_list (comment*)>
<!ELEMENT comment (#PCDATA)>
<!ELEMENT entry_name (#PCDATA)>
<!ELEMENT embl_accession_number (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT division (#PCDATA)>
<!ELEMENT keyword_list (keyword*)>
<!ELEMENT keyword (#PCDATA)>
<!ELEMENT organism (#PCDATA)>
<!ELEMENT feature_list (feature*)>
<!ELEMENT feature (qualifier*)>
<!ATTLIST feature feature_key CDATA #REQUIRED
  location CDATA #REQUIRED>
<!ELEMENT qualifier (#PCDATA)>
<!ATTLIST qualifier qualifier_type CDATA #REQUIRED>
<!ELEMENT sequence (#PCDATA)>
<!ATTLIST sequence length NMTOKEN #REQUIRED
  molecule_type CDATA #IMPLIED>
"""

#: A small sample in the implemented subset, used by tests and docs.
SAMPLE_ENTRY = """\
ID   CEcdc6gene; SV 1; INV; 1859 BP.
AC   AB012345;
DE   Caenorhabditis elegans cdc6 gene for cell division control
DE   protein 6, complete cds.
KW   cdc6; cell cycle; DNA replication.
OS   Caenorhabditis elegans
FT   CDS             join(100..450,520..900)
FT                   /gene="cdc6"
FT                   /product="cell division control protein 6"
FT                   /EC_number="3.6.4.12"
SQ   Sequence 1859 BP; 501 A; 419 C; 398 G; 541 T; 0 other;
     aacgttgcaa ttgcgtacgt agctagctag catcgatcgt acgtagcatc gatcgatcga 60
     ttgcacgtgc atcgatcgta cgatcgatcg tacgtagcat cgatcgatcg atcgtacgta 120
//
"""

_ID_RE = re.compile(
    r"^(?P<name>[A-Za-z0-9_]+)\s*;"
    r"(?:\s*SV\s+\d+\s*;)?"
    r"\s*(?P<division>[A-Za-z]+)\s*;"
    r"\s*(?P<length>\d+)\s+BP\.?\s*$")

_QUALIFIER_RE = re.compile(r'^/(?P<type>[A-Za-z_][A-Za-z0-9_]*)'
                           r'(?:=(?P<value>.*))?$')


class EmblTransformer(SourceTransformer):
    """Flat EMBL entries → ``hlx_n_sequence`` documents."""

    name = "hlx_embl"
    default_collection = "inv"
    dtd = parse_dtd(EMBL_DTD_TEXT)
    line_specs = LINE_SPECS

    def entry_to_document(self, entry: Entry) -> Document:
        """Map one entry to a <hlx_n_sequence> document (see module docstring
        for the line-code mapping)."""
        id_line = entry.value("ID")
        if id_line is None:
            raise TransformError("hlx_embl: entry missing ID line")
        match = _ID_RE.match(id_line.strip())
        if not match:
            raise TransformError(
                f"hlx_embl: malformed ID line {id_line!r}")
        entry_name = match.group("name")
        division = match.group("division").lower()
        length = match.group("length")
        label = f"hlx_embl entry {entry_name}"

        root = Element("hlx_n_sequence")
        db_entry = root.subelement("db_entry")
        db_entry.subelement("entry_name", text=entry_name)
        for line in entry.all("AC"):
            for accession in line.data.split(";"):
                accession = accession.strip()
                if accession:
                    db_entry.subelement("embl_accession_number",
                                        text=accession)
        description = " ".join(line.data.strip() for line in entry.all("DE"))
        db_entry.subelement("description", text=description)
        db_entry.subelement("division", text=division)

        keywords = db_entry.subelement("keyword_list")
        for line in entry.all("KW"):
            for keyword in line.data.rstrip(".").split(";"):
                keyword = keyword.strip()
                if keyword:
                    keywords.subelement("keyword", text=keyword)

        organism = " ".join(line.data.strip() for line in entry.all("OS"))
        if organism:
            db_entry.subelement("organism", text=organism.rstrip("."))

        comments = db_entry.subelement("comment_list")
        for comment in merge_comment_lines(
                [line.data for line in entry.all("CC")]):
            comments.subelement("comment", text=comment)

        feature_list = db_entry.subelement("feature_list")
        for key, location, qualifiers in _parse_features(entry, label):
            feature = feature_list.subelement("feature")
            feature.set("feature_key", key)
            feature.set("location", location)
            for qualifier_type, value in qualifiers:
                qualifier = feature.subelement("qualifier", text=value)
                qualifier.set("qualifier_type", qualifier_type)

        residues = collect_sequence(entry)
        if residues or entry.first("SQ") is not None:
            sequence = db_entry.subelement("sequence", text=residues)
            sequence.set("length", length)
            sequence.set("molecule_type", "DNA")

        return Document(root, name=self.name)

    def entry_key(self, entry: Entry) -> str:
        """Primary accession number — stable across annotation updates,
        unlike the entry name."""
        ac_line = entry.value("AC")
        if ac_line is None:
            raise TransformError("hlx_embl: entry missing AC line")
        return ac_line.split(";")[0].strip()

    def collection_of(self, entry: Entry) -> str:
        """Division → collection suffix (``INV`` → ``inv``)."""
        id_line = entry.value("ID") or ""
        match = _ID_RE.match(id_line.strip())
        if not match:
            return self.default_collection
        return match.group("division").lower()


def _parse_features(entry: Entry, label: str) -> list[
        tuple[str, str, list[tuple[str, str]]]]:
    """Group FT lines into ``(key, location, [(qualifier, value)])``.

    A feature starts on an FT line whose data does not begin with ``/``
    (key, whitespace, location); continuation lines hold qualifiers.
    """
    features: list[tuple[str, str, list[tuple[str, str]]]] = []
    for line in entry.all("FT"):
        data = line.data.strip()
        if not data:
            continue
        if data.startswith("/"):
            if not features:
                raise TransformError(
                    f"{label}: qualifier before any feature: {data!r}")
            match = _QUALIFIER_RE.match(data)
            if not match:
                raise TransformError(
                    f"{label}: malformed qualifier {data!r}")
            value = match.group("value") or ""
            features[-1][2].append(
                (match.group("type"), value.strip().strip('"')))
        else:
            parts = data.split(None, 1)
            if len(parts) != 2:
                raise TransformError(
                    f"{label}: malformed feature line {data!r}")
            features.append((parts[0], parts[1].strip(), []))
    return features


__all__ = ["EMBL_DTD_TEXT", "EmblTransformer", "LINE_SPECS", "SAMPLE_ENTRY"]
