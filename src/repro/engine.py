"""The public facade: :class:`Warehouse` (storage + Data Hounds side)
and :class:`XomatiQ` (the query component).

Typical use::

    from repro import Warehouse
    from repro.synth import build_corpus

    wh = Warehouse()                         # in-memory SQLite
    wh.load_corpus(build_corpus(seed=7))     # ENZYME + EMBL + Swiss-Prot

    result = wh.query('''
        FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
        WHERE contains($a//catalytic_activity, "ketone")
        RETURN $a//enzyme_id, $a//enzyme_description
    ''')
    print(result.to_table())
    print(result.to_xml())

The warehouse hides the relational engine entirely — the paper's
"illusion of a fully XML-based data management system".
"""

from __future__ import annotations

import time

from repro.datahounds.hound import DataHound, LoadReport
from repro.datahounds.registry import SourceRegistry
from repro.errors import UnknownDocumentError
from repro.relational.backend import Backend
from repro.relational.schema import SchemaOptions
from repro.relational.sqlite_backend import SqliteBackend
from repro.results.resultset import BoundNode, QueryResult, ResultRow
from repro.shredding.loader import WarehouseLoader
from repro.shredding.reconstruct import reconstruct_document
from repro.shredding.shredder import DEFAULT_SEQUENCE_TAGS
from repro.translator.cache import CompiledQueryCache
from repro.translator.compile import CompiledQuery, compile_query
from repro.translator.execute import execute_compiled
from repro.xmlkit import Document, DtdTreeNode, serialize
from repro.xquery.ast import Query
from repro.xquery.parser import parse_query
from repro.xquery.semantics import check_query


class Warehouse:
    """A local biological-data warehouse over a relational backend."""

    def __init__(self, backend: Backend | None = None,
                 options: SchemaOptions = SchemaOptions(),
                 registry: SourceRegistry | None = None,
                 sequence_tags: frozenset[str] = DEFAULT_SEQUENCE_TAGS,
                 validate_sources: bool = True,
                 create: bool = True,
                 trace=None,
                 metrics=None,
                 slow_query_ms: float = 250.0,
                 bulk_batch_size: int = 512,
                 bulk_workers: int = 0,
                 query_cache: int = 128):
        """``create=False`` attaches to a backend whose generic schema
        already exists (reopening an on-disk warehouse).

        ``trace`` enables span tracing: pass ``True`` for a fresh
        :class:`repro.obs.Tracer` or an existing tracer instance. The
        backend is then wrapped in an instrumented recorder, pipeline
        stages run inside spans, and every ``QueryResult`` carries its
        trace. The default ``None`` allocates no tracer.

        ``metrics`` controls the **always-on** metrics plane: the
        default ``None`` records into the process-wide registry
        (:func:`repro.obs.default_registry`) — counters, gauges and
        latency histograms across every layer, cheap enough to leave
        on (see docs/observability.md for the measured overhead).
        Pass a :class:`repro.obs.MetricsRegistry` for an isolated
        registry, or ``False`` to disable entirely (also skips the
        backend wrapper when tracing is off). Every warehouse
        additionally keeps a structured :class:`repro.obs.EventLog`
        ring buffer (``warehouse.events``) and a slow-query log
        (``warehouse.slow_queries``) that captures query text,
        compiled SQL, row counts, cache hit/miss and EXPLAIN output
        for any query slower than ``slow_query_ms``.

        ``bulk_batch_size``/``bulk_workers`` set the defaults for the
        batched load pipeline (documents per flush transaction /
        transform+shred worker threads); ``query_cache`` sizes the
        compiled-query LRU (0 disables it). See docs/performance.md.
        """
        from repro.obs import (EventLog, InstrumentedBackend, NullMetrics,
                               SlowQueryLog, Tracer, resolve_metrics)
        self.backend = backend if backend is not None else SqliteBackend()
        self.metrics = resolve_metrics(metrics)
        #: the metrics sink hot paths test against None (NullMetrics
        #: never reaches them — disabling removes the work entirely)
        self._metrics_sink = (None if isinstance(self.metrics, NullMetrics)
                              else self.metrics)
        self.events = EventLog()
        self.slow_queries = SlowQueryLog(threshold_ms=slow_query_ms,
                                         events=self.events)
        self.tracer = None
        if trace is not None and trace is not False:
            self.tracer = trace if isinstance(trace, Tracer) else Tracer()
            if self.tracer.metrics is None:
                # spans feed trace.span_seconds when both are active
                self.tracer.metrics = self._metrics_sink
        if self.tracer is not None or self._metrics_sink is not None:
            self.backend = InstrumentedBackend(
                self.backend, self.tracer, metrics=self._metrics_sink)
        self.registry = registry or SourceRegistry()
        self.sequence_tags = sequence_tags
        self.validate_sources = validate_sources
        #: warehouse-lifetime trigger hub: every hound from
        #: :meth:`connect` dispatches through it, so standing
        #: subscriptions (``repro.subscriptions``) survive across
        #: hound instances — one-shot ``harvest()`` calls included
        from repro.datahounds.triggers import TriggerHub
        self.triggers = TriggerHub(metrics=self._metrics_sink,
                                   events=self.events)
        #: set by the federation catalog on shard warehouses so slow
        #: queries and spans can say *which* shard they ran on
        self.shard_name = ""
        self.loader = WarehouseLoader(self.backend, options=options,
                                      sequence_tags=sequence_tags,
                                      create=create, tracer=self.tracer,
                                      metrics=self._metrics_sink,
                                      bulk_batch_size=bulk_batch_size,
                                      bulk_workers=bulk_workers)
        self.xomatiq = XomatiQ(self, cache_size=query_cache)

    def enable_tracing(self, tracer=None, max_spans: int | None = None):
        """Turn span tracing on after construction (idempotent).

        The service layer calls this so any warehouse it is handed —
        built with ``trace=...`` or not — traces requests. Passing a
        ``tracer`` adopts it (the federation layer shares one tracer
        across every shard this way); otherwise the existing tracer is
        kept or a fresh one allocated. ``max_spans`` bounds retained
        top-level spans for long-running processes. Returns the live
        :class:`repro.obs.Tracer`.
        """
        from repro.obs import InstrumentedBackend, Tracer
        if tracer is not None:
            self.tracer = tracer
        elif self.tracer is None:
            self.tracer = Tracer(max_spans=max_spans)
        if max_spans is not None:
            self.tracer.max_spans = max_spans
        if self.tracer.metrics is None:
            self.tracer.metrics = self._metrics_sink
        if isinstance(self.backend, InstrumentedBackend):
            self.backend.tracer = self.tracer
        else:
            # metrics were off, so the backend was never wrapped; the
            # loader holds the same backend reference and must follow
            self.backend = InstrumentedBackend(
                self.backend, self.tracer, metrics=self._metrics_sink)
            self.loader.backend = self.backend
        self.loader.tracer = self.tracer
        return self.tracer

    # -- loading ---------------------------------------------------------------

    def load_text(self, source: str, flat_text: str,
                  batch_size: int | None = None,
                  workers: int | None = None) -> int:
        """Transform and load a flat-file release directly (no
        transport layer); returns the number of documents loaded.

        Runs through the batched bulk-load pipeline: transform+shred
        (parallelized across ``workers`` threads when > 1), rows
        buffered and flushed one ``executemany`` per table per
        ``batch_size`` documents in a single transaction, ANALYZE
        deferred to the end of the release."""
        from repro.flatfile import parse_entries
        return self.load_entries(source, parse_entries(flat_text),
                                 batch_size=batch_size, workers=workers)

    def load_entries(self, source: str, entries,
                     batch_size: int | None = None,
                     workers: int | None = None) -> int:
        """Transform and load already-parsed flat-file entries through
        the bulk pipeline (the federation layer partitions one release
        into contiguous entry slices and feeds each shard this way)."""
        transformer = self.registry.create(source,
                                           validate=self.validate_sources)
        with self.loader.bulk_session(batch_size=batch_size,
                                      workers=workers) as session:
            count = session.add_transformed(
                source, entries,
                lambda entry: (transformer.collection_of(entry),
                               transformer.entry_key(entry),
                               transformer.transform_entry(entry)))
        self.optimize()
        return count

    def optimize(self) -> None:
        """Refresh planner statistics after bulk loads (the paper's
        query plans depended on Oracle's statistics; sqlite needs
        ANALYZE for the same effect)."""
        analyze = getattr(self.backend, "analyze", None)
        if analyze is not None:
            analyze()

    def load_file(self, source: str, path,
                  batch_size: int | None = None,
                  workers: int | None = None) -> int:
        """Transform and load a flat-file release from disk, streaming
        entry by entry through the bulk-load pipeline (multi-hundred-MB
        dumps never need to be memory-resident — at most one batch of
        shredded rows is buffered)."""
        from repro.flatfile import iter_entries
        transformer = self.registry.create(source,
                                           validate=self.validate_sources)
        with open(path, encoding="utf-8") as handle:
            with self.loader.bulk_session(batch_size=batch_size,
                                          workers=workers) as session:
                count = session.add_transformed(
                    source, iter_entries(handle),
                    lambda entry: (transformer.collection_of(entry),
                                   transformer.entry_key(entry),
                                   transformer.transform_entry(entry)))
        self.optimize()
        return count

    def load_corpus(self, corpus) -> dict[str, int]:
        """Load a :class:`repro.synth.corpus.Corpus`; returns per-source
        document counts."""
        return {source: self.load_text(source, text)
                for source, text in corpus.texts().items()}

    def connect(self, repository, quarantine: bool = False,
                retries: int | None = None,
                retry_policy=None) -> DataHound:
        """A Data Hound harvesting ``repository`` into this warehouse.

        The hound restores any release snapshots persisted in this
        warehouse, so reconnecting after a process restart resumes
        incremental diffs. ``retries`` (or a full ``retry_policy``)
        wraps the repository in a
        :class:`~repro.datahounds.resilience.ResilientRepository` —
        retry/backoff, payload integrity verification and per-source
        circuit breakers, wired into this warehouse's metrics and
        event log. ``quarantine=True`` skips and reports malformed
        entries instead of aborting the release.
        """
        if retries is not None or retry_policy is not None:
            from repro.datahounds.resilience import (ResilientRepository,
                                                     RetryPolicy)
            if retry_policy is None:
                retry_policy = RetryPolicy(max_attempts=max(1, retries))
            repository = ResilientRepository(
                repository, policy=retry_policy,
                metrics=self._metrics_sink, events=self.events)
        return DataHound(repository, self.loader, registry=self.registry,
                         validate=self.validate_sources,
                         quarantine=quarantine,
                         tracer=self.tracer,
                         metrics=self._metrics_sink,
                         events=self.events,
                         triggers=self.triggers)

    def refresh(self, repository, source: str) -> LoadReport:
        """One-shot convenience: hound-load the latest release."""
        return self.connect(repository).load(source)

    def harvest(self, repository, sources=None, quarantine: bool = False,
                retries: int | None = None, fail_fast: bool = False):
        """One-shot convenience: resilient multi-source harvest;
        returns a :class:`~repro.datahounds.hound.HarvestReport`."""
        hound = self.connect(repository, quarantine=quarantine,
                             retries=retries)
        return hound.harvest_all(sources, fail_fast=fail_fast)

    # -- catalog ---------------------------------------------------------------------

    def document_names(self) -> list[str]:
        """Loaded ``source.collection`` addresses."""
        rows = self.backend.execute(
            "SELECT DISTINCT source, collection FROM documents")
        return sorted(f"{source}.{collection}"
                      for source, collection in rows)

    def document_exists(self, source: str,
                        collection: str | None) -> bool:
        """True when documents of ``source[.collection]`` are loaded."""
        if collection is None:
            rows = self.backend.execute(
                "SELECT COUNT(*) FROM documents WHERE source = ?", (source,))
        else:
            rows = self.backend.execute(
                "SELECT COUNT(*) FROM documents WHERE source = ? "
                "AND collection = ?", (source, collection))
        return bool(rows and rows[0][0])

    #: doc ids per batched DELETE (well under engine parameter limits)
    _REMOVE_CHUNK = 200

    def remove_source(self, source: str) -> int:
        """Delete every document of one source; returns the number of
        documents removed (decommissioning a databank).

        Deletes are batched — one ``WHERE doc_id IN (...)`` statement
        per table per chunk of ids instead of one statement per
        document per table — and the table list comes from the schema
        module, so a new generic-schema table can never leak rows."""
        from repro.relational.schema import TABLE_NAMES
        doc_ids = self.loader.doc_ids(source)
        if not doc_ids:
            return 0
        for table in TABLE_NAMES:
            for start in range(0, len(doc_ids), self._REMOVE_CHUNK):
                chunk = doc_ids[start:start + self._REMOVE_CHUNK]
                placeholders = ", ".join("?" for __ in chunk)
                self.backend.execute(
                    f"DELETE FROM {table} WHERE doc_id IN ({placeholders})",
                    tuple(chunk))
        self.backend.commit()
        self.loader.bump_generation()
        # a decommissioned source's persisted snapshot must go too, or
        # a reconnected hound would diff against documents that no
        # longer exist and skip re-loading them
        self.loader.delete_snapshot(source)
        if self._metrics_sink is not None:
            self._metrics_sink.inc("warehouse.documents_removed",
                                   len(doc_ids), source=source)
        self.events.emit("warehouse.remove_source", source=source,
                         documents=len(doc_ids))
        return len(doc_ids)

    def stats(self) -> dict[str, int]:
        """Row counts of every generic-schema table plus per-source
        document counts — the warehouse-size report an operator wants
        after a load."""
        from repro.relational.schema import TABLE_NAMES
        out: dict[str, int] = {}
        for table in TABLE_NAMES:
            out[table] = self.backend.execute(
                f"SELECT COUNT(*) FROM {table}")[0][0]
        for source, count in self.backend.execute(
                "SELECT source, COUNT(*) FROM documents GROUP BY source"):
            out[f"documents:{source}"] = count
        return out

    def dtd_tree(self, source: str) -> DtdTreeNode:
        """The DTD structural summary of a source (the query builder's
        left panel)."""
        return self.registry.create(source, validate=False).dtd_tree()

    def keyword_search(self, phrase: str, source: str | None = None,
                       limit: int = 50) -> list[dict]:
        """Web-search-style lookup over the keyword inverted index
        (the service's ``GET /keyword`` resource).

        ``phrase`` is tokenized exactly like a ``contains()`` argument;
        a document qualifies when it contains **every** token.  Returns
        JSON-ready dicts ``{doc_id, source, collection, entry_key,
        matches}`` ordered by total match count (then ``doc_id`` for a
        stable order), capped at ``limit``.

        The per-token lookups and the ranking GROUP BY are portable
        SQL (no HAVING / COUNT(DISTINCT)), so the search runs
        identically on SQLite and minidb; the all-tokens intersection
        happens coordinator-side on the (small) per-token doc-id sets.
        """
        from repro.shredding.keywords import query_tokens
        tokens = sorted(set(query_tokens(phrase)))
        if not tokens or limit < 1:
            return []
        matching: set | None = None
        for token in tokens:
            rows = self.backend.execute(
                "SELECT DISTINCT doc_id FROM keywords WHERE token = ?",
                (token,))
            matching = ({row[0] for row in rows} if matching is None
                        else matching & {row[0] for row in rows})
            if not matching:
                return []
        placeholders = ", ".join("?" for __ in tokens)
        counts = dict(self.backend.execute(
            f"SELECT doc_id, COUNT(*) FROM keywords "
            f"WHERE token IN ({placeholders}) GROUP BY doc_id",
            tuple(tokens)))
        results: list[dict] = []
        doc_ids = sorted(matching)
        for start in range(0, len(doc_ids), self._REMOVE_CHUNK):
            chunk = doc_ids[start:start + self._REMOVE_CHUNK]
            placeholders = ", ".join("?" for __ in chunk)
            for doc_id, doc_source, collection, entry_key in \
                    self.backend.execute(
                        f"SELECT doc_id, source, collection, entry_key "
                        f"FROM documents WHERE doc_id IN ({placeholders})",
                        tuple(chunk)):
                if source is not None and doc_source != source:
                    continue
                results.append({"doc_id": doc_id, "source": doc_source,
                                "collection": collection,
                                "entry_key": entry_key,
                                "matches": int(counts.get(doc_id, 0))})
        results.sort(key=lambda hit: (-hit["matches"], hit["doc_id"]))
        return results[:limit]

    # -- querying -----------------------------------------------------------------------

    def query(self, text: str) -> QueryResult:
        """Parse, check, compile and run a XomatiQ query."""
        return self.xomatiq.query(text)

    def translate(self, text: str) -> CompiledQuery:
        """Parse, check and compile without executing."""
        return self.xomatiq.translate(text)

    def profile(self, text: str, explain: bool = True):
        """Profile one query end to end (works on any warehouse, traced
        or not); returns a :class:`repro.obs.ProfileReport`."""
        from repro.obs import profile_query
        return profile_query(self, text, explain=explain)

    def health(self, stale_after_s: float | None = None) -> dict:
        """Row-count/keyword-index sanity checks plus per-source
        harvest freshness; see :func:`repro.obs.health.health_report`."""
        from repro.obs import health_report
        if stale_after_s is None:
            return health_report(self)
        return health_report(self, stale_after_s=stale_after_s)

    # -- document fetch (the GUI's right panel) --------------------------------------------

    def fetch_document(self, node: BoundNode | int) -> Document:
        """Reconstruct the XML document a result row's binding points
        at."""
        doc_id = node.doc_id if isinstance(node, BoundNode) else node
        return reconstruct_document(self.backend, doc_id)

    def fetch_document_xml(self, row: ResultRow, variable: str) -> str:
        """Serialized document behind one result row's variable."""
        try:
            node = row.bindings[variable]
        except KeyError:
            raise UnknownDocumentError(
                f"result row has no binding for ${variable}") from None
        return serialize(self.fetch_document(node))

    def interrupt(self) -> None:
        """Abort the statement currently running on this warehouse's
        backend, if the backend supports it (sqlite does; minidb has
        nothing long-running to abort). The federated executor uses
        this to cancel stragglers past their deadline or hedge loss."""
        interrupt = getattr(self.backend, "interrupt", None)
        if interrupt is not None:
            interrupt()

    def close(self) -> None:
        """Release the backend (files, connections)."""
        self.backend.close()


class XomatiQ:
    """The query component: parse → check → XQ2SQL → execute → tag.

    Translations are memoized in a :class:`CompiledQueryCache` keyed by
    (query text, backend dialect, sequence_tags) and guarded by the
    loader's catalog-generation counter, so repeated queries skip
    parse/check/compile entirely while any store/remove forces a fresh
    translation (and a fresh semantic check) on the next call.
    """

    def __init__(self, warehouse: Warehouse, cache_size: int = 128):
        self.warehouse = warehouse
        self.cache = (CompiledQueryCache(
            cache_size, metrics=warehouse._metrics_sink)
            if cache_size else None)
        # fused per-query metric handle, resolved once (the backend
        # name is fixed for the warehouse's lifetime) so the per-query
        # cost is a single locked update, not four registry lookups
        metrics = warehouse._metrics_sink
        if metrics is not None:
            self._query_timer = metrics.query_timer(
                warehouse.backend.name)
        else:
            self._query_timer = None

    def parse(self, text: str) -> Query:
        """Parse query text to its AST."""
        return parse_query(text)

    def check(self, query: Query) -> None:
        """Semantic checks against the warehouse catalog and DTDs."""
        check_query(query,
                    document_exists=self.warehouse.document_exists,
                    dtd_for_source=self._dtd_for_source)

    def translate(self, text: str,
                  ast: Query | None = None) -> CompiledQuery:
        """Parse, check and compile; the compiled object exposes every
        SQL statement (the GUI's "Translate Query" view, one level
        deeper). With ``ast`` given, parsing is skipped and ``text`` is
        only documentation (the federation planner hands per-shard
        subquery ASTs straight through)."""
        query = ast if ast is not None else self.parse(text)
        self.check(query)
        return compile_query(query,
                             sequence_tags=self.warehouse.sequence_tags)

    def translate_cached(self, text: str,
                         ast: Query | None = None
                         ) -> tuple[CompiledQuery, bool]:
        """Translate via the compiled-query cache; returns
        ``(compiled, hit)``. With the cache disabled this is a plain
        :meth:`translate` (``hit`` always False)."""
        if self.cache is None:
            return self.translate(text, ast), False
        generation = self.warehouse.loader.generation
        dialect = self.warehouse.backend.name
        tags = self.warehouse.sequence_tags
        compiled = self.cache.get(text, dialect, tags, generation)
        if compiled is not None:
            return compiled, True
        compiled = self.translate(text, ast)
        self.cache.put(text, dialect, tags, generation, compiled)
        return compiled, False

    def translate_in_spans(self, text: str, tracer, root,
                           ast: Query | None = None) -> CompiledQuery:
        """Cache-aware translation with per-stage spans; ``cache.hit``
        / ``cache.miss`` counters land on ``root`` (they show up in
        profile JSON and query traces). On a hit the parse/check/
        compile spans are skipped entirely — that is the point."""
        cache = self.cache
        generation = dialect = tags = None
        if cache is not None:
            generation = self.warehouse.loader.generation
            dialect = self.warehouse.backend.name
            tags = self.warehouse.sequence_tags
            compiled = cache.get(text, dialect, tags, generation)
            if compiled is not None:
                root.count("cache.hit")
                return compiled
            root.count("cache.miss")
        if ast is None:
            with tracer.span("parse"):
                ast = self.parse(text)
        with tracer.span("check"):
            self.check(ast)
        with tracer.span("compile"):
            compiled = compile_query(
                ast, sequence_tags=self.warehouse.sequence_tags)
        if cache is not None:
            cache.put(text, dialect, tags, generation, compiled)
        return compiled

    def query(self, text: str, ast: Query | None = None) -> QueryResult:
        """The full pipeline: translate (cached) then execute.

        On a traced warehouse every stage runs inside a span and the
        result carries the span tree on ``result.trace``. Every query
        — traced or not — feeds the always-on metrics plane
        (``query.total``, ``query.seconds``, cache hit/miss) and is
        screened by the slow-query log, which captures SQL + EXPLAIN
        for anything over the threshold. ``ast`` short-circuits
        parsing (but still keys the cache by ``text``)."""
        warehouse = self.warehouse
        tracer = warehouse.tracer
        start = time.perf_counter()
        trace_id = ""
        if tracer is None:
            compiled, hit = self.translate_cached(text, ast)
            result = execute_compiled(compiled, warehouse.backend)
        else:
            with tracer.span("query", query=text,
                             backend=warehouse.backend.name) as root:
                compiled = self.translate_in_spans(text, tracer, root, ast)
                hit = root.counters.get("cache.hit", 0) > 0
                if hit:
                    # hot path: no pipeline stage ran, so no stage
                    # spans — SQL statements attach to the query span
                    # itself, keeping always-on tracing off the
                    # cached-query critical path
                    result = execute_compiled(compiled,
                                              warehouse.backend)
                    root.count("result_rows", len(result))
                else:
                    with tracer.span("execute") as span:
                        result = execute_compiled(compiled,
                                                  warehouse.backend,
                                                  tracer=tracer)
                        span.count("result_rows", len(result))
            result.trace = root
            trace_id = root.trace_id
        duration_s = time.perf_counter() - start
        if self._query_timer is not None:
            self._query_timer.record(hit, duration_s, len(result))
        warehouse.slow_queries.record(
            text, warehouse.backend, duration_s * 1000.0, len(result),
            hit, compiled.parameterized_statements,
            shard=warehouse.shard_name, trace_id=trace_id)
        return result

    def execute(self, compiled: CompiledQuery) -> QueryResult:
        """Run an already-compiled query (benchmarks separate compile
        and execute cost with this)."""
        return execute_compiled(compiled, self.warehouse.backend,
                                tracer=self.warehouse.tracer)

    def _dtd_for_source(self, source: str):
        if source in self.warehouse.registry:
            return self.warehouse.registry.create(source,
                                                  validate=False).dtd
        return None
