"""The public facade: :class:`Warehouse` (storage + Data Hounds side)
and :class:`XomatiQ` (the query component).

Typical use::

    from repro import Warehouse
    from repro.synth import build_corpus

    wh = Warehouse()                         # in-memory SQLite
    wh.load_corpus(build_corpus(seed=7))     # ENZYME + EMBL + Swiss-Prot

    result = wh.query('''
        FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
        WHERE contains($a//catalytic_activity, "ketone")
        RETURN $a//enzyme_id, $a//enzyme_description
    ''')
    print(result.to_table())
    print(result.to_xml())

The warehouse hides the relational engine entirely — the paper's
"illusion of a fully XML-based data management system".
"""

from __future__ import annotations

from repro.datahounds.hound import DataHound, LoadReport
from repro.datahounds.registry import SourceRegistry
from repro.errors import UnknownDocumentError
from repro.relational.backend import Backend
from repro.relational.schema import SchemaOptions
from repro.relational.sqlite_backend import SqliteBackend
from repro.results.resultset import BoundNode, QueryResult, ResultRow
from repro.shredding.loader import WarehouseLoader
from repro.shredding.reconstruct import reconstruct_document
from repro.shredding.shredder import DEFAULT_SEQUENCE_TAGS
from repro.translator.cache import CompiledQueryCache
from repro.translator.compile import CompiledQuery, compile_query
from repro.translator.execute import execute_compiled
from repro.xmlkit import Document, DtdTreeNode, serialize
from repro.xquery.ast import Query
from repro.xquery.parser import parse_query
from repro.xquery.semantics import check_query


class Warehouse:
    """A local biological-data warehouse over a relational backend."""

    def __init__(self, backend: Backend | None = None,
                 options: SchemaOptions = SchemaOptions(),
                 registry: SourceRegistry | None = None,
                 sequence_tags: frozenset[str] = DEFAULT_SEQUENCE_TAGS,
                 validate_sources: bool = True,
                 create: bool = True,
                 trace=None,
                 bulk_batch_size: int = 512,
                 bulk_workers: int = 0,
                 query_cache: int = 128):
        """``create=False`` attaches to a backend whose generic schema
        already exists (reopening an on-disk warehouse).

        ``trace`` enables observability: pass ``True`` for a fresh
        :class:`repro.obs.Tracer` or an existing tracer instance. The
        backend is then wrapped in an instrumented recorder, pipeline
        stages run inside spans, and every ``QueryResult`` carries its
        trace. The default ``None`` allocates nothing — queries and
        loads pay zero instrumentation cost.

        ``bulk_batch_size``/``bulk_workers`` set the defaults for the
        batched load pipeline (documents per flush transaction /
        transform+shred worker threads); ``query_cache`` sizes the
        compiled-query LRU (0 disables it). See docs/performance.md.
        """
        self.backend = backend if backend is not None else SqliteBackend()
        self.tracer = None
        if trace is not None and trace is not False:
            from repro.obs import InstrumentedBackend, Tracer
            self.tracer = trace if isinstance(trace, Tracer) else Tracer()
            self.backend = InstrumentedBackend(self.backend, self.tracer)
        self.registry = registry or SourceRegistry()
        self.sequence_tags = sequence_tags
        self.validate_sources = validate_sources
        self.loader = WarehouseLoader(self.backend, options=options,
                                      sequence_tags=sequence_tags,
                                      create=create, tracer=self.tracer,
                                      bulk_batch_size=bulk_batch_size,
                                      bulk_workers=bulk_workers)
        self.xomatiq = XomatiQ(self, cache_size=query_cache)

    # -- loading ---------------------------------------------------------------

    def load_text(self, source: str, flat_text: str,
                  batch_size: int | None = None,
                  workers: int | None = None) -> int:
        """Transform and load a flat-file release directly (no
        transport layer); returns the number of documents loaded.

        Runs through the batched bulk-load pipeline: transform+shred
        (parallelized across ``workers`` threads when > 1), rows
        buffered and flushed one ``executemany`` per table per
        ``batch_size`` documents in a single transaction, ANALYZE
        deferred to the end of the release."""
        from repro.flatfile import parse_entries
        transformer = self.registry.create(source,
                                           validate=self.validate_sources)
        with self.loader.bulk_session(batch_size=batch_size,
                                      workers=workers) as session:
            count = session.add_transformed(
                source, parse_entries(flat_text),
                lambda entry: (transformer.collection_of(entry),
                               transformer.entry_key(entry),
                               transformer.transform_entry(entry)))
        self.optimize()
        return count

    def optimize(self) -> None:
        """Refresh planner statistics after bulk loads (the paper's
        query plans depended on Oracle's statistics; sqlite needs
        ANALYZE for the same effect)."""
        analyze = getattr(self.backend, "analyze", None)
        if analyze is not None:
            analyze()

    def load_file(self, source: str, path,
                  batch_size: int | None = None,
                  workers: int | None = None) -> int:
        """Transform and load a flat-file release from disk, streaming
        entry by entry through the bulk-load pipeline (multi-hundred-MB
        dumps never need to be memory-resident — at most one batch of
        shredded rows is buffered)."""
        from repro.flatfile import iter_entries
        transformer = self.registry.create(source,
                                           validate=self.validate_sources)
        with open(path, encoding="utf-8") as handle:
            with self.loader.bulk_session(batch_size=batch_size,
                                          workers=workers) as session:
                count = session.add_transformed(
                    source, iter_entries(handle),
                    lambda entry: (transformer.collection_of(entry),
                                   transformer.entry_key(entry),
                                   transformer.transform_entry(entry)))
        self.optimize()
        return count

    def load_corpus(self, corpus) -> dict[str, int]:
        """Load a :class:`repro.synth.corpus.Corpus`; returns per-source
        document counts."""
        return {source: self.load_text(source, text)
                for source, text in corpus.texts().items()}

    def connect(self, repository) -> DataHound:
        """A Data Hound harvesting ``repository`` into this warehouse."""
        return DataHound(repository, self.loader, registry=self.registry,
                         validate=self.validate_sources,
                         tracer=self.tracer)

    def refresh(self, repository, source: str) -> LoadReport:
        """One-shot convenience: hound-load the latest release."""
        return self.connect(repository).load(source)

    # -- catalog ---------------------------------------------------------------------

    def document_names(self) -> list[str]:
        """Loaded ``source.collection`` addresses."""
        rows = self.backend.execute(
            "SELECT DISTINCT source, collection FROM documents")
        return sorted(f"{source}.{collection}"
                      for source, collection in rows)

    def document_exists(self, source: str,
                        collection: str | None) -> bool:
        """True when documents of ``source[.collection]`` are loaded."""
        if collection is None:
            rows = self.backend.execute(
                "SELECT COUNT(*) FROM documents WHERE source = ?", (source,))
        else:
            rows = self.backend.execute(
                "SELECT COUNT(*) FROM documents WHERE source = ? "
                "AND collection = ?", (source, collection))
        return bool(rows and rows[0][0])

    #: doc ids per batched DELETE (well under engine parameter limits)
    _REMOVE_CHUNK = 200

    def remove_source(self, source: str) -> int:
        """Delete every document of one source; returns the number of
        documents removed (decommissioning a databank).

        Deletes are batched — one ``WHERE doc_id IN (...)`` statement
        per table per chunk of ids instead of one statement per
        document per table — and the table list comes from the schema
        module, so a new generic-schema table can never leak rows."""
        from repro.relational.schema import TABLE_NAMES
        doc_ids = self.loader.doc_ids(source)
        if not doc_ids:
            return 0
        for table in TABLE_NAMES:
            for start in range(0, len(doc_ids), self._REMOVE_CHUNK):
                chunk = doc_ids[start:start + self._REMOVE_CHUNK]
                placeholders = ", ".join("?" for __ in chunk)
                self.backend.execute(
                    f"DELETE FROM {table} WHERE doc_id IN ({placeholders})",
                    tuple(chunk))
        self.backend.commit()
        self.loader.bump_generation()
        return len(doc_ids)

    def stats(self) -> dict[str, int]:
        """Row counts of every generic-schema table plus per-source
        document counts — the warehouse-size report an operator wants
        after a load."""
        from repro.relational.schema import TABLE_NAMES
        out: dict[str, int] = {}
        for table in TABLE_NAMES:
            out[table] = self.backend.execute(
                f"SELECT COUNT(*) FROM {table}")[0][0]
        for source, count in self.backend.execute(
                "SELECT source, COUNT(*) FROM documents GROUP BY source"):
            out[f"documents:{source}"] = count
        return out

    def dtd_tree(self, source: str) -> DtdTreeNode:
        """The DTD structural summary of a source (the query builder's
        left panel)."""
        return self.registry.create(source, validate=False).dtd_tree()

    # -- querying -----------------------------------------------------------------------

    def query(self, text: str) -> QueryResult:
        """Parse, check, compile and run a XomatiQ query."""
        return self.xomatiq.query(text)

    def translate(self, text: str) -> CompiledQuery:
        """Parse, check and compile without executing."""
        return self.xomatiq.translate(text)

    def profile(self, text: str, explain: bool = True):
        """Profile one query end to end (works on any warehouse, traced
        or not); returns a :class:`repro.obs.ProfileReport`."""
        from repro.obs import profile_query
        return profile_query(self, text, explain=explain)

    # -- document fetch (the GUI's right panel) --------------------------------------------

    def fetch_document(self, node: BoundNode | int) -> Document:
        """Reconstruct the XML document a result row's binding points
        at."""
        doc_id = node.doc_id if isinstance(node, BoundNode) else node
        return reconstruct_document(self.backend, doc_id)

    def fetch_document_xml(self, row: ResultRow, variable: str) -> str:
        """Serialized document behind one result row's variable."""
        try:
            node = row.bindings[variable]
        except KeyError:
            raise UnknownDocumentError(
                f"result row has no binding for ${variable}") from None
        return serialize(self.fetch_document(node))

    def close(self) -> None:
        """Release the backend (files, connections)."""
        self.backend.close()


class XomatiQ:
    """The query component: parse → check → XQ2SQL → execute → tag.

    Translations are memoized in a :class:`CompiledQueryCache` keyed by
    (query text, backend dialect, sequence_tags) and guarded by the
    loader's catalog-generation counter, so repeated queries skip
    parse/check/compile entirely while any store/remove forces a fresh
    translation (and a fresh semantic check) on the next call.
    """

    def __init__(self, warehouse: Warehouse, cache_size: int = 128):
        self.warehouse = warehouse
        self.cache = (CompiledQueryCache(cache_size) if cache_size
                      else None)

    def parse(self, text: str) -> Query:
        """Parse query text to its AST."""
        return parse_query(text)

    def check(self, query: Query) -> None:
        """Semantic checks against the warehouse catalog and DTDs."""
        check_query(query,
                    document_exists=self.warehouse.document_exists,
                    dtd_for_source=self._dtd_for_source)

    def translate(self, text: str) -> CompiledQuery:
        """Parse, check and compile; the compiled object exposes every
        SQL statement (the GUI's "Translate Query" view, one level
        deeper)."""
        query = self.parse(text)
        self.check(query)
        return compile_query(query,
                             sequence_tags=self.warehouse.sequence_tags)

    def translate_cached(self, text: str) -> tuple[CompiledQuery, bool]:
        """Translate via the compiled-query cache; returns
        ``(compiled, hit)``. With the cache disabled this is a plain
        :meth:`translate` (``hit`` always False)."""
        if self.cache is None:
            return self.translate(text), False
        generation = self.warehouse.loader.generation
        dialect = self.warehouse.backend.name
        tags = self.warehouse.sequence_tags
        compiled = self.cache.get(text, dialect, tags, generation)
        if compiled is not None:
            return compiled, True
        compiled = self.translate(text)
        self.cache.put(text, dialect, tags, generation, compiled)
        return compiled, False

    def translate_in_spans(self, text: str, tracer, root) -> CompiledQuery:
        """Cache-aware translation with per-stage spans; ``cache.hit``
        / ``cache.miss`` counters land on ``root`` (they show up in
        profile JSON and query traces). On a hit the parse/check/
        compile spans are skipped entirely — that is the point."""
        cache = self.cache
        generation = dialect = tags = None
        if cache is not None:
            generation = self.warehouse.loader.generation
            dialect = self.warehouse.backend.name
            tags = self.warehouse.sequence_tags
            compiled = cache.get(text, dialect, tags, generation)
            if compiled is not None:
                root.count("cache.hit")
                return compiled
            root.count("cache.miss")
        with tracer.span("parse"):
            query = self.parse(text)
        with tracer.span("check"):
            self.check(query)
        with tracer.span("compile"):
            compiled = compile_query(
                query, sequence_tags=self.warehouse.sequence_tags)
        if cache is not None:
            cache.put(text, dialect, tags, generation, compiled)
        return compiled

    def query(self, text: str) -> QueryResult:
        """The full pipeline: translate (cached) then execute.

        On a traced warehouse every stage runs inside a span and the
        result carries the span tree on ``result.trace``."""
        tracer = self.warehouse.tracer
        if tracer is None:
            compiled, __ = self.translate_cached(text)
            return execute_compiled(compiled, self.warehouse.backend)
        with tracer.span("query", query=text,
                         backend=self.warehouse.backend.name) as root:
            compiled = self.translate_in_spans(text, tracer, root)
            with tracer.span("execute") as span:
                result = execute_compiled(compiled,
                                          self.warehouse.backend,
                                          tracer=tracer)
                span.count("result_rows", len(result))
        result.trace = root
        return result

    def execute(self, compiled: CompiledQuery) -> QueryResult:
        """Run an already-compiled query (benchmarks separate compile
        and execute cost with this)."""
        return execute_compiled(compiled, self.warehouse.backend,
                                tracer=self.warehouse.tracer)

    def _dtd_for_source(self, source: str):
        if source in self.warehouse.registry:
            return self.warehouse.registry.create(source,
                                                  validate=False).dtd
        return None
