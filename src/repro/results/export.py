"""Tabular result export.

Bioinformatics pipelines are file-driven: the paper's results are
"fed into a variety of applications", and in practice that means TSV
on disk. These exporters flatten a
:class:`~repro.results.resultset.QueryResult` into delimited text.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path


def to_delimited(result, delimiter: str = "\t",
                 multi_value_separator: str = "; ") -> str:
    """One header row plus one data row per result row.

    Multi-valued cells are joined with ``multi_value_separator``
    (quoting is handled by the csv module, so delimiters inside values
    are safe).
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer, delimiter=delimiter,
                        lineterminator="\n")
    writer.writerow(result.columns)
    for row in result.rows:
        writer.writerow([
            multi_value_separator.join(row.values.get(column, []))
            for column in result.columns])
    return buffer.getvalue()


def to_tsv(result) -> str:
    """Tab-separated export (the lingua franca of bio pipelines)."""
    return to_delimited(result, delimiter="\t")


def to_csv(result) -> str:
    """Comma-separated export."""
    return to_delimited(result, delimiter=",")


def write_tsv(result, path: str | Path) -> int:
    """Write TSV to disk; returns the number of data rows written."""
    Path(path).write_text(to_tsv(result), encoding="utf-8")
    return len(result.rows)
