"""Plain-table result formatting.

The paper: "we provide an option to display the results in XML format
or a simple table format because in bioinformatics the user may not
always wish to view the results in an XML format". Multi-valued cells
are joined with ``"; "``; wide cells are truncated with an ellipsis.
"""

from __future__ import annotations

MAX_CELL_WIDTH = 60


def format_table(result, max_cell_width: int = MAX_CELL_WIDTH) -> str:
    """Render a :class:`~repro.results.resultset.QueryResult` as an
    ASCII table with a header row and a row-count footer."""
    headers = list(result.columns)
    body: list[list[str]] = []
    for row in result.rows:
        body.append([_clip(row.joined(column), max_cell_width)
                     for column in headers])

    widths = [len(h) for h in headers]
    for record in body:
        for index, cell in enumerate(record):
            widths[index] = max(widths[index], len(cell))

    separator = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    lines = [separator,
             "|" + "|".join(f" {h:<{w}} " for h, w in zip(headers, widths))
             + "|",
             separator]
    for record in body:
        lines.append(
            "|" + "|".join(f" {c:<{w}} " for c, w in zip(record, widths))
            + "|")
    lines.append(separator)
    lines.append(f"{len(body)} row(s)")
    return "\n".join(lines)


def _clip(text: str, width: int) -> str:
    if len(text) <= width:
        return text
    return text[:width - 3] + "..."
