"""Query results.

A :class:`QueryResult` holds one row per surviving FOR-binding
combination. Each row carries

* ``bindings`` — for every FOR variable, the bound element's
  ``(doc_id, node_id)`` (enough to fetch/reconstruct the document the
  GUI's right panel shows when a result is clicked),
* ``values`` — for every RETURN item, the list of values found under
  that binding (XQuery items are naturally multi-valued: an entry has
  many alternate names).
"""

from __future__ import annotations

from dataclasses import dataclass, field


def unique_columns(names: list[str]) -> list[str]:
    """Uniquify result-column names.

    Duplicates get ``_N`` suffixes starting at 2; the suffix is bumped
    until the name is actually fresh — a fixed positional suffix can
    collide with an explicit alias (items named ``a``, ``a_2``, ``a``
    must not yield ``a_2`` twice). Both query evaluators (relational
    and native) use this, so column naming stays differential-testable.
    """
    columns: list[str] = []
    taken: set[str] = set()
    for name in names:
        if name in taken:
            suffix = 2
            while f"{name}_{suffix}" in taken:
                suffix += 1
            name = f"{name}_{suffix}"
        taken.add(name)
        columns.append(name)
    return columns


@dataclass(frozen=True)
class BoundNode:
    """One variable's bound element."""

    doc_id: int
    node_id: int


@dataclass
class ResultRow:
    """One binding combination and its return values.

    ``values`` holds string values per column; for constructor items
    ``elements`` additionally holds the assembled XML element (the
    string value is its compact serialization).
    """

    bindings: dict[str, BoundNode]
    values: dict[str, list[str]] = field(default_factory=dict)
    elements: dict[str, "object"] = field(default_factory=dict)

    def first(self, column: str, default: str = "") -> str:
        """First value of a column (columns are multi-valued)."""
        items = self.values.get(column, [])
        return items[0] if items else default

    def joined(self, column: str, separator: str = "; ") -> str:
        """All values of a column joined into one string."""
        return separator.join(self.values.get(column, []))


@dataclass
class QueryResult:
    """All rows of one query execution."""

    columns: list[str]
    variables: list[str]
    rows: list[ResultRow] = field(default_factory=list)
    #: root :class:`repro.obs.trace.Span` of this execution when the
    #: warehouse ran with tracing enabled; None otherwise
    trace: "object | None" = None
    #: degradation notices attached by the execution layer — a
    #: federated query that lost a shard answers with the surviving
    #: shards and says so here instead of raising (same philosophy as
    #: harvest quarantine); empty for complete results
    warnings: list[str] = field(default_factory=list)
    #: shard names whose contributions are missing from a degraded
    #: federated answer (machine-readable companion to ``warnings``;
    #: the HTTP service ships it as ``missing_shards``)
    failed_shards: list[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """True when no execution-layer warning was attached."""
        return not self.warnings

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column(self, name: str) -> list[list[str]]:
        """Per-row value lists of one column."""
        if name not in self.columns:
            raise KeyError(f"no result column {name!r}; "
                           f"have {self.columns}")
        return [row.values.get(name, []) for row in self.rows]

    def scalars(self, name: str) -> list[str]:
        """Flattened values of one column across all rows."""
        return [value for values in self.column(name) for value in values]

    def to_table(self) -> str:
        """Plain-table rendering (the GUI's table view)."""
        from repro.results.table import format_table
        return format_table(self)

    def to_xml(self) -> str:
        """XML rendering of the result values (the GUI's XML view)."""
        from repro.results.tagger import tag_result
        from repro.xmlkit import serialize
        return serialize(tag_result(self))

    def to_tsv(self) -> str:
        """Tab-separated export (for downstream file-driven tools)."""
        from repro.results.export import to_tsv
        return to_tsv(self)

    def to_csv(self) -> str:
        """Comma-separated export."""
        from repro.results.export import to_csv
        return to_csv(self)
