"""Result delivery: result sets, the table view and the XML tagger."""

from repro.results.export import to_csv, to_delimited, to_tsv, write_tsv
from repro.results.resultset import BoundNode, QueryResult, ResultRow
from repro.results.table import format_table
from repro.results.tagger import element_name_for, tag_result

__all__ = ["BoundNode", "QueryResult", "ResultRow", "element_name_for",
           "format_table", "tag_result", "to_csv", "to_delimited",
           "to_tsv", "write_tsv"]
