"""The tagger: structure result tuples into XML (paper §3.3).

"The resultant tuples are either displayed in a simple table format or
treated by a tagger module, that structure them into the desired XML
format of the result." Output shape::

    <xomatiq_results>
      <result>
        <Accession_Number>AB012345</Accession_Number>
        <description>...</description>     <!-- repeated if multi-valued -->
      </result>
      ...
    </xomatiq_results>

Column names are sanitized into valid element names (the ``@`` of
attribute items becomes a prefix).
"""

from __future__ import annotations

from repro.xmlkit import Document, Element, is_valid_name

RESULTS_TAG = "xomatiq_results"
RESULT_TAG = "result"


def element_name_for(column: str) -> str:
    """A valid element name for a result column."""
    name = column
    if name.startswith("@"):
        name = "attr_" + name[1:]
    cleaned = "".join(ch if (ch.isalnum() or ch in "_-.") else "_"
                      for ch in name)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] == "_"):
        cleaned = "col_" + cleaned
    if not is_valid_name(cleaned):
        cleaned = "column"
    return cleaned


def tag_result(result) -> Document:
    """Build the result document for a
    :class:`~repro.results.resultset.QueryResult`."""
    root = Element(RESULTS_TAG)
    root.set("rows", str(len(result.rows)))
    for row in result.rows:
        record = root.subelement(RESULT_TAG)
        for column in result.columns:
            constructed = row.elements.get(column)
            if constructed is not None:
                # a constructor item: splice the assembled element
                record.append(constructed)
                continue
            tag = element_name_for(column)
            values = row.values.get(column, [])
            if not values:
                record.subelement(tag)   # explicit empty element
            for value in values:
                record.subelement(tag, text=value if value else None)
    return Document(root, name="xomatiq_results")
